"""Serial CPU reference implementations for the graph applications.

These are the baselines the paper's speedups are measured against.  Every
function returns a :class:`SerialRun`: the (numerically exact, vectorized)
result, the serial operation counts of the straightforward CPU loop nest,
and metadata such as iteration/round counts.  Correctness is pinned
against scipy/networkx in the test suite; the op counts feed
:class:`repro.cpu.costmodel.CPUConfig` for baseline timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.cpu.costmodel import OpCounts
from repro.graphs.csr import CSRGraph, concat_ranges

__all__ = [
    "SerialRun",
    "spmv_serial",
    "sssp_serial",
    "pagerank_serial",
    "bc_serial",
    "bfs_serial",
    "bfs_recursive_serial",
    "recursive_bfs_cpu_speedup",
    "simple_undirected",
    "triangles_serial",
    "kcore_serial",
    "mis_serial",
]

INF = np.float64(np.inf)


@dataclass
class SerialRun:
    """Result + serial cost of a reference execution."""

    result: object
    ops: OpCounts
    meta: dict = field(default_factory=dict)


def _check_source(graph: CSRGraph, source: int) -> None:
    if not (0 <= source < graph.n_nodes):
        raise GraphError(f"source {source} out of range")


# --------------------------------------------------------------------- SpMV
def spmv_serial(graph: CSRGraph, x: np.ndarray) -> SerialRun:
    """y = A @ x over the CSR matrix; the paper's SpMV building block."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (graph.n_nodes,):
        raise GraphError(
            f"x must have shape ({graph.n_nodes},), got {x.shape}"
        )
    values = graph.weights if graph.weights is not None else np.ones(graph.n_edges)
    y = np.zeros(graph.n_nodes)
    np.add.at(y, np.repeat(np.arange(graph.n_nodes), graph.out_degrees),
              values * x[graph.col_indices])
    m, n = graph.n_edges, graph.n_nodes
    ops = OpCounts(
        alu=2.0 * m + 2.0 * n,       # multiply-add per nnz; loop bookkeeping
        seq_loads=2.0 * m + 2.0 * n,  # col index + value; row offsets
        rand_loads=1.0 * m,           # x[col]
        stores=1.0 * n,
        branches=1.0 * m + 1.0 * n,
    )
    return SerialRun(result=y, ops=ops)


# --------------------------------------------------------------------- SSSP
def sssp_serial(graph: CSRGraph, source: int = 0, max_rounds: int | None = None) -> SerialRun:
    """Round-based (Bellman-Ford / Harish-Narayanan style) SSSP.

    Matches the algorithm the GPU code parallelizes: repeat "relax all
    out-edges of nodes improved last round" until fixpoint.  Operation
    counts reflect the serial worklist version of the same algorithm.
    """
    _check_source(graph, source)
    weights = graph.weights if graph.weights is not None else np.ones(graph.n_edges)
    if np.any(weights < 0):
        raise GraphError("SSSP requires non-negative weights")
    dist = np.full(graph.n_nodes, INF)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    rounds = 0
    edges_relaxed = 0
    limit = max_rounds if max_rounds is not None else graph.n_nodes
    while frontier.size and rounds < limit:
        rounds += 1
        starts = graph.row_offsets[frontier]
        degs = graph.out_degrees[frontier]
        srcs = np.repeat(frontier, degs)
        if srcs.size == 0:
            break
        idx = _edge_slices(starts, degs)
        targets = graph.col_indices[idx]
        cand = dist[srcs] + weights[idx]
        edges_relaxed += idx.size
        # resolve concurrent updates exactly: minimum per target
        order = np.argsort(targets, kind="stable")
        t_sorted = targets[order]
        c_sorted = cand[order]
        boundaries = np.ones(t_sorted.size, dtype=bool)
        boundaries[1:] = t_sorted[1:] != t_sorted[:-1]
        group_min = np.minimum.reduceat(c_sorted, np.flatnonzero(boundaries))
        uniq_targets = t_sorted[boundaries]
        improved = group_min < dist[uniq_targets]
        updated = uniq_targets[improved]
        dist[updated] = group_min[improved]
        frontier = updated
    ops = OpCounts(
        alu=3.0 * edges_relaxed,
        seq_loads=2.0 * edges_relaxed,
        rand_loads=2.0 * edges_relaxed,
        stores=1.0 * edges_relaxed * 0.3 + graph.n_nodes,
        branches=1.0 * edges_relaxed,
    )
    return SerialRun(result=dist, ops=ops,
                     meta={"rounds": rounds, "edges_relaxed": edges_relaxed})


def _edge_slices(starts: np.ndarray, degs: np.ndarray) -> np.ndarray:
    """CSR slice gathering; thin alias of :func:`concat_ranges`."""
    return concat_ranges(starts, degs)


# ----------------------------------------------------------------- PageRank
def pagerank_serial(
    graph: CSRGraph,
    damping: float = 0.85,
    n_iters: int = 20,
    tol: float = 0.0,
) -> SerialRun:
    """Power-iteration PageRank (pull formulation over in-edges).

    The reference GPU implementation's irregular inner loop "collects
    ranks from the neighbors of the considered node", i.e. it pulls over
    in-adjacency; dangling mass is redistributed uniformly.
    """
    if not (0.0 < damping < 1.0):
        raise GraphError("damping must lie in (0, 1)")
    if n_iters < 1:
        raise GraphError("n_iters must be >= 1")
    n = graph.n_nodes
    out_deg = graph.out_degrees.astype(np.float64)
    dangling = out_deg == 0
    rev = graph.reverse()
    rank = np.full(n, 1.0 / n)
    iters_done = 0
    in_src = rev.col_indices  # for node i, the in-neighbors j
    in_rows = np.repeat(np.arange(n), rev.out_degrees)
    for _ in range(n_iters):
        iters_done += 1
        contrib = np.where(dangling, 0.0, rank / np.maximum(out_deg, 1.0))
        gathered = np.zeros(n)
        np.add.at(gathered, in_rows, contrib[in_src])
        dangling_mass = rank[dangling].sum() / n
        new_rank = (1.0 - damping) / n + damping * (gathered + dangling_mass)
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if tol > 0.0 and delta < tol:
            break
    m = graph.n_edges
    per_iter = OpCounts(
        alu=2.0 * m + 4.0 * n,
        seq_loads=1.0 * m + 2.0 * n,
        rand_loads=2.0 * m,
        stores=1.0 * n,
        branches=1.0 * m + 1.0 * n,
    )
    return SerialRun(result=rank, ops=per_iter.scaled(iters_done),
                     meta={"iterations": iters_done})


# ----------------------------------------------------------------------- BC
def bc_serial(
    graph: CSRGraph,
    sources: np.ndarray | None = None,
) -> SerialRun:
    """Brandes betweenness centrality on unweighted graphs.

    Two phases per source, as in the paper's reference [6]: a BFS that
    builds shortest-path counts, then a reverse sweep accumulating
    dependencies.  ``sources`` defaults to all nodes (exact BC); pass a
    subset for the sampled estimate used at benchmark scale.
    """
    n = graph.n_nodes
    if sources is None:
        sources = np.arange(n, dtype=np.int64)
    else:
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size and (sources.min() < 0 or sources.max() >= n):
            raise GraphError("BC sources out of range")
    bc = np.zeros(n)
    total_edge_work = 0
    rows = np.repeat(np.arange(n), graph.out_degrees)
    for s in sources.tolist():
        dist = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n)
        dist[s] = 0
        sigma[s] = 1.0
        frontiers: list[np.ndarray] = [np.array([s], dtype=np.int64)]
        level = 0
        # forward BFS, level-synchronous
        while frontiers[-1].size:
            fr = frontiers[-1]
            starts = graph.row_offsets[fr]
            degs = graph.out_degrees[fr]
            idx = _edge_slices(starts, degs)
            total_edge_work += idx.size
            if idx.size == 0:
                break
            srcs = np.repeat(fr, degs)
            tgt = graph.col_indices[idx]
            undiscovered = dist[tgt] == -1
            new_nodes = np.unique(tgt[undiscovered])
            dist[new_nodes] = level + 1
            on_sp = dist[tgt] == level + 1
            np.add.at(sigma, tgt[on_sp], sigma[srcs[on_sp]])
            if new_nodes.size == 0:
                break
            frontiers.append(new_nodes)
            level += 1
        # backward dependency accumulation
        delta = np.zeros(n)
        for fr in reversed(frontiers[1:]):
            starts = graph.row_offsets[fr]
            degs = graph.out_degrees[fr]
            idx = _edge_slices(starts, degs)
            total_edge_work += idx.size
            if idx.size == 0:
                continue
            srcs = np.repeat(fr, degs)
            tgt = graph.col_indices[idx]
            on_sp = dist[tgt] == (dist[srcs] + 1)
            contrib = np.zeros(idx.size)
            valid = on_sp & (sigma[tgt] > 0)
            contrib[valid] = (
                sigma[srcs[valid]] / sigma[tgt[valid]] * (1.0 + delta[tgt[valid]])
            )
            np.add.at(delta, srcs, contrib)
        mask = np.ones(n, dtype=bool)
        mask[s] = False
        bc[mask] += delta[mask]
    ops = OpCounts(
        alu=4.0 * total_edge_work,
        seq_loads=2.0 * total_edge_work,
        rand_loads=3.0 * total_edge_work,
        stores=0.5 * total_edge_work,
        branches=2.0 * total_edge_work,
    )
    return SerialRun(result=bc, ops=ops,
                     meta={"n_sources": int(sources.size),
                           "edge_work": total_edge_work})


# ---------------------------------------------------------------------- BFS
def bfs_serial(graph: CSRGraph, source: int = 0) -> SerialRun:
    """Level-synchronous BFS; returns per-node levels (-1 unreachable)."""
    _check_source(graph, source)
    n = graph.n_nodes
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    edges_touched = 0
    while frontier.size:
        starts = graph.row_offsets[frontier]
        degs = graph.out_degrees[frontier]
        idx = _edge_slices(starts, degs)
        edges_touched += idx.size
        if idx.size == 0:
            break
        tgt = graph.col_indices[idx]
        new = np.unique(tgt[level[tgt] == -1])
        if new.size == 0:
            break
        depth += 1
        level[new] = depth
        frontier = new
    ops = OpCounts(
        alu=1.0 * edges_touched + 2.0 * n,
        seq_loads=1.0 * edges_touched + 1.0 * n,
        rand_loads=1.0 * edges_touched,
        stores=1.0 * n,
        branches=1.0 * edges_touched,
    )
    return SerialRun(result=level, ops=ops,
                     meta={"depth": depth, "edges_touched": edges_touched})


def recursive_bfs_cpu_speedup(n_edges: int) -> float:
    """Paper-calibrated speedup of *recursive* over iterative serial BFS.

    Section III.C: "on CPU the recursive implementation outperforms the
    iterative one by a factor varying from 1.25x to 3.3x depending on the
    graph size" (1.6M .. 27M edges).  We interpolate log-linearly in edge
    count within that band and clamp outside it.
    """
    if n_edges <= 0:
        return 1.25
    lo_edges, hi_edges = 1.6e6, 27e6
    lo_speed, hi_speed = 1.25, 3.3
    t = (np.log(n_edges) - np.log(lo_edges)) / (np.log(hi_edges) - np.log(lo_edges))
    return float(np.clip(lo_speed + t * (hi_speed - lo_speed), lo_speed, hi_speed))


def bfs_recursive_serial(
    graph: CSRGraph, source: int = 0, exact_limit: int = 0
) -> SerialRun:
    """The paper's recursive serial BFS baseline.

    By default the baseline cost is the iterative one scaled by the
    paper's *measured* recursive-vs-iterative CPU speedup (1.25-3.3x, see
    :func:`recursive_bfs_cpu_speedup`).  We deliberately do not cost the
    literal depth-first unordered traversal: executed strictly LIFO it
    re-visits nodes combinatorially (hundreds of visits per node on random
    graphs), which contradicts the paper's measurement — their traversal
    order evidently avoids that blow-up, so we calibrate to their number.

    Pass ``exact_limit > 0`` to instead *execute* the unordered traversal
    (explicit stack) on graphs up to that many edges: it verifies the
    fixpoint and exposes the raw visit inflation as a diagnostic.
    """
    _check_source(graph, source)
    iterative = bfs_serial(graph, source)
    if 0 < graph.n_edges <= exact_limit:
        level = np.full(graph.n_nodes, np.iinfo(np.int64).max, dtype=np.int64)
        level[source] = 0
        stack: list[int] = [source]
        visits = 0
        edge_probes = 0
        while stack:
            node = stack.pop()
            visits += 1
            nl = level[node] + 1
            for nbr in graph.neighbors(node).tolist():
                edge_probes += 1
                if nl < level[nbr]:
                    level[nbr] = nl
                    stack.append(nbr)
        level[level == np.iinfo(np.int64).max] = -1
        assert np.array_equal(level, iterative.result), "unordered BFS fixpoint mismatch"
        ops = OpCounts(
            alu=2.0 * edge_probes,
            seq_loads=1.0 * edge_probes,
            rand_loads=1.0 * edge_probes,
            stores=0.5 * edge_probes,
            branches=1.0 * edge_probes,
            calls=1.0 * visits,
        )
        return SerialRun(result=level, ops=ops,
                         meta={"visits": visits, "edge_probes": edge_probes,
                               "exact": True})
    speedup = recursive_bfs_cpu_speedup(graph.n_edges)
    ops = iterative.ops.scaled(1.0 / speedup)
    return SerialRun(result=iterative.result, ops=ops,
                     meta={"exact": False, "modeled_speedup": speedup})


# ------------------------------------------------------- streaming apps
def simple_undirected(graph: CSRGraph) -> CSRGraph:
    """The simple undirected view: symmetrized, self-loops and parallel
    edges removed, neighbor lists sorted ascending.

    Triangle counting, k-core and MIS are defined on simple undirected
    graphs (networkx's ``triangles``/``core_number`` reject multi-edges);
    deriving the view here keeps every reference and its workload trace
    on exactly the same adjacency.
    """
    from repro.graphs.csr import expand_rows

    n = graph.n_nodes
    rows = expand_rows(graph.row_offsets)
    src = np.concatenate([rows, graph.col_indices])
    dst = np.concatenate([graph.col_indices, rows])
    off_diag = src != dst
    keys = np.unique(src[off_diag] * np.int64(n) + dst[off_diag])
    return CSRGraph.from_edges(n, keys // n, keys % n,
                               name=f"{graph.name}+simple")


def _forward_oriented(simple: CSRGraph) -> CSRGraph:
    """Edges of a simple undirected view oriented low id -> high id."""
    from repro.graphs.csr import expand_rows

    rows = expand_rows(simple.row_offsets)
    fwd = rows < simple.col_indices
    return CSRGraph.from_edges(simple.n_nodes, rows[fwd],
                               simple.col_indices[fwd],
                               name=f"{simple.name}+fwd")


def triangles_serial(graph: CSRGraph) -> SerialRun:
    """Per-node triangle counts by forward-edge intersection.

    Each triangle ``{u < v < w}`` is discovered exactly once, at its
    lowest-id edge ``(u, v)``: ``w`` ranges over the intersection of the
    two forward (higher-id) adjacency lists.  The serial op counts model
    the sorted-list merge the CPU loop nest performs per edge.
    """
    simple = simple_undirected(graph)
    fwd = _forward_oriented(simple)
    n = fwd.n_nodes
    counts = np.zeros(n, dtype=np.int64)
    total = 0
    edge_work = 0
    for u in np.flatnonzero(fwd.out_degrees).tolist():
        adj_u = fwd.neighbors(u)
        for v in adj_u.tolist():
            common = np.intersect1d(adj_u, fwd.neighbors(v),
                                    assume_unique=True)
            edge_work += adj_u.size + fwd.out_degrees[v]
            if common.size:
                total += common.size
                counts[u] += common.size
                counts[v] += common.size
                np.add.at(counts, common, 1)
    ops = OpCounts(
        alu=2.0 * edge_work + 2.0 * fwd.n_edges,
        seq_loads=2.0 * edge_work,
        rand_loads=2.0 * fwd.n_edges,
        stores=0.3 * edge_work + n,
        branches=1.0 * edge_work,
    )
    return SerialRun(result=counts, ops=ops,
                     meta={"total": total, "edge_work": edge_work,
                           "forward_edges": fwd.n_edges})


def kcore_serial(graph: CSRGraph) -> SerialRun:
    """Core numbers by iterative peeling (Matula-Beck) on the simple
    undirected view; matches ``networkx.core_number``.

    Each cascade round removes every remaining node of degree <= k and
    decrements its surviving neighbors — the round structure KCoreApp's
    per-round workloads mirror.
    """
    simple = simple_undirected(graph)
    n = simple.n_nodes
    deg = simple.out_degrees.copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    k = 0
    rounds = 0
    edges_touched = 0
    while alive.any():
        k = max(k, int(deg[alive].min()))
        while True:
            peel = np.flatnonzero(alive & (deg <= k))
            if peel.size == 0:
                break
            rounds += 1
            core[peel] = k
            alive[peel] = False
            idx = concat_ranges(simple.row_offsets[peel],
                                simple.out_degrees[peel])
            edges_touched += idx.size
            dst = simple.col_indices[idx]
            survivors = dst[alive[dst]]
            np.add.at(deg, survivors, -1)
    ops = OpCounts(
        alu=2.0 * edges_touched + 3.0 * n,
        seq_loads=1.0 * edges_touched + 2.0 * n,
        rand_loads=2.0 * edges_touched,
        stores=1.0 * edges_touched * 0.5 + n,
        branches=1.0 * edges_touched + 1.0 * n,
    )
    return SerialRun(result=core, ops=ops,
                     meta={"rounds": rounds, "max_core": int(core.max()),
                           "edges_touched": edges_touched})


def mis_serial(graph: CSRGraph) -> SerialRun:
    """Lexicographically-first maximal independent set.

    Deterministic Luby rounds with node ids as static priorities: every
    round selects the remaining nodes that are local minima among their
    remaining neighbors, then removes them and their neighborhoods.  With
    fixed id priorities this computes exactly the set the sequential
    greedy scan (admit ``u`` iff no admitted neighbor ``< u``) produces,
    but in parallel rounds — the template-shaped formulation.
    """
    simple = simple_undirected(graph)
    n = simple.n_nodes
    alive = np.ones(n, dtype=bool)
    in_set = np.zeros(n, dtype=bool)
    rounds = 0
    edges_touched = 0
    while alive.any():
        rounds += 1
        frontier = np.flatnonzero(alive)
        degs = simple.out_degrees[frontier]
        idx = concat_ranges(simple.row_offsets[frontier], degs)
        edges_touched += idx.size
        src = np.repeat(frontier, degs)
        dst = simple.col_indices[idx]
        live = alive[dst]
        best = np.full(n, n, dtype=np.int64)
        np.minimum.at(best, src[live], dst[live])
        winners = frontier[frontier < best[frontier]]
        in_set[winners] = True
        alive[winners] = False
        kill = concat_ranges(simple.row_offsets[winners],
                             simple.out_degrees[winners])
        alive[simple.col_indices[kill]] = False
    ops = OpCounts(
        alu=2.0 * edges_touched + 2.0 * n,
        seq_loads=1.0 * edges_touched + 1.0 * n,
        rand_loads=2.0 * edges_touched,
        stores=0.5 * edges_touched + n,
        branches=1.0 * edges_touched,
    )
    return SerialRun(result=in_set, ops=ops,
                     meta={"rounds": rounds, "set_size": int(in_set.sum()),
                           "edges_touched": edges_touched})
