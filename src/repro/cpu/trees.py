"""Serial CPU references for the tree-traversal applications.

Fig. 3 of the paper shows two serial variants of tree descendants: the
plain recursive code (Fig. 3(a)) and the recursion-eliminated iterative
version (Fig. 3(b)).  Tree heights has the same pair.  The paper's tree
speedups are measured "over the better one between recursive and iterative
serial CPU code" — both are implemented and costed here.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.costmodel import OpCounts
from repro.cpu.reference import SerialRun
from repro.trees.metrics import node_heights, subtree_sizes
from repro.trees.structure import Tree

__all__ = [
    "descendants_iterative_serial",
    "descendants_recursive_serial",
    "heights_iterative_serial",
    "heights_recursive_serial",
    "descendants_recursive_py",
    "heights_recursive_py",
    "best_serial_descendants",
    "best_serial_heights",
]


def descendants_iterative_serial(tree: Tree) -> SerialRun:
    """Recursion-eliminated serial tree descendants (Fig. 3(b)).

    Walks nodes bottom-up adding each node's count into its parent: one
    pass over all non-root nodes.
    """
    sizes = subtree_sizes(tree)
    n = tree.n_nodes
    ops = OpCounts(
        alu=2.0 * (n - 1) + n,
        seq_loads=2.0 * (n - 1),   # node order + parent id (BFS layout streams)
        rand_loads=1.0 * (n - 1),  # parent counter
        stores=1.0 * (n - 1) + n,
        branches=1.0 * n,
    )
    return SerialRun(result=sizes, ops=ops, meta={"variant": "iterative"})


def descendants_recursive_serial(tree: Tree) -> SerialRun:
    """Plain recursive serial tree descendants (Fig. 3(a)).

    Same result as the iterative version, plus one call/return per node
    and the child-slice bookkeeping of the recursion.
    """
    base = descendants_iterative_serial(tree)
    n = tree.n_nodes
    ops = base.ops + OpCounts(calls=1.0 * n, branches=1.0 * n, alu=1.0 * n)
    return SerialRun(result=base.result, ops=ops, meta={"variant": "recursive"})


def heights_iterative_serial(tree: Tree) -> SerialRun:
    """Recursion-eliminated serial tree heights."""
    heights = node_heights(tree)
    n = tree.n_nodes
    ops = OpCounts(
        alu=2.0 * (n - 1) + n,
        seq_loads=2.0 * (n - 1),
        rand_loads=1.0 * (n - 1),
        stores=1.0 * (n - 1) + n,
        branches=2.0 * n,  # extra compare for the max
    )
    return SerialRun(result=heights, ops=ops, meta={"variant": "iterative"})


def heights_recursive_serial(tree: Tree) -> SerialRun:
    """Plain recursive serial tree heights."""
    base = heights_iterative_serial(tree)
    n = tree.n_nodes
    ops = base.ops + OpCounts(calls=1.0 * n, branches=1.0 * n, alu=1.0 * n)
    return SerialRun(result=base.result, ops=ops, meta={"variant": "recursive"})


def best_serial_descendants(tree: Tree) -> SerialRun:
    """The paper's baseline: the faster of the two serial variants."""
    it = descendants_iterative_serial(tree)
    rec = descendants_recursive_serial(tree)
    return it if it.ops.total <= rec.ops.total else rec


def best_serial_heights(tree: Tree) -> SerialRun:
    """The paper's baseline: the faster of the two serial variants."""
    it = heights_iterative_serial(tree)
    rec = heights_recursive_serial(tree)
    return it if it.ops.total <= rec.ops.total else rec


# ---------------------------------------------------------- executable refs
def descendants_recursive_py(tree: Tree) -> np.ndarray:
    """Actually-recursive Python implementation of Fig. 3(a).

    Used as the ground-truth oracle in tests (explicit stack; CPython's
    recursion limit is no match for even mid-sized trees).  Matches the
    paper's convention that every node counts itself as a descendant.
    """
    sizes = np.ones(tree.n_nodes, dtype=np.int64)
    # post-order via two-phase stack
    stack: list[tuple[int, bool]] = [(0, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            for child in tree.children_of(node).tolist():
                sizes[node] += sizes[child]
        else:
            stack.append((node, True))
            for child in tree.children_of(node).tolist():
                stack.append((child, False))
    return sizes


def heights_recursive_py(tree: Tree) -> np.ndarray:
    """Actually-recursive Python implementation of tree heights."""
    heights = np.ones(tree.n_nodes, dtype=np.int64)
    stack: list[tuple[int, bool]] = [(0, False)]
    while stack:
        node, processed = stack.pop()
        children = tree.children_of(node).tolist()
        if processed:
            if children:
                heights[node] = 1 + max(heights[c] for c in children)
        else:
            stack.append((node, True))
            for child in children:
                stack.append((child, False))
    return heights
