"""Serial-CPU cost model.

The paper reports every GPU number as a speedup over *serial CPU code* run
on a Xeon E5-2620.  The reproduction therefore needs a consistent serial
cost for the same work.  We count operations by class — arithmetic,
sequential loads (streamed, mostly cache-resident), random loads
(pointer-chasing, mostly missing), stores, branches and function calls —
and convert with per-class cycle costs.

Costs are first-order Xeon-like constants; like every absolute number in
this reproduction, they matter only through the *ratios* they induce
(EXPERIMENTS.md compares shapes, and ``tests/test_calibration.py`` pins
the headline bands).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["CPUConfig", "OpCounts", "XEON_E5_2620"]


@dataclass(frozen=True)
class CPUConfig:
    """Per-operation-class cycle costs of a serial CPU."""

    name: str = "Xeon E5-2620"
    clock_ghz: float = 2.0
    #: cycles per arithmetic/logic op (superscalar issue folded in)
    cpi_alu: float = 0.4
    #: cycles per streamed (prefetchable) load
    cpi_seq_load: float = 0.6
    #: cycles per irregular load (weighted cache-miss cost)
    cpi_rand_load: float = 18.0
    #: cycles per store (write-combining assumed)
    cpi_store: float = 1.0
    #: cycles per data-dependent branch (misprediction amortized)
    cpi_branch: float = 1.5
    #: cycles per function call/return (recursive baselines)
    cpi_call: float = 8.0

    def __post_init__(self) -> None:
        for name in (
            "clock_ghz", "cpi_alu", "cpi_seq_load", "cpi_rand_load",
            "cpi_store", "cpi_branch", "cpi_call",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"CPUConfig.{name} must be positive")

    def replace(self, **changes: object) -> "CPUConfig":
        """Copy with changes (revalidated)."""
        return dataclasses.replace(self, **changes)

    def time_ms(self, ops: "OpCounts") -> float:
        """Serial wall-clock estimate for an operation mix."""
        cycles = (
            ops.alu * self.cpi_alu
            + ops.seq_loads * self.cpi_seq_load
            + ops.rand_loads * self.cpi_rand_load
            + ops.stores * self.cpi_store
            + ops.branches * self.cpi_branch
            + ops.calls * self.cpi_call
        )
        return cycles / (self.clock_ghz * 1e9) * 1e3


@dataclass
class OpCounts:
    """Operation counts by class for a serial execution."""

    alu: float = 0.0
    seq_loads: float = 0.0
    rand_loads: float = 0.0
    stores: float = 0.0
    branches: float = 0.0
    calls: float = 0.0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            alu=self.alu + other.alu,
            seq_loads=self.seq_loads + other.seq_loads,
            rand_loads=self.rand_loads + other.rand_loads,
            stores=self.stores + other.stores,
            branches=self.branches + other.branches,
            calls=self.calls + other.calls,
        )

    def scaled(self, factor: float) -> "OpCounts":
        """All counts multiplied by a factor (e.g. iteration count)."""
        if factor < 0:
            raise ConfigError("scale factor cannot be negative")
        return OpCounts(
            alu=self.alu * factor,
            seq_loads=self.seq_loads * factor,
            rand_loads=self.rand_loads * factor,
            stores=self.stores * factor,
            branches=self.branches * factor,
            calls=self.calls * factor,
        )

    @property
    def total(self) -> float:
        """Total operation count (all classes)."""
        return (
            self.alu + self.seq_loads + self.rand_loads
            + self.stores + self.branches + self.calls
        )


#: The paper's CPU.
XEON_E5_2620 = CPUConfig()
