"""``repro.cpu`` — serial CPU baselines: cost model + reference algorithms."""

from repro.cpu.costmodel import XEON_E5_2620, CPUConfig, OpCounts
from repro.cpu.reference import (
    SerialRun,
    bc_serial,
    bfs_recursive_serial,
    bfs_serial,
    pagerank_serial,
    recursive_bfs_cpu_speedup,
    spmv_serial,
    sssp_serial,
)
from repro.cpu.trees import (
    best_serial_descendants,
    best_serial_heights,
    descendants_iterative_serial,
    descendants_recursive_py,
    descendants_recursive_serial,
    heights_iterative_serial,
    heights_recursive_py,
    heights_recursive_serial,
)

__all__ = [
    "CPUConfig", "OpCounts", "XEON_E5_2620", "SerialRun",
    "spmv_serial", "sssp_serial", "pagerank_serial", "bc_serial",
    "bfs_serial", "bfs_recursive_serial", "recursive_bfs_cpu_speedup",
    "descendants_iterative_serial", "descendants_recursive_serial",
    "heights_iterative_serial", "heights_recursive_serial",
    "descendants_recursive_py", "heights_recursive_py",
    "best_serial_descendants", "best_serial_heights",
]
