"""One-call facade over the template machinery.

``repro.run("dbuf-shared", workload)`` is the whole API: the template is
resolved by paper name from the unified registry, the right template
family is picked from the workload type (nested-loop vs recursive tree),
and the result is the usual :class:`~repro.core.base.TemplateRun`.
``repro.compare`` runs several templates on one workload and returns the
runs in request order — the quickstart table in one call.

Both functions accept a template *instance* in place of a name, for
custom templates that never entered the registry.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.base import TemplateRun
from repro.core.params import TemplateParams
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.registry import resolve
from repro.core.workload import NestedLoopWorkload
from repro.errors import WorkloadError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import GpuExecutor

__all__ = ["run", "compare"]


def _kind_of(workload) -> str:
    if isinstance(workload, NestedLoopWorkload):
        return "nested-loop"
    if isinstance(workload, RecursiveTreeWorkload):
        return "tree"
    raise WorkloadError(
        "workload must be a NestedLoopWorkload or RecursiveTreeWorkload, "
        f"got {type(workload).__name__}"
    )


def run(
    template,
    workload,
    *,
    device: DeviceConfig = KEPLER_K20,
    params: TemplateParams | None = None,
    exact: bool = False,
) -> TemplateRun:
    """Run one template on one workload and return the full result.

    Parameters
    ----------
    template:
        canonical paper name (``"thread-mapped"``, ``"dbuf-shared"``,
        ``"rec-hier"``, ...) or an already-constructed template instance.
        Names are restricted to the template family matching the workload
        type, so ``run("flat", nested_loop_workload)`` fails loudly
        instead of silently misdispatching.
    workload:
        :class:`NestedLoopWorkload` or :class:`RecursiveTreeWorkload`.
    device:
        simulated device (default: the paper's Kepler K20).
    params:
        :class:`TemplateParams`; defaults are the paper's choices.
    exact:
        force the reference event-per-block executor engine instead of
        the default cohort-batched fast engine (same results to within
        1e-6; see ``docs/performance.md``).
    """
    kind = _kind_of(workload)
    tmpl = resolve(template, kind=kind) if isinstance(template, str) else template
    executor = GpuExecutor(device, engine="exact") if exact else None
    return tmpl.run(workload, device, params or TemplateParams(), executor=executor)


def compare(
    templates: Iterable,
    workload,
    *,
    device: DeviceConfig = KEPLER_K20,
    params: TemplateParams | None = None,
    exact: bool = False,
) -> list[TemplateRun]:
    """Run several templates on one workload; runs come back in request order."""
    return [
        run(t, workload, device=device, params=params, exact=exact)
        for t in templates
    ]
