"""One-call facade over the template machinery.

``repro.run(workload)`` is the whole API: the IR pass pipeline picks the
parallelization template (and its parameters) for the workload — build
IR, promote/consolidate, lower onto the registry (see ``docs/ir.md``) —
and the result is the usual :class:`~repro.core.base.TemplateRun` with
the :class:`~repro.ir.select.Selection` attached.  Naming a template is
the *override* form: ``repro.run(workload, "dbuf-shared")`` skips
selection and runs that template.  ``repro.compare`` runs several
templates on one workload and returns the runs in request order;
``repro.explain`` returns the selection audit trail (IR before/after the
passes, every pass decision, the chosen template/params) without
executing anything beyond what selection itself needs.  ``repro.serve``
brings up the long-lived serving runtime (:mod:`repro.service`).

Both run functions accept a template *instance* in place of a name, for
custom templates that never entered the registry.  The legacy
template-first argument order (``run("dbuf-shared", workload)``) still
works with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

from repro.core.base import TemplateRun
from repro.core.params import TemplateParams
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.registry import resolve
from repro.core.workload import NestedLoopWorkload
from repro.errors import ConfigError, WorkloadError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import GpuExecutor, resolve_engine
from repro.ir.select import auto_select, is_auto

__all__ = ["run", "compare", "explain", "serve"]


def _kind_of(workload) -> str:
    if isinstance(workload, NestedLoopWorkload):
        return "nested-loop"
    if isinstance(workload, RecursiveTreeWorkload):
        return "tree"
    raise WorkloadError(
        "workload must be a NestedLoopWorkload or RecursiveTreeWorkload, "
        f"got {type(workload).__name__}"
    )


def _is_workload(obj) -> bool:
    return isinstance(obj, (NestedLoopWorkload, RecursiveTreeWorkload))


def _resolve_engine(engine: str | None) -> str | None:
    """Validate the engine choice (one shared check; see
    :func:`repro.gpusim.executor.resolve_engine`)."""
    return resolve_engine(engine)


def _accept_legacy_order(first, second, caller: str):
    """Support the pre-IR ``caller(template, workload)`` argument order.

    The modern order is workload first.  A workload in the first position
    passes straight through; a workload in the *second* position is the
    legacy order — swapped back with a :class:`DeprecationWarning`.
    """
    if _is_workload(first) or not _is_workload(second):
        return first, second
    warnings.warn(
        f"repro.{caller}() now takes the workload first: "
        f"{caller}(workload, template). The template-first order is "
        "deprecated.",
        DeprecationWarning,
        stacklevel=3,
    )
    return second, first


def _coerce_backend_arg(backend, device, devices, engine):
    """Resolve the facade's ``backend`` argument to (backend, kind).

    ``backend`` may be None (classic paths, untouched), a kind string
    (``"sim"`` / ``"queue"``) or an already-constructed
    :class:`~repro.backends.Backend`.  Returns the backend object (or
    None) plus the kind string auto-select reasons about.
    """
    from repro.backends import Backend, backend_for, resolve_backend

    if backend is None:
        return None, "sim"
    if isinstance(backend, str):
        kind = resolve_backend(backend)
        if kind == "sim" and devices == 1:
            # the spelled-out default: keep the classic (byte-identical)
            # executor path rather than a differently-constructed backend
            return None, "sim"
        return backend_for(device, devices, engine=engine, kind=kind), kind
    if isinstance(backend, Backend):
        if devices != 1:
            raise ConfigError(
                "pass either a backend instance or devices>1, not both"
            )
        kind = "queue" if backend.capabilities.persistent_queue else "sim"
        return backend, kind
    raise ConfigError(
        f"backend must be a kind string or a repro.backends.Backend, "
        f"got {type(backend).__name__}"
    )


def run(
    workload,
    template="auto",
    *,
    device: DeviceConfig = KEPLER_K20,
    devices: int = 1,
    params: TemplateParams | None = None,
    engine: str | None = None,
    backend=None,
) -> TemplateRun:
    """Run a workload and return the full result.

    Parameters
    ----------
    workload:
        :class:`NestedLoopWorkload` or :class:`RecursiveTreeWorkload`.
    template:
        ``"auto"`` (the default) selects the template through the IR pass
        pipeline — build, threshold promotion, launch consolidation,
        lowering — racing autotune's cost signal where the lowering is
        ambiguous; the decision is attached to the returned run as
        ``.selection``.  To override, pass a canonical paper name
        (``"thread-mapped"``, ``"dbuf-shared"``, ``"rec-hier"``, ...) or
        an already-constructed template instance.  Names are restricted
        to the template family matching the workload type, so
        ``run(nested_loop_workload, "flat")`` fails loudly instead of
        silently misdispatching.
    device:
        simulated device (default: the paper's Kepler K20).
    devices:
        simulated device count.  ``1`` (the default) executes exactly as
        a single device always has; ``N > 1`` shards the workload across
        a :class:`~repro.backends.DeviceGroup` of N identical devices
        and returns a merged run whose ``device_runs`` /
        ``result.per_device`` keep the per-device components inspectable
        (see ``docs/architecture.md``).
    params:
        :class:`TemplateParams`; defaults are the paper's choices.  Under
        ``template="auto"`` these are the starting point — the selection
        may derive a different ``lb_threshold`` (the race winner's).
    engine:
        ``"fast"`` (cohort-batched executor, the default) or ``"exact"``
        (the reference event-per-block engine; same results to within
        1e-6 — see ``docs/performance.md``).  None defers to the
        process-wide default engine.
    backend:
        execution model: ``"sim"`` (bulk-synchronous, the default) or
        ``"queue"`` (Atos-style persistent task queues, single device —
        see ``docs/taskqueue.md``), or an already-constructed
        :class:`~repro.backends.Backend` instance.  Under
        ``template="auto"`` the selection records the chosen backend and
        its capability reasons (``run.selection`` / ``repro.explain``);
        queue-incompatible templates fall back to BSP execution.
    """
    workload, template = _accept_legacy_order(workload, template, "run")
    kind = _kind_of(workload)
    engine = _resolve_engine(engine)
    if devices < 1:
        raise ConfigError(f"devices must be >= 1, got {devices}")
    backend_obj, backend_kind = _coerce_backend_arg(
        backend, device, devices, engine
    )
    selection = None
    if is_auto(template):
        selection = auto_select(workload, device, params, engine,
                                backend=backend_kind)
        template, params = selection.template, selection.params
    tmpl = resolve(template, kind=kind) if isinstance(template, str) else template
    if backend_obj is not None:
        result = tmpl.run(workload, device, params or TemplateParams(),
                          backend=backend_obj)
    elif devices > 1:
        from repro.backends import backend_for

        group = backend_for(device, devices, engine=engine)
        result = tmpl.run(workload, device, params or TemplateParams(),
                          backend=group)
    else:
        executor = GpuExecutor(device, engine=engine) if engine is not None else None
        result = tmpl.run(workload, device, params or TemplateParams(),
                          executor=executor)
    result.selection = selection
    return result


def compare(
    workload,
    templates: Iterable | None = None,
    *,
    include=None,
    device: DeviceConfig = KEPLER_K20,
    devices: int = 1,
    params: TemplateParams | None = None,
    engine: str | None = None,
    backend=None,
) -> list[TemplateRun]:
    """Run several templates on one workload; runs come back in request order.

    ``templates`` defaults to ``("auto",)`` — just the auto-selected run.
    ``include`` appends extra entries (a name or an iterable of names)
    without restating the list: ``compare(wl, ["thread-mapped"],
    include="auto")`` runs the named template plus the auto pick.
    """
    workload, templates = _accept_legacy_order(workload, templates, "compare")
    if templates is None:
        templates = ("auto",)
    elif isinstance(templates, str) or not isinstance(templates, Iterable):
        templates = (templates,)
    else:
        templates = tuple(templates)
    if include is not None:
        extra = (include,) if (
            isinstance(include, str) or not isinstance(include, Iterable)
        ) else tuple(include)
        templates = templates + extra
    engine = _resolve_engine(engine)
    return [
        run(workload, t, device=device, devices=devices, params=params,
            engine=engine, backend=backend)
        for t in templates
    ]


def explain(
    workload,
    *,
    device: DeviceConfig = KEPLER_K20,
    params: TemplateParams | None = None,
    engine: str | None = None,
    backend: str | None = None,
) -> dict:
    """The auto-select audit trail for a workload, as a structured dict.

    Keys: ``template`` / ``params`` (the decision), ``kind``, ``backend``
    (the chosen execution model, with its capability reasoning in
    ``reasons``), ``ir`` / ``final_ir`` (the loop structure before and
    after the passes, nested dicts), ``decisions`` (every pass rewrite),
    ``reasons`` (the lowering rationale), ``raced`` (the candidates the
    cost race compared, empty for unambiguous lowerings) and
    ``fingerprint`` (the final IR digest that keyed the decision).
    Selection is cached, so explaining and then running costs one
    selection, not two.
    """
    from repro.backends import resolve_backend

    engine = _resolve_engine(engine)
    kind = resolve_backend(backend) or "sim"
    return auto_select(workload, device, params, engine,
                       backend=kind).to_dict()


def serve(config=None, **config_kwargs):
    """Start the serving runtime; returns a synchronous service handle.

    The handle is a context manager accepting either a full
    :class:`~repro.service.ServiceConfig` or its fields as keywords::

        with repro.serve(max_batch=32, workers=4) as svc:
            response = svc.request("dbuf-global", workload)
            print(svc.stats()["latency_ms"])

    See :mod:`repro.service` and ``docs/serving.md``.
    """
    from repro.service.handle import serve as _serve

    return _serve(config, **config_kwargs)
