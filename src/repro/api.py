"""One-call facade over the template machinery.

``repro.run("dbuf-shared", workload)`` is the whole API: the template is
resolved by paper name from the unified registry, the right template
family is picked from the workload type (nested-loop vs recursive tree),
and the result is the usual :class:`~repro.core.base.TemplateRun`.
``repro.compare`` runs several templates on one workload and returns the
runs in request order — the quickstart table in one call.
``repro.serve`` brings up the long-lived serving runtime
(:mod:`repro.service`) for streams of requests instead of single calls.

Both run functions accept a template *instance* in place of a name, for
custom templates that never entered the registry.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

from repro.core.base import TemplateRun
from repro.core.params import TemplateParams
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.registry import resolve
from repro.core.workload import NestedLoopWorkload
from repro.errors import ConfigError, WorkloadError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import ENGINES, GpuExecutor

__all__ = ["run", "compare", "serve"]


def _kind_of(workload) -> str:
    if isinstance(workload, NestedLoopWorkload):
        return "nested-loop"
    if isinstance(workload, RecursiveTreeWorkload):
        return "tree"
    raise WorkloadError(
        "workload must be a NestedLoopWorkload or RecursiveTreeWorkload, "
        f"got {type(workload).__name__}"
    )


def _resolve_engine(engine: str | None, exact: bool | None) -> str | None:
    """Merge the ``engine`` kwarg with the deprecated ``exact`` alias.

    Returns the engine to force, or None to defer to the process-wide
    default (:func:`repro.gpusim.executor.set_default_engine`).
    """
    if exact is not None:
        warnings.warn(
            'the exact= kwarg is deprecated; use engine="exact" or '
            'engine="fast"',
            DeprecationWarning,
            stacklevel=3,
        )
        alias = "exact" if exact else "fast"
        if engine is not None and engine != alias:
            raise ConfigError(
                f"conflicting engine selection: engine={engine!r} but "
                f"exact={exact!r}"
            )
        engine = alias
    if engine is not None and engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINES)}"
        )
    return engine


def run(
    template,
    workload,
    *,
    device: DeviceConfig = KEPLER_K20,
    devices: int = 1,
    params: TemplateParams | None = None,
    engine: str | None = None,
    exact: bool | None = None,
) -> TemplateRun:
    """Run one template on one workload and return the full result.

    Parameters
    ----------
    template:
        canonical paper name (``"thread-mapped"``, ``"dbuf-shared"``,
        ``"rec-hier"``, ...) or an already-constructed template instance.
        Names are restricted to the template family matching the workload
        type, so ``run("flat", nested_loop_workload)`` fails loudly
        instead of silently misdispatching.
    workload:
        :class:`NestedLoopWorkload` or :class:`RecursiveTreeWorkload`.
    device:
        simulated device (default: the paper's Kepler K20).
    devices:
        simulated device count.  ``1`` (the default) executes exactly as
        a single device always has; ``N > 1`` shards the workload across
        a :class:`~repro.backends.DeviceGroup` of N identical devices
        and returns a merged run whose ``device_runs`` /
        ``result.per_device`` keep the per-device components inspectable
        (see ``docs/architecture.md``).
    params:
        :class:`TemplateParams`; defaults are the paper's choices.
    engine:
        ``"fast"`` (cohort-batched executor, the default) or ``"exact"``
        (the reference event-per-block engine; same results to within
        1e-6 — see ``docs/performance.md``).  None defers to the
        process-wide default engine.
    exact:
        deprecated boolean alias for ``engine`` (``True`` -> "exact",
        ``False`` -> "fast"); emits a :class:`DeprecationWarning`.
    """
    kind = _kind_of(workload)
    tmpl = resolve(template, kind=kind) if isinstance(template, str) else template
    engine = _resolve_engine(engine, exact)
    if devices < 1:
        raise ConfigError(f"devices must be >= 1, got {devices}")
    if devices > 1:
        from repro.backends import backend_for

        backend = backend_for(device, devices, engine=engine)
        return tmpl.run(workload, device, params or TemplateParams(),
                        backend=backend)
    executor = GpuExecutor(device, engine=engine) if engine is not None else None
    return tmpl.run(workload, device, params or TemplateParams(), executor=executor)


def compare(
    templates: Iterable,
    workload,
    *,
    device: DeviceConfig = KEPLER_K20,
    devices: int = 1,
    params: TemplateParams | None = None,
    engine: str | None = None,
    exact: bool | None = None,
) -> list[TemplateRun]:
    """Run several templates on one workload; runs come back in request order."""
    engine = _resolve_engine(engine, exact)
    return [
        run(t, workload, device=device, devices=devices, params=params,
            engine=engine)
        for t in templates
    ]


def serve(config=None, **config_kwargs):
    """Start the serving runtime; returns a synchronous service handle.

    The handle is a context manager accepting either a full
    :class:`~repro.service.ServiceConfig` or its fields as keywords::

        with repro.serve(max_batch=32, workers=4) as svc:
            response = svc.request("dbuf-global", workload)
            print(svc.stats()["latency_ms"])

    See :mod:`repro.service` and ``docs/serving.md``.
    """
    from repro.service.handle import serve as _serve

    return _serve(config, **config_kwargs)
