"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid device/CPU configuration or kernel configuration."""


class LaunchError(ReproError):
    """A kernel launch violates device limits (grid size, block size,
    shared memory, pending-launch pool, recursion depth)."""


class WorkloadError(ReproError):
    """A workload description is inconsistent (negative trip counts,
    mismatched array lengths, out-of-range indices)."""


class PlanError(ReproError):
    """A mapping plan is internally inconsistent (iterations dropped or
    duplicated, lane assignments out of range)."""


class IRError(PlanError):
    """A parallelization-IR structure is malformed or trip-count
    inconsistent, or a compiler pass produced an invalid rewrite.
    Subclasses :class:`PlanError`: an invalid IR is an invalid plan."""


class GraphError(ReproError):
    """An invalid graph or tree structure (malformed CSR, bad indices)."""


class DatasetError(ReproError):
    """A dataset cannot be parsed or generated with the given parameters."""


class ExperimentError(ReproError):
    """A benchmark experiment is unknown or was given invalid parameters."""


class ServiceError(ReproError):
    """The serving layer was misconfigured or misused (bad config values,
    submit on a stopped service, worker timeout/crash)."""
