"""IR construction: derive the loop structure from a workload.

:func:`from_workload` is the front of the pass pipeline — it turns a
:class:`~repro.core.workload.NestedLoopWorkload` or
:class:`~repro.core.recursive.RecursiveTreeWorkload` into the nested
seq/par :class:`~repro.ir.nodes.LoopNode` structure the passes transform,
using the cached per-fingerprint analyses (the same
:class:`~repro.core.analysis.WorkloadAnalysis` /
:class:`~repro.core.analysis.TreeAnalysis` artifacts the templates
specialize against), so building IR for a workload that was ever run is
pure arithmetic on precomputed facts.

The two canonical shapes:

* **nested loop** (Fig. 1(a)) — ``par outer`` over the outer iterations
  wrapping ``par inner``, whose :class:`~repro.ir.nodes.TripInfo` carries
  the trace-exact trip statistics (count = outer size, total = pair
  count, lo/hi = min/max f(i)).
* **recursive tree** (Fig. 3) — ``seq recursion`` over the tree levels
  (the only true ordering in the computation) wrapping ``par nodes``
  (one instance per level, lo/hi = level widths), wrapping ``par
  children`` (one instance per internal node — rec-naive's launch unit)
  wrapping ``par grandchildren`` (one instance per launch owner —
  rec-hier's launch unit).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.analysis import get_analysis, get_tree_analysis
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.workload import NestedLoopWorkload
from repro.errors import WorkloadError
from repro.ir.nodes import LoopNode, TripInfo, par, seq
from repro.ir.validate import validate

__all__ = ["from_workload", "ir_kind_of"]


def ir_kind_of(workload) -> str:
    """``"nested-loop"`` or ``"tree"``; :class:`WorkloadError` otherwise."""
    if isinstance(workload, NestedLoopWorkload):
        return "nested-loop"
    if isinstance(workload, RecursiveTreeWorkload):
        return "tree"
    raise WorkloadError(
        "IR can be built from a NestedLoopWorkload or RecursiveTreeWorkload, "
        f"got {type(workload).__name__}"
    )


def _build_nested(workload: NestedLoopWorkload) -> LoopNode:
    count, total, lo, hi = get_analysis(workload).trip_summary()
    inner = par("inner", TripInfo(count=count, total=total, lo=lo, hi=hi))
    return par(
        "outer",
        TripInfo(count=1, total=count, lo=count, hi=count),
        children=(inner,),
    )


def _build_tree(workload: RecursiveTreeWorkload) -> LoopNode:
    tree = workload.tree
    facts = get_tree_analysis(workload).structure_summary()
    widths = np.diff(tree.level_offsets)
    depth = tree.depth

    grandchildren = par(
        "grandchildren",
        TripInfo(
            count=facts["n_launch_owners"],
            total=facts["grandchildren_total"],
            lo=facts["grandchildren_lo"],
            hi=facts["grandchildren_hi"],
        ),
    )
    children = par(
        "children",
        TripInfo(
            count=facts["n_internal"],
            total=facts["children_total"],
            lo=facts["children_lo"],
            hi=facts["children_hi"],
        ),
        # a launch owner without children (a 1-node tree's root) is an
        # empty grandchild loop; attach only when the edge is consistent
        children=(grandchildren,) if facts["n_internal"] else (),
    )
    nodes = par(
        "nodes",
        TripInfo(
            count=depth,
            total=facts["n_nodes"],
            lo=int(widths.min()),
            hi=int(widths.max()),
        ),
        children=(children,) if facts["n_internal"] else (),
    )
    return seq(
        "recursion",
        TripInfo(count=1, total=depth, lo=depth, hi=depth),
        children=(nodes,),
    )


def from_workload(workload) -> LoopNode:
    """Build (and validate) the parallelization IR of a workload.

    Deterministic per workload fingerprint: two workloads with identical
    traces produce IR with identical :meth:`~repro.ir.nodes.LoopNode.key`
    values — the property that lets the IR feed selection cache keys.
    """
    kind = ir_kind_of(workload)
    with obs.span("ir.build", kind=kind,
                  workload=getattr(workload, "name", "?")):
        if kind == "nested-loop":
            ir = _build_nested(workload)
        else:
            ir = _build_tree(workload)
        return validate(ir)
