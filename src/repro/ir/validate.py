"""Structural validation passes over the parallelization IR.

Two invariant families, each usable as a standalone pass and combined in
:func:`validate` (the pipeline runs it before and after the transform
passes, so a buggy pass fails loudly instead of mis-lowering):

* **well-formedness** — every node has a legal kind/mapping, labels are
  unique along any root-to-leaf path (a nested loop cannot be its own
  ancestor), and a ``split`` wrapper has at least one child.
* **trip-count consistency** — node-local bounds hold by construction
  (``TripInfo`` validates itself); across edges, a child loop cannot run
  more often than its parent has iterations, and the children of a
  ``split`` node must cover its iteration space *exactly* (counts and
  totals both sum to the wrapper's — the work-conservation invariant the
  threshold-promotion pass must uphold, the IR-level analogue of
  :func:`repro.core.base.check_schedule`).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.nodes import LoopNode

__all__ = ["validate", "check_well_formed", "check_trip_consistency"]


def check_well_formed(ir: LoopNode) -> None:
    """Raise :class:`IRError` on structural violations (see module doc)."""
    if not isinstance(ir, LoopNode):
        raise IRError(f"IR root must be a LoopNode, got {type(ir).__name__}")

    def visit(node: LoopNode, ancestors: tuple[str, ...]) -> None:
        if node.label in ancestors:
            raise IRError(
                f"loop {node.label!r} nested inside itself "
                f"(path: {' > '.join(ancestors)})"
            )
        if node.kind == "split" and not node.children:
            raise IRError(f"split node {node.label!r} has no partitions")
        for child in node.children:
            if not isinstance(child, LoopNode):
                raise IRError(
                    f"child of {node.label!r} is {type(child).__name__}, "
                    "not LoopNode"
                )
            visit(child, ancestors + (node.label,))

    visit(ir, ())


def check_trip_consistency(ir: LoopNode) -> None:
    """Raise :class:`IRError` on cross-edge trip-count violations."""
    for node in ir.walk():
        if node.kind == "split":
            counts = sum(c.trips.count for c in node.children)
            totals = sum(c.trips.total for c in node.children)
            if counts != node.trips.count or totals != node.trips.total:
                raise IRError(
                    f"split {node.label!r} partitions cover "
                    f"count={counts}/total={totals}, expected "
                    f"count={node.trips.count}/total={node.trips.total} "
                    "(partitions must neither drop nor duplicate work)"
                )
        else:
            for child in node.children:
                if node.trips.total and child.trips.count > node.trips.total:
                    raise IRError(
                        f"loop {child.label!r} has {child.trips.count} "
                        f"instances but parent {node.label!r} only runs "
                        f"{node.trips.total} iterations"
                    )


def validate(ir: LoopNode) -> LoopNode:
    """Run every structural check; returns the IR unchanged on success."""
    check_well_formed(ir)
    check_trip_consistency(ir)
    return ir
