"""``repro.ir`` — the explicit-parallelism IR and its pass pipeline.

The compiler layer behind ``repro.run(workload, template="auto")``.  A
workload is lifted into a nested seq/par loop structure with trip-count
metadata (:mod:`~repro.ir.nodes`, built by :mod:`~repro.ir.build`),
validated (:mod:`~repro.ir.validate`), transformed by the threshold
promotion and launch consolidation passes (:mod:`~repro.ir.passes`), and
lowered onto the canonical registry templates with derived parameters
(:mod:`~repro.ir.select`).  See ``docs/ir.md``.

Typical use::

    from repro import ir

    tree = ir.from_workload(workload)          # build + validate
    result = ir.run_pipeline(tree)             # transform
    selection = ir.auto_select(workload, dev)  # build + transform + lower
    print(selection.template, selection.params.lb_threshold)
    print(selection.final_ir.pretty())
"""

from __future__ import annotations

from repro.ir.build import from_workload, ir_kind_of
from repro.ir.nodes import KINDS, MAPPINGS, LoopNode, TripInfo, par, seq
from repro.ir.passes import (
    PASS_PIPELINE,
    PassConfig,
    PassContext,
    PassDecision,
    PipelineResult,
    consolidate_pass,
    promote_pass,
    run_pipeline,
)
from repro.ir.select import (
    AUTO,
    Selection,
    auto_select,
    clear_selection_cache,
    is_auto,
)
from repro.ir.validate import check_trip_consistency, check_well_formed, validate

__all__ = [
    "AUTO",
    "KINDS",
    "MAPPINGS",
    "PASS_PIPELINE",
    "LoopNode",
    "PassConfig",
    "PassContext",
    "PassDecision",
    "PipelineResult",
    "Selection",
    "TripInfo",
    "auto_select",
    "check_trip_consistency",
    "check_well_formed",
    "clear_selection_cache",
    "consolidate_pass",
    "from_workload",
    "ir_kind_of",
    "is_auto",
    "par",
    "promote_pass",
    "run_pipeline",
    "seq",
    "validate",
]
