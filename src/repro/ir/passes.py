"""The transform passes: threshold promotion and launch consolidation.

Two rewrites run over the IR, in order, mirroring the two compiler
techniques the related work contributes:

* :func:`promote_pass` — **threshold promotion** (Olabi et al.): subloops
  whose per-instance work exceeds the cost threshold are promoted to
  dynamic-parallelism child launches (``mapping="launch"``); the rest are
  demoted to the thread-mapped/flat form (``mapping="thread"``).  An
  irregular loop with instances on both sides of the threshold is
  rewritten into a ``split`` wrapper whose two partitions carry the exact
  partition sizes (from the cached analysis — the same lbTHRES partition
  the templates build), upholding the work-conservation invariant
  ``validate`` checks.
* :func:`consolidate_pass` — **workload consolidation** (Wu/Li/Becchi):
  promoted launches that would be too many or too small — or that the
  device cannot launch at all — are aggregated into consolidated
  block-mapped kernel groups (``mapping="block"``) instead of thousands
  of tiny child grids.

Both passes are pure functions of ``(IR, PassConfig, PassContext)``:
deterministic, idempotent (re-running on their own output changes
nothing) and trip-preserving (the root's total never changes; splits
partition exactly).  Every rewrite is recorded as a
:class:`PassDecision`, surfaces in ``repro.explain`` and — when tracing
is on — as ``ir.pass.<name>`` spans with ``ir.decisions.<name>``
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.errors import IRError
from repro.ir.nodes import LoopNode, TripInfo
from repro.ir.validate import validate

__all__ = [
    "PassConfig",
    "PassContext",
    "PassDecision",
    "PipelineResult",
    "promote_pass",
    "consolidate_pass",
    "run_pipeline",
    "PASS_PIPELINE",
]

#: suffixes the promotion split attaches to its partition labels
SMALL_SUFFIX = "@small"
LARGE_SUFFIX = "@large"


@dataclass(frozen=True)
class PassConfig:
    """Knobs of the pass pipeline (frozen; ``key()`` is repr-stable).

    ``lb_threshold`` is the promotion cost threshold (the paper's
    ``lbTHRES`` — instances with more iterations than this are promoted);
    ``thresholds`` the candidate set auto-select races when the lowering
    is ambiguous; ``consolidation_grain`` the mean-iterations floor below
    which child launches are consolidated into blocks;
    ``max_child_launches`` the launch-count ceiling above which they are
    consolidated regardless; ``dynamic_parallelism`` whether the target
    device can nest launches at all (False demotes every launch).
    """

    lb_threshold: int = 32
    thresholds: tuple[int, ...] = (32, 64, 128, 256)
    #: a child launch must average at least this many iterations to stay a
    #: launch — below it the grid is too small to amortize the issue cost
    #: (the regime where the paper's dpar variants lose to the buffered
    #: block-mapped templates)
    consolidation_grain: int = 128
    max_child_launches: int = 1024
    dynamic_parallelism: bool = True

    def __post_init__(self) -> None:
        if self.lb_threshold < 1:
            raise IRError("lb_threshold must be >= 1")
        if self.consolidation_grain < 0 or self.max_child_launches < 1:
            raise IRError("consolidation knobs out of range")
        object.__setattr__(
            self, "thresholds",
            tuple(sorted({int(t) for t in self.thresholds} | {self.lb_threshold})),
        )

    def key(self) -> tuple:
        """Repr-stable literal identity (feeds the selection cache key)."""
        return (
            self.lb_threshold,
            self.thresholds,
            self.consolidation_grain,
            self.max_child_launches,
            self.dynamic_parallelism,
        )


@dataclass(frozen=True)
class PassContext:
    """Workload facts a pass may consult beyond the IR itself.

    ``split_counts`` — when present — maps a threshold to the exact
    ``(n_small, n_large, iters_small, iters_large)`` partition sizes of
    the irregular loop (bound to
    :meth:`~repro.core.analysis.WorkloadAnalysis.split_counts` by the
    auto-select driver).  Passes fall back to trip-bound arithmetic when
    it is absent, so the pipeline also runs on hand-built IR.
    """

    split_counts: object | None = None


@dataclass(frozen=True)
class PassDecision:
    """One recorded rewrite decision (``repro.explain`` output row)."""

    pass_name: str
    node: str
    action: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "node": self.node,
            "action": self.action,
            "detail": self.detail,
        }


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    ir: LoopNode
    decisions: list[PassDecision] = field(default_factory=list)


def _is_subloop(node: LoopNode, ancestors: tuple[LoopNode, ...]) -> bool:
    """A par loop nested under another par loop — a promotion candidate."""
    return (
        node.kind == "par"
        and node.mapping == "none"
        and any(a.kind == "par" for a in ancestors)
    )


def _split_node(node: LoopNode, threshold: int,
                counts: tuple[int, int, int, int]) -> LoopNode:
    """Rewrite one irregular subloop into its lbTHRES split wrapper.

    ``counts`` are the exact partition sizes from the workload analysis;
    the resulting partitions carry tight, trace-true bounds (small-side
    instances sit in ``[lo, threshold]``, large-side in
    ``[threshold + 1, hi]``), so the split always revalidates.
    """
    t = node.trips
    n_small, n_large, iters_small, iters_large = counts
    small = node.replace(
        label=node.label + SMALL_SUFFIX,
        trips=TripInfo(
            count=n_small, total=iters_small,
            lo=min(t.lo, threshold), hi=min(t.hi, threshold), known=t.known,
        ),
        mapping="thread",
    )
    large = node.replace(
        label=node.label + LARGE_SUFFIX,
        trips=TripInfo(
            count=n_large, total=iters_large,
            lo=max(t.lo, threshold + 1), hi=t.hi, known=t.known,
        ),
        mapping="launch",
    )
    return LoopNode("split", node.label, t, "none", (small, large))


def promote_pass(
    ir: LoopNode, cfg: PassConfig, ctx: PassContext | None = None,
) -> tuple[LoopNode, list[PassDecision]]:
    """Threshold promotion (see module docstring).  Returns (IR, decisions)."""
    ctx = ctx or PassContext()
    decisions: list[PassDecision] = []

    def record(node: LoopNode, action: str, detail: str) -> None:
        decisions.append(PassDecision("promote", node.label, action, detail))

    def rewrite(node: LoopNode, ancestors: tuple[LoopNode, ...]) -> LoopNode:
        children = tuple(
            rewrite(c, ancestors + (node,)) for c in node.children
        )
        if children != node.children:
            node = node.with_children(children)
        if not _is_subloop(node, ancestors):
            return node
        t = node.trips
        if t.count == 0 or t.total == 0:
            record(node, "demote-thread", "empty loop")
            return node.replace(mapping="thread")
        if t.hi <= cfg.lb_threshold:
            record(
                node, "demote-thread",
                f"every instance <= lbTHRES={cfg.lb_threshold} "
                f"(hi={t.hi})",
            )
            return node.replace(mapping="thread")
        if t.lo > cfg.lb_threshold:
            record(
                node, "promote-launch",
                f"every instance > lbTHRES={cfg.lb_threshold} "
                f"(lo={t.lo})",
            )
            return node.replace(mapping="launch")
        # bounds straddle the threshold: split exactly when the workload
        # analysis is bound, else decide the whole node on its mean
        if ctx.split_counts is None:
            if t.mean > cfg.lb_threshold:
                record(
                    node, "promote-launch",
                    f"mean {t.mean:.1f} iterations/instance > "
                    f"lbTHRES={cfg.lb_threshold} (no trip histogram)",
                )
                return node.replace(mapping="launch")
            record(
                node, "demote-thread",
                f"mean {t.mean:.1f} iterations/instance <= "
                f"lbTHRES={cfg.lb_threshold} (no trip histogram)",
            )
            return node.replace(mapping="thread")
        counts = ctx.split_counts(cfg.lb_threshold)
        n_small, n_large = counts[0], counts[1]
        if n_large == 0:
            record(node, "demote-thread",
                   f"no instance > lbTHRES={cfg.lb_threshold}")
            return node.replace(mapping="thread")
        if n_small == 0:
            record(node, "promote-launch",
                   f"every instance > lbTHRES={cfg.lb_threshold}")
            return node.replace(mapping="launch")
        split = _split_node(node, cfg.lb_threshold, counts)
        record(
            node, "split",
            f"lbTHRES={cfg.lb_threshold}: {n_small} small / "
            f"{n_large} large instances",
        )
        return split

    with obs.span("ir.pass.promote"):
        out = rewrite(ir, ())
        if obs.enabled():
            obs.add_counter("ir.decisions.promote", len(decisions))
    return out, decisions


def consolidate_pass(
    ir: LoopNode, cfg: PassConfig, ctx: PassContext | None = None,
) -> tuple[LoopNode, list[PassDecision]]:
    """Workload consolidation (see module docstring).  Returns (IR, decisions)."""
    decisions: list[PassDecision] = []

    def rewrite(node: LoopNode) -> LoopNode:
        if node.mapping != "launch":
            return node
        t = node.trips
        if not cfg.dynamic_parallelism:
            reason = "device lacks dynamic parallelism"
        elif t.count > cfg.max_child_launches:
            reason = (
                f"{t.count} child launches exceed the "
                f"{cfg.max_child_launches}-launch ceiling"
            )
        elif t.mean < cfg.consolidation_grain:
            reason = (
                f"mean {t.mean:.1f} iterations/launch below the "
                f"{cfg.consolidation_grain}-iteration grain"
            )
        else:
            return node
        decisions.append(
            PassDecision("consolidate", node.label, "consolidate-block", reason)
        )
        return node.replace(mapping="block")

    with obs.span("ir.pass.consolidate"):
        out = ir.map_nodes(rewrite)
        if obs.enabled():
            obs.add_counter("ir.decisions.consolidate", len(decisions))
    return out, decisions


#: the pipeline, in execution order
PASS_PIPELINE = (promote_pass, consolidate_pass)


def run_pipeline(
    ir: LoopNode, cfg: PassConfig | None = None,
    ctx: PassContext | None = None,
) -> PipelineResult:
    """Validate, run every pass in order, validate again.

    The trailing validation makes a buggy pass an :class:`IRError` at
    transform time rather than a silent mis-lowering.
    """
    cfg = cfg or PassConfig()
    validate(ir)
    result = PipelineResult(ir=ir)
    for pass_fn in PASS_PIPELINE:
        result.ir, decisions = pass_fn(result.ir, cfg, ctx)
        result.decisions.extend(decisions)
    validate(result.ir)
    return result
