"""The explicit-parallelism IR: nested Seq/Par loop structure.

The unit of representation is the :class:`LoopNode` — one loop (or loop
level) of the computation, carrying a label, its trip-count metadata
(:class:`TripInfo`) and its children, modeled on prickle's ``ParRepr``
(``Seq(label, children)`` / ``Par(label, trips, children)``) extended with
the facts the parallelization passes need:

* ``kind`` — ``"seq"`` (must run in order), ``"par"`` (iterations are
  independent), or ``"split"`` (a partition wrapper: its children cover
  its iteration space exactly, the form the threshold-promotion pass
  produces).
* ``trips`` — how often the loop runs (``count`` instances) and how much
  work each instance does (``total`` iterations overall, ``lo``/``hi``
  per-instance bounds, ``known`` exact-vs-estimated).
* ``mapping`` — the lowering decision passes attach: ``"none"`` (not yet
  decided), ``"thread"`` (thread-mapped / flat), ``"block"``
  (consolidated block-mapped kernel group), ``"launch"``
  (dynamic-parallelism child launches).

Nodes are frozen: passes rewrite by building new nodes (``replace`` /
``with_children``).  ``key()`` flattens a node to nested tuples of
literals — the repr-stable identity that feeds selection and artifact
cache keys (``ast.literal_eval(repr(key)) == key``, the same contract
plan keys obey).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

from repro.errors import IRError

__all__ = ["KINDS", "MAPPINGS", "TripInfo", "LoopNode", "seq", "par"]

#: node kinds: sequential loop, parallel loop, partition wrapper
KINDS = ("seq", "par", "split")
#: lowering decisions a pass may attach to a node
MAPPINGS = ("none", "thread", "block", "launch")


@dataclass(frozen=True)
class TripInfo:
    """Trip-count metadata of one loop.

    ``count`` is how many *instances* of the loop run (a loop nested in a
    1000-iteration parent has ``count=1000``); ``total`` is the summed
    iteration count across all instances; ``lo``/``hi`` bound the
    per-instance trip counts.  ``known`` distinguishes exact counts
    (derived from a workload trace) from estimates.
    """

    count: int
    total: int
    lo: int
    hi: int
    known: bool = True

    def __post_init__(self) -> None:
        if self.count < 0 or self.total < 0:
            raise IRError("trip counts cannot be negative")
        if self.lo < 0 or self.lo > self.hi:
            raise IRError(f"trip bounds out of order: lo={self.lo} hi={self.hi}")
        if self.count == 0 and self.total != 0:
            raise IRError("a loop with no instances cannot have iterations")
        if self.count > 0 and not (
            self.count * self.lo <= self.total <= self.count * self.hi
        ):
            raise IRError(
                f"trip total {self.total} inconsistent with "
                f"count={self.count} lo={self.lo} hi={self.hi}"
            )

    @property
    def uniform(self) -> bool:
        """Every instance runs the same number of iterations."""
        return self.lo == self.hi

    @property
    def mean(self) -> float:
        """Average iterations per instance (0.0 for an empty loop)."""
        return self.total / self.count if self.count else 0.0

    def key(self) -> tuple:
        """Repr-stable literal identity."""
        return (self.count, self.total, self.lo, self.hi, self.known)


@dataclass(frozen=True)
class LoopNode:
    """One loop of the nested seq/par structure (see module docstring)."""

    kind: str
    label: str
    trips: TripInfo
    mapping: str = "none"
    children: tuple["LoopNode", ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise IRError(f"unknown node kind {self.kind!r}; known: {KINDS}")
        if self.mapping not in MAPPINGS:
            raise IRError(
                f"unknown mapping {self.mapping!r}; known: {MAPPINGS}"
            )
        if not isinstance(self.label, str) or not self.label:
            raise IRError("node label must be a non-empty string")
        if not isinstance(self.children, tuple):
            # accept lists at construction for convenience, store tuples
            object.__setattr__(self, "children", tuple(self.children))

    # ------------------------------------------------------------ structure
    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self):
        """Preorder traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, label: str) -> "LoopNode | None":
        """First node in preorder whose label matches (None if absent)."""
        for node in self.walk():
            if node.label == label:
                return node
        return None

    @property
    def n_nodes(self) -> int:
        return sum(1 for _ in self.walk())

    # ------------------------------------------------------------ rewriting
    def replace(self, **changes) -> "LoopNode":
        """Copy with changes (passes rewrite via this; nodes are frozen)."""
        return dataclasses.replace(self, **changes)

    def with_children(self, children) -> "LoopNode":
        return self.replace(children=tuple(children))

    def map_nodes(self, fn) -> "LoopNode":
        """Bottom-up structural rewrite: ``fn`` sees each node after its
        children were rewritten and returns the replacement node."""
        rewritten = tuple(child.map_nodes(fn) for child in self.children)
        node = self if rewritten == self.children else self.with_children(rewritten)
        return fn(node)

    # ------------------------------------------------------------- identity
    def key(self) -> tuple:
        """Nested literal tuple identity (repr-stable, cache-key safe)."""
        return (
            self.kind,
            self.label,
            self.trips.key(),
            self.mapping,
            tuple(child.key() for child in self.children),
        )

    def fingerprint(self) -> str:
        """Content digest of the subtree (keys the selection caches)."""
        h = hashlib.blake2b(repr(self.key()).encode(), digest_size=16)
        return h.hexdigest()

    def to_dict(self) -> dict:
        """JSON-friendly form (``repro.explain`` output)."""
        return {
            "kind": self.kind,
            "label": self.label,
            "mapping": self.mapping,
            "trips": {
                "count": self.trips.count,
                "total": self.trips.total,
                "lo": self.trips.lo,
                "hi": self.trips.hi,
                "known": self.trips.known,
            },
            "children": [child.to_dict() for child in self.children],
        }

    def pretty(self, indent: int = 0) -> str:
        """Human-readable tree rendering (one node per line)."""
        t = self.trips
        line = (
            f"{'  ' * indent}{self.kind} {self.label} "
            f"[count={t.count} total={t.total} trips={t.lo}..{t.hi}"
            f"{'' if t.known else ' est'}]"
            f"{'' if self.mapping == 'none' else ' -> ' + self.mapping}"
        )
        return "\n".join(
            [line] + [child.pretty(indent + 1) for child in self.children]
        )


def seq(label: str, trips: TripInfo, children=(), mapping: str = "none") -> LoopNode:
    """Construct a sequential node."""
    return LoopNode("seq", label, trips, mapping, tuple(children))


def par(label: str, trips: TripInfo, children=(), mapping: str = "none") -> LoopNode:
    """Construct a parallel node."""
    return LoopNode("par", label, trips, mapping, tuple(children))
