"""Auto-select lowering: transformed IR -> registry template + params.

The back of the pass pipeline.  :func:`auto_select` builds the IR of a
workload, runs the transform passes, and lowers the final mappings onto
the canonical registry templates:

==========================  ===========================================
final IR shape              lowering
==========================  ===========================================
inner loop ``thread``       ``thread-mapped`` (every instance small)
inner loop ``block``        ``block-mapped`` (uniform/consolidated)
split, large side ``block``  race ``dual-queue`` / ``dbuf-global`` /
                            ``dbuf-shared`` over the threshold ladder
split or whole ``launch``   race ``dpar-opt`` / ``dpar-naive`` over the
                            threshold ladder
tree children ``thread``    ``flat`` (recursion eliminated)
tree children ``launch``    race ``rec-naive`` vs ``flat``
tree children ``block``     race ``rec-hier`` vs ``flat``
==========================  ===========================================

Unambiguous shapes lower directly; ambiguous ones reuse autotune's cost
signal — the candidates actually run on the simulated device and
:func:`~repro.core.autotune.best_run`'s deterministic tie-break picks the
winner, whose parameter point becomes the derived
:class:`~repro.core.params.TemplateParams`.  Race runs flow through the
ordinary plan/run caches, so a race against N candidates costs N cached
template runs, not N rebuilds.

Selections are cached twice — a bounded in-memory map and the ``select``
tier of the disk artifact cache — under a repr-stable key
``(workload fingerprint, device fingerprint, pass-config key, params,
engine)``, so the decision is stable across processes and sessions
(fingerprint-stability is what lets ``template="auto"`` share the plan
cache with the equivalent named run).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields

from repro import obs
from repro.core.analysis import get_analysis
from repro.core.artifactcache import get_artifact_cache
from repro.core.autotune import best_run
from repro.core.params import TemplateParams
from repro.core.registry import canonical_name, resolve
from repro.errors import IRError
from repro.gpusim.config import KEPLER_K20, supports_dynamic_parallelism
from repro.gpusim.executor import GpuExecutor, get_default_engine
from repro.ir.build import from_workload, ir_kind_of
from repro.ir.nodes import LoopNode
from repro.ir.passes import (
    LARGE_SUFFIX,
    PassConfig,
    PassContext,
    PassDecision,
    run_pipeline,
)

__all__ = ["Selection", "auto_select", "is_auto", "clear_selection_cache"]

#: spelling of the automatic template choice accepted by the facade
AUTO = "auto"

#: in-memory selection store (bounded; disk tier backs it cross-process)
_memory: dict[tuple, "Selection"] = {}
_MAX_ENTRIES = 256


def is_auto(template) -> bool:
    """Whether a template argument asks for automatic selection."""
    return isinstance(template, str) and template.strip().lower() == AUTO


@dataclass(frozen=True)
class Selection:
    """One auto-select decision, with its full audit trail."""

    #: canonical registry name of the chosen template
    template: str
    #: derived parameter point (race winner's, else the caller's)
    params: TemplateParams
    #: template family (``"nested-loop"`` or ``"tree"``)
    kind: str
    #: IR as built from the workload
    ir: LoopNode
    #: IR after the pass pipeline
    final_ir: LoopNode
    #: every pass rewrite, in order
    decisions: tuple[PassDecision, ...]
    #: human-readable lowering rationale
    reasons: tuple[str, ...]
    #: ``(template, lb_threshold)`` candidates raced (empty = direct)
    raced: tuple[tuple[str, int], ...]
    #: content digest of the final IR (what the decision was made from)
    fingerprint: str
    #: execution model the selection chose (``"sim"`` or ``"queue"``);
    #: capability reasoning appears in ``reasons``
    backend: str = "sim"

    def to_dict(self) -> dict:
        """JSON-friendly form (the ``repro.explain`` payload)."""
        return {
            "template": self.template,
            "kind": self.kind,
            # getattr: "select"-tier disk entries pickled before the
            # backend field existed must still explain cleanly
            "backend": getattr(self, "backend", "sim"),
            "params": {
                f.name: getattr(self.params, f.name)
                for f in dataclass_fields(self.params)
            },
            "ir": self.ir.to_dict(),
            "final_ir": self.final_ir.to_dict(),
            "decisions": [d.to_dict() for d in self.decisions],
            "reasons": list(self.reasons),
            "raced": [list(c) for c in self.raced],
            "fingerprint": self.fingerprint,
        }


def _find_subject(final_ir: LoopNode, kind: str) -> LoopNode | None:
    """The node whose mapping drives the lowering."""
    label = "inner" if kind == "nested-loop" else "children"
    return final_ir.find(label)


def _nested_candidates(node: LoopNode | None) -> tuple[list[str], str]:
    if node is None:
        return ["thread-mapped"], "no inner loop: plain parallel loop"
    if node.kind == "split":
        large = next(
            (c for c in node.children if c.label.endswith(LARGE_SUFFIX)), None
        )
        mapping = large.mapping if large is not None else "block"
        if mapping == "launch":
            return (
                ["dpar-opt", "dpar-naive"],
                "split with dynamic-parallelism large side: race the "
                "dpar family over the threshold ladder",
            )
        return (
            ["dual-queue", "dbuf-global", "dbuf-shared"],
            "split with consolidated large side: race the block-mapped "
            "load-balancing family over the threshold ladder",
        )
    if node.mapping == "thread":
        return ["thread-mapped"], "every instance below lbTHRES: thread-mapped"
    if node.mapping == "launch":
        return (
            ["dpar-opt", "dpar-naive"],
            "whole loop promoted to child launches: race the dpar family",
        )
    return ["block-mapped"], "whole loop consolidated: block-mapped"


def _tree_candidates(node: LoopNode | None) -> tuple[list[str], str]:
    if node is None or node.mapping == "thread":
        return (
            ["flat"],
            "child loops below the promotion threshold: recursion "
            "eliminated (flat)",
        )
    if node.mapping == "launch":
        return (
            ["rec-naive", "flat"],
            "child loops promoted to per-node launches: race rec-naive "
            "against the flat elimination",
        )
    return (
        ["rec-hier", "flat"],
        "promoted launches consolidated into block groups: race rec-hier "
        "against the flat elimination",
    )


def _params_key(params: TemplateParams) -> tuple:
    return tuple(
        (f.name, getattr(params, f.name)) for f in dataclass_fields(params)
    )


def _race(workload, kind, candidates, thresholds, device, params, engine):
    """Run every viable (template, threshold) candidate; pick the winner.

    Reuses autotune's cost signal: candidates execute on the simulated
    device (through the plan/run caches) and
    :func:`~repro.core.autotune.best_run` breaks ties deterministically.
    """
    executor = GpuExecutor(device, engine=engine) if engine is not None else None
    dynpar_ok = supports_dynamic_parallelism(device)
    runs = []
    raced: list[tuple[str, int]] = []
    for name in candidates:
        template = resolve(name, kind=kind)
        if template.uses_dynamic_parallelism and not dynpar_ok:
            continue
        lbts = thresholds if kind == "nested-loop" else (params.lb_threshold,)
        for lbt in lbts:
            p = params.replace(lb_threshold=int(lbt))
            runs.append(template.run(workload, device, p, executor=executor))
            raced.append((name, int(lbt)))
    if not runs:
        raise IRError(
            f"no auto-select candidate ({', '.join(candidates)}) is "
            f"runnable on {device.name}"
        )
    winner = best_run(runs)
    return winner, tuple(raced)


def auto_select(
    workload,
    device=KEPLER_K20,
    params: TemplateParams | None = None,
    engine: str | None = None,
    cfg: PassConfig | None = None,
    backend: str = "sim",
) -> Selection:
    """Choose the template (and params) for a workload via the IR pipeline.

    Deterministic and cached: the same ``(workload fingerprint, device,
    pass config, params, engine, backend)`` always yields the same
    :class:`Selection`, served from memory or the disk ``select`` tier
    when seen before.  ``backend="queue"`` makes the lowering
    capability-aware: queue-incompatible candidates are dropped (with the
    reasons recorded), and the selection's ``backend`` field reports
    whether the pick can actually run on the queue or must fall back to
    BSP.  The cost race always runs on the BSP simulator, so queue and
    sim selections share the plan/run caches.
    """
    params = params or TemplateParams()
    kind = ir_kind_of(workload)
    if cfg is None:
        cfg = PassConfig(
            lb_threshold=params.lb_threshold,
            dynamic_parallelism=supports_dynamic_parallelism(device),
        )
    key = (
        workload.fingerprint(),
        device.fingerprint(),
        cfg.key(),
        _params_key(params),
        engine or get_default_engine(),
    )
    if backend != "sim":
        # appended only for non-default backends: PR-6-era sim keys (and
        # their disk entries) stay byte-identical
        key = key + (("backend", backend),)
    cached = _memory.get(key)
    if cached is not None:
        if obs.enabled():
            obs.instant("ir.select.cache_hit",
                        workload=getattr(workload, "name", "?"))
            obs.add_counter("ir.select_cache.hits")
        return cached
    disk = get_artifact_cache()
    selection = disk.get("select", key) if disk is not None else None
    if selection is None:
        obs.add_counter("ir.select_cache.misses")
        with obs.span("ir.select", kind=kind,
                      workload=getattr(workload, "name", "?")):
            selection = _select(workload, kind, device, params, engine, cfg,
                                backend)
        if disk is not None:
            disk.put("select", key, selection)
    if len(_memory) >= _MAX_ENTRIES:
        _memory.pop(next(iter(_memory)))
    _memory[key] = selection
    return selection


def _queue_filter(candidates: list[str], kind: str) -> tuple[list[str], list[str]]:
    """Drop queue-incompatible candidates; return (kept, reasons)."""
    kept, reasons = [], []
    for name in candidates:
        if getattr(resolve(name, kind=kind), "queue_compatible", True):
            kept.append(name)
        else:
            reasons.append(
                f"dropped {name}: not queue-compatible (needs launch-wide "
                "barrier semantics the persistent workers cannot provide)"
            )
    return kept, reasons


def _select(workload, kind, device, params, engine, cfg,
            backend: str = "sim") -> Selection:
    ir = from_workload(workload)
    ctx = PassContext(
        split_counts=get_analysis(workload).split_counts
        if kind == "nested-loop" else None,
    )
    result = run_pipeline(ir, cfg, ctx)
    subject = _find_subject(result.ir, kind)
    if kind == "nested-loop":
        candidates, reason = _nested_candidates(subject)
    else:
        candidates, reason = _tree_candidates(subject)
    reasons = [reason]
    chosen_backend = backend
    if backend == "queue":
        kept, drop_reasons = _queue_filter(candidates, kind)
        reasons.extend(drop_reasons)
        if kept:
            candidates = kept
        else:
            chosen_backend = "sim"
            reasons.append(
                "requested queue backend but no candidate is "
                "queue-compatible; falling back to BSP execution"
            )
    if len(candidates) == 1:
        chosen, derived, raced = candidates[0], params, ()
        reasons.append(f"unambiguous lowering: {chosen}")
    else:
        winner, raced = _race(
            workload, kind, candidates, cfg.thresholds, device, params, engine
        )
        chosen, derived = winner.template, winner.params
        if obs.enabled():
            obs.add_counter("ir.select.race_candidates", len(raced))
        reasons.append(
            f"race over {len(raced)} candidates won by {chosen} "
            f"(lbTHRES={derived.lb_threshold}, "
            f"{winner.time_ms:.3f} ms simulated)"
        )
    # the registry's .name for thread-mapped is the historical "baseline";
    # selections always speak canonical names
    chosen = canonical_name(chosen)
    return Selection(
        template=chosen,
        params=derived,
        kind=kind,
        ir=ir,
        final_ir=result.ir,
        decisions=tuple(result.decisions),
        reasons=tuple(reasons),
        raced=raced,
        fingerprint=result.ir.fingerprint(),
        backend=chosen_backend,
    )


def clear_selection_cache() -> None:
    """Drop the in-memory selection store (tests and benchmarks)."""
    _memory.clear()
