"""Named dataset catalog: the paper's inputs by name.

``load("citeseer", scale=0.05)`` resolves to the synthetic CiteSeer-profile
generator; drop the real DIMACS/SNAP files next to your script and
``load_file(path)`` reads them instead (format auto-detected from the
extension).  Each entry records the paper's quoted statistics so the
substitution is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import DatasetError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    citeseer_like,
    rmat_graph,
    uniform_random_graph,
    wiki_vote_like,
)
from repro.graphs.io import read_dimacs, read_edge_list, read_matrix_market

__all__ = ["DatasetInfo", "DATASETS", "list_datasets", "load", "load_file"]


@dataclass(frozen=True)
class DatasetInfo:
    """Catalog entry: provenance + paper statistics + generator."""

    name: str
    source: str
    paper_stats: str
    used_by: str
    builder: Callable[..., CSRGraph]

    def build(self, **kwargs) -> CSRGraph:
        """Generate the dataset (kwargs forwarded to the builder)."""
        return self.builder(**kwargs)


DATASETS: dict[str, DatasetInfo] = {
    "citeseer": DatasetInfo(
        name="citeseer",
        source="DIMACS implementation challenges (paper ref. [9])",
        paper_stats="~434k nodes, ~16M edges, out-degree 1..1,188 (mean 73.9)",
        used_by="SSSP, PageRank, SpMV (Figs. 4-6, Tables I-II)",
        builder=citeseer_like,
    ),
    "wiki-vote": DatasetInfo(
        name="wiki-vote",
        source="SNAP: Wikipedia who-votes-on-whom (paper ref. [10])",
        paper_stats="~7k nodes, ~100k edges, out-degree 0..893 (mean 14.6)",
        used_by="Betweenness centrality (Fig. 6a, Table II)",
        builder=wiki_vote_like,
    ),
    "uniform-random": DatasetInfo(
        name="uniform-random",
        source="synthetic (paper §III.C, recursive BFS)",
        paper_stats="50,000 nodes, out-degree uniform in a range, 1.6M-27M edges",
        used_by="recursive BFS (Fig. 9)",
        builder=uniform_random_graph,
    ),
    "rmat": DatasetInfo(
        name="rmat",
        source="R-MAT / Graph500 generator (extension, not in the paper)",
        paper_stats="power-law with community structure",
        used_by="extra stress input for the load-balancing templates",
        builder=rmat_graph,
    ),
}


def list_datasets() -> list[DatasetInfo]:
    """All catalog entries."""
    return list(DATASETS.values())


def load(name: str, **kwargs) -> CSRGraph:
    """Build a named dataset (kwargs go to its generator)."""
    try:
        info = DATASETS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None
    return info.build(**kwargs)


def load_file(path: str | Path, n_nodes: int | None = None) -> CSRGraph:
    """Read a real dataset file; format chosen by extension.

    ``.gr`` -> DIMACS, ``.mtx`` -> MatrixMarket, anything else -> SNAP
    edge list.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file {path} does not exist")
    suffix = path.suffix.lower()
    if suffix == ".gr":
        return read_dimacs(path)
    if suffix == ".mtx":
        return read_matrix_market(path)
    return read_edge_list(path, n_nodes=n_nodes)
