"""``repro.datasets`` — named dataset catalog.

One place to resolve the paper's dataset names into graphs/trees, whether
generated (offline default) or loaded from the real files when available.
"""

from repro.datasets.catalog import (
    DATASETS,
    DatasetInfo,
    list_datasets,
    load,
    load_file,
)

__all__ = ["DATASETS", "DatasetInfo", "list_datasets", "load", "load_file"]
