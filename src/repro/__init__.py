"""Reproduction of *Nested Parallelism on GPU: Exploring Parallelization
Templates for Irregular Loops and Recursive Computations* (Li, Wu, Becchi —
ICPP 2015).

Subpackages
-----------
``repro.gpusim``
    trace-driven SIMT GPU timing simulator (the hardware substitute).
``repro.graphs`` / ``repro.trees``
    graph and tree substrates: structures, generators, I/O.
``repro.cpu``
    serial CPU reference implementations + cost model (speedup baselines).
``repro.core``
    the paper's contribution: parallelization templates for irregular
    nested loops and recursive computations.
``repro.ir``
    explicit-parallelism IR + pass pipeline behind ``template="auto"``:
    threshold promotion, launch consolidation, auto-select lowering.
``repro.apps``
    the seven evaluated applications plus the sort case study.
``repro.bench``
    experiment registry regenerating every paper table and figure.
``repro.service``
    async, batching template-serving runtime (``repro.serve``).
``repro.obs``
    tracing/observability layer: spans, counters, Chrome-trace export.
"""

__version__ = "1.2.0"

from repro.api import compare, explain, run, serve
from repro.core.mutation import MutationBatch, MutationDelta, PairInserts
from repro.core.params import TemplateParams
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.registry import resolve
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import (
    ConfigError,
    DatasetError,
    ExperimentError,
    GraphError,
    IRError,
    LaunchError,
    PlanError,
    ReproError,
    ServiceError,
    WorkloadError,
)

__all__ = [
    "__version__",
    "run", "compare", "explain", "serve",
    "resolve", "TemplateParams",
    "NestedLoopWorkload", "RecursiveTreeWorkload", "AccessStream",
    "MutationBatch", "MutationDelta", "PairInserts",
    "ReproError", "ConfigError", "LaunchError", "WorkloadError",
    "PlanError", "IRError", "GraphError", "DatasetError",
    "ExperimentError", "ServiceError",
]
