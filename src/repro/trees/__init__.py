"""``repro.trees`` — tree substrate: structure, generator, metrics."""

from repro.trees.generator import (
    branch_probability,
    expected_level_sizes,
    generate_tree,
)
from repro.trees.metrics import (
    ancestor_pairs,
    flat_atomic_count,
    node_heights,
    rec_hier_kernel_calls,
    rec_naive_kernel_calls,
    subtree_sizes,
)
from repro.trees.structure import Tree

__all__ = [
    "Tree", "generate_tree", "branch_probability", "expected_level_sizes",
    "ancestor_pairs", "flat_atomic_count", "subtree_sizes", "node_heights",
    "rec_naive_kernel_calls", "rec_hier_kernel_calls",
]
