"""Level-array tree representation.

Trees are stored in BFS order: node ids are assigned level by level, so
each level is a contiguous id range and each node's children form a
contiguous slice.  This makes both the functional level sweeps (tree
descendants / heights) and the simulator trace generation fully
vectorizable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError

__all__ = ["Tree"]


@dataclass
class Tree:
    """A rooted tree in BFS (level) order.

    ``parents[i]`` is the parent id of node ``i`` (-1 for the root);
    ``level_offsets`` delimits levels (nodes of level ``L`` are ids
    ``level_offsets[L] .. level_offsets[L+1]``); ``child_offsets`` /
    ``children`` form a CSR adjacency over children.
    """

    parents: np.ndarray
    level_offsets: np.ndarray
    child_offsets: np.ndarray
    children: np.ndarray
    name: str = "tree"

    def __post_init__(self) -> None:
        self.parents = np.asarray(self.parents, dtype=np.int64)
        self.level_offsets = np.asarray(self.level_offsets, dtype=np.int64)
        self.child_offsets = np.asarray(self.child_offsets, dtype=np.int64)
        self.children = np.asarray(self.children, dtype=np.int64)
        n = self.parents.size
        if n == 0:
            raise GraphError("a tree needs at least a root node")
        if self.parents[0] != -1:
            raise GraphError("node 0 must be the root (parent -1)")
        if np.count_nonzero(self.parents == -1) != 1:
            raise GraphError("exactly one root expected")
        if self.level_offsets[0] != 0 or self.level_offsets[-1] != n:
            raise GraphError("level_offsets must span [0, n_nodes]")
        if np.any(np.diff(self.level_offsets) < 0):
            raise GraphError("level_offsets must be non-decreasing")
        if self.child_offsets.size != n + 1:
            raise GraphError("child_offsets must have n_nodes + 1 entries")
        if self.child_offsets[-1] != self.children.size:
            raise GraphError("child_offsets end must equal len(children)")
        if self.children.size != n - 1:
            raise GraphError(
                f"a tree over {n} nodes must have exactly {n - 1} child edges, "
                f"got {self.children.size}"
            )
        if self.children.size and (
            self.children.min() < 1 or self.children.max() >= n
        ):
            raise GraphError("children ids out of range")
        # children of node i must agree with parents[]
        owner = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.child_offsets)
        )
        if not np.array_equal(self.parents[self.children], owner):
            raise GraphError("child_offsets/children disagree with parents[]")

    # ------------------------------------------------------------- properties
    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return self.parents.size

    @property
    def depth(self) -> int:
        """Number of levels (root = level 0)."""
        return self.level_offsets.size - 1

    @property
    def out_degrees(self) -> np.ndarray:
        """Children count per node."""
        return np.diff(self.child_offsets)

    @property
    def levels(self) -> np.ndarray:
        """Level of every node (vectorized from the level offsets)."""
        counts = np.diff(self.level_offsets)
        return np.repeat(np.arange(self.depth, dtype=np.int64), counts)

    def level_nodes(self, level: int) -> np.ndarray:
        """Node ids of one level."""
        if not (0 <= level < self.depth):
            raise GraphError(f"level {level} out of range [0, {self.depth})")
        return np.arange(
            self.level_offsets[level], self.level_offsets[level + 1],
            dtype=np.int64,
        )

    def level_size(self, level: int) -> int:
        """Number of nodes at one level."""
        if not (0 <= level < self.depth):
            raise GraphError(f"level {level} out of range [0, {self.depth})")
        return int(self.level_offsets[level + 1] - self.level_offsets[level])

    def children_of(self, node: int) -> np.ndarray:
        """Children slice of one node."""
        if not (0 <= node < self.n_nodes):
            raise GraphError(f"node {node} out of range")
        return self.children[self.child_offsets[node]: self.child_offsets[node + 1]]

    @property
    def n_leaves(self) -> int:
        """Number of nodes without children."""
        return int(np.count_nonzero(self.out_degrees == 0))

    @property
    def n_internal(self) -> int:
        """Number of nodes with at least one child."""
        return self.n_nodes - self.n_leaves
