"""The paper's synthetic tree generator.

Section III.C: "Our tree generator produces trees with different shapes
based on three parameters: tree depth, node outdegree and sparsity. [...]
All non-leaf nodes have the same number of children, which is given by the
node outdegree parameter.  The probability rho of the non-leaf nodes
having children is defined as rho = (1/2)^sparsity."

sparsity = 0 therefore yields a regular tree where every leaf sits at
maximum depth; larger sparsity values prune subtrees at random, producing
increasingly irregular trees.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.trees.structure import Tree

__all__ = ["generate_tree", "branch_probability", "expected_level_sizes"]


def branch_probability(sparsity: float) -> float:
    """The paper's rho = (1/2)^sparsity."""
    if sparsity < 0:
        raise DatasetError("sparsity cannot be negative")
    return 0.5 ** sparsity


def expected_level_sizes(
    depth: int, outdegree: int, sparsity: float
) -> list[float]:
    """Expected node count per level: n_{L+1} = n_L * rho * outdegree.

    Used to size experiments and as a statistical test oracle.
    """
    if depth < 1:
        raise DatasetError("depth must be >= 1")
    if outdegree < 0:
        raise DatasetError("outdegree cannot be negative")
    rho = branch_probability(sparsity)
    sizes = [1.0]
    for level in range(1, depth):
        # The root always branches (otherwise the tree is trivially empty);
        # deeper internal nodes branch with probability rho.
        p = 1.0 if level == 1 else rho
        sizes.append(sizes[-1] * p * outdegree)
    return sizes


def generate_tree(
    depth: int,
    outdegree: int,
    sparsity: float = 0.0,
    seed: int = 0,
    max_nodes: int = 5_000_000,
) -> Tree:
    """Generate a synthetic tree with the paper's three parameters.

    ``depth`` counts levels (the paper's "depth 4" trees have levels
    0..3).  The root always gets children (a childless root would make
    every run on sparse settings degenerate); every other non-leaf
    candidate branches with probability ``rho = (1/2)**sparsity``.

    Raises :class:`DatasetError` if the expected tree exceeds
    ``max_nodes`` — outdegree 512 at depth 4 means 135 million nodes,
    which is why the benchmark defaults sweep scaled outdegrees (see
    DESIGN.md §2).
    """
    if depth < 1:
        raise DatasetError("depth must be >= 1")
    if outdegree < 1 and depth > 1:
        raise DatasetError("outdegree must be >= 1 for multi-level trees")
    expected = sum(expected_level_sizes(depth, outdegree, sparsity))
    if expected > max_nodes:
        raise DatasetError(
            f"expected ~{expected:.0f} nodes exceeds max_nodes={max_nodes}; "
            "reduce depth/outdegree or raise max_nodes"
        )
    rho = branch_probability(sparsity)
    rng = np.random.default_rng(seed)

    parents_chunks: list[np.ndarray] = [np.array([-1], dtype=np.int64)]
    level_sizes = [1]
    degrees_chunks: list[np.ndarray] = []
    current_ids = np.array([0], dtype=np.int64)
    next_id = 1
    for level in range(1, depth):
        if current_ids.size == 0:
            degrees_chunks.append(np.zeros(0, dtype=np.int64))
            level_sizes.append(0)
            break
        if level == 1:
            branching = np.ones(current_ids.size, dtype=bool)
        else:
            branching = rng.random(current_ids.size) < rho
        degs = np.where(branching, outdegree, 0).astype(np.int64)
        degrees_chunks.append(degs)
        n_new = int(degs.sum())
        if next_id + n_new > max_nodes:
            raise DatasetError(
                f"tree exceeded max_nodes={max_nodes} at level {level}"
            )
        parents_chunks.append(np.repeat(current_ids, degs))
        level_sizes.append(n_new)
        current_ids = np.arange(next_id, next_id + n_new, dtype=np.int64)
        next_id += n_new
    # nodes of the last generated level are leaves
    degrees_chunks.append(np.zeros(current_ids.size, dtype=np.int64))

    parents = np.concatenate(parents_chunks)
    degrees = np.concatenate(degrees_chunks)[: parents.size]
    n = parents.size
    child_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=child_offsets[1:])
    children = np.arange(1, n, dtype=np.int64)  # BFS order property
    level_sizes = [s for s in level_sizes if s > 0] or [1]
    level_offsets = np.zeros(len(level_sizes) + 1, dtype=np.int64)
    np.cumsum(np.array(level_sizes), out=level_offsets[1:])
    return Tree(
        parents=parents,
        level_offsets=level_offsets,
        child_offsets=child_offsets,
        children=children,
        name=f"tree-d{depth}-o{outdegree}-s{sparsity:g}",
    )
