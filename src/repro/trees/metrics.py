"""Closed-form tree metrics used by the experiments and as test oracles.

The paper's Figs. 7(c)/8(c) report, per tree shape, the number of atomic
operations of the flat kernel and the number of kernel calls of the
recursive templates.  Both have exact combinatorial forms on a given tree,
so the simulator's counters can be checked against them.
"""

from __future__ import annotations

import numpy as np

from repro.trees.structure import Tree

__all__ = [
    "ancestor_pairs",
    "flat_atomic_count",
    "rec_naive_kernel_calls",
    "rec_hier_kernel_calls",
    "subtree_sizes",
    "node_heights",
]

def ancestor_pairs(tree: Tree) -> int:
    """Number of (node, proper-ancestor) pairs = sum of node levels.

    For the paper's full-scale tree (depth 4, outdegree 512):
    512*1 + 512^2*2 + 512^3*3 = ~403M — the "403 m" atomics in Fig. 7(c).
    """
    return int(tree.levels.sum())


def flat_atomic_count(tree: Tree) -> int:
    """Atomics issued by the flat tree-traversal kernel.

    Each thread owns one non-root node and walks its ancestor chain doing
    one atomic RMW per hop (atomicAdd for descendants, atomicMax for
    heights), i.e. exactly :func:`ancestor_pairs`.
    """
    return ancestor_pairs(tree)


def rec_naive_kernel_calls(tree: Tree) -> int:
    """Kernel calls of the naive recursive template.

    One host launch for the root plus one nested launch per internal
    (has-children) node below the root: each thread handling a child
    spawns a kernel for that child's subtree if it has children.
    Full-scale check (depth 4, outdegree 512): 1 + 512 + 512^2 = 262,657
    — the "263k" in Fig. 7(c).
    """
    internal_below_root = int(np.count_nonzero(tree.out_degrees[1:] > 0))
    return 1 + internal_below_root


def rec_hier_kernel_calls(tree: Tree) -> int:
    """Kernel calls of the hierarchical recursive template.

    The hierarchical kernel covers two tree levels per launch (children as
    blocks, grandchildren as threads), so a node spawns a nested launch
    only if it has grandchildren.  Full-scale check (depth 4, outdegree
    512): 1 + 512 = 513 — Fig. 7(c).
    """
    has_grandchildren = np.zeros(tree.n_nodes, dtype=bool)
    # a node has grandchildren iff any of its children has children
    child_deg = tree.out_degrees[tree.children]
    owner = np.repeat(
        np.arange(tree.n_nodes, dtype=np.int64), tree.out_degrees
    )
    np.logical_or.at(has_grandchildren, owner, child_deg > 0)
    count_below_root = int(np.count_nonzero(has_grandchildren[1:]))
    return 1 + count_below_root


def subtree_sizes(tree: Tree) -> np.ndarray:
    """Descendant count per node, **including** the node itself.

    Bottom-up level sweep (the recursion-eliminated reference the paper's
    Fig. 3(b) describes): vectorized with one scatter-add per level.
    """
    sizes = np.ones(tree.n_nodes, dtype=np.int64)
    for level in range(tree.depth - 1, 0, -1):
        nodes = tree.level_nodes(level)
        np.add.at(sizes, tree.parents[nodes], sizes[nodes])
    return sizes


def node_heights(tree: Tree) -> np.ndarray:
    """Height per node: leaves have height 1; internal nodes
    1 + max(child heights) — the paper's Tree Heights definition."""
    heights = np.ones(tree.n_nodes, dtype=np.int64)
    for level in range(tree.depth - 1, 0, -1):
        nodes = tree.level_nodes(level)
        np.maximum.at(heights, tree.parents[nodes], heights[nodes] + 1)
    return heights
