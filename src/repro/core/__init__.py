"""``repro.core`` — the paper's contribution: parallelization templates."""

from repro.core.analysis import (
    TreeAnalysis,
    WorkloadAnalysis,
    analysis_stats,
    clear_analysis_cache,
    get_analysis,
    get_tree_analysis,
)
from repro.core.artifactcache import (
    ArtifactCache,
    configure_artifact_cache,
    get_artifact_cache,
)
from repro.core.autotune import autotune, sweep
from repro.core.codegen import SUPPORTED_TEMPLATES, LoopNestSpec, generate_cuda
from repro.core.base import NestedLoopTemplate, TemplateRun, check_schedule
from repro.core.delayed_buffer import (
    DelayedBufferGlobalTemplate,
    DelayedBufferSharedTemplate,
)
from repro.core.dual_queue import DualQueueTemplate, split_by_threshold
from repro.core.dynamic_par import DparNaiveTemplate, DparOptTemplate
from repro.core.mutation import MutationBatch, MutationDelta, PairInserts
from repro.core.params import (
    DEFAULT_LB_BLOCK,
    DEFAULT_THREAD_BLOCK,
    TemplateParams,
)
from repro.core.recursive import (
    TREE_TEMPLATES,
    FlatTreeTemplate,
    RecHierTreeTemplate,
    RecNaiveTreeTemplate,
    RecursiveTreeWorkload,
)
from repro.core.registry import (
    ALL_TEMPLATES,
    LOAD_BALANCING_TEMPLATES,
    NESTED_LOOP_TEMPLATES,
    canonical_name,
    resolve,
)
from repro.core.thread_mapped import BlockMappedTemplate, ThreadMappedTemplate
from repro.core.workload import AccessStream, NestedLoopWorkload

__all__ = [
    "TemplateParams", "DEFAULT_THREAD_BLOCK", "DEFAULT_LB_BLOCK",
    "AccessStream", "NestedLoopWorkload",
    "MutationBatch", "MutationDelta", "PairInserts",
    "NestedLoopTemplate", "TemplateRun", "check_schedule",
    "ThreadMappedTemplate", "BlockMappedTemplate",
    "DualQueueTemplate", "split_by_threshold",
    "DelayedBufferGlobalTemplate", "DelayedBufferSharedTemplate",
    "DparNaiveTemplate", "DparOptTemplate",
    "RecursiveTreeWorkload", "FlatTreeTemplate", "RecNaiveTreeTemplate",
    "RecHierTreeTemplate", "TREE_TEMPLATES",
    "NESTED_LOOP_TEMPLATES", "LOAD_BALANCING_TEMPLATES", "ALL_TEMPLATES",
    "resolve", "canonical_name",
    "autotune", "sweep",
    "WorkloadAnalysis", "TreeAnalysis", "get_analysis", "get_tree_analysis",
    "analysis_stats", "clear_analysis_cache",
    "ArtifactCache", "configure_artifact_cache", "get_artifact_cache",
    "LoopNestSpec", "generate_cuda", "SUPPORTED_TEMPLATES",
]
