"""Shard planner: split one workload across N simulated devices.

Multi-device execution partitions the *workload*, not the launch graph —
each device gets a self-contained sub-workload, builds and runs its own
plan, and the :class:`~repro.backends.group.DeviceGroup` merges the
results.  This module owns the partitioning policy:

* **Nested loops** — outer iterations are dealt round-robin over the
  degree-sorted order from the cached
  :class:`~repro.core.analysis.WorkloadAnalysis` (heaviest first), so
  every device receives the same mix of heavy and light rows.  A plain
  block split would hand one device the skewed tail of a power-law
  workload and serialize the group on it.
* **Recursive trees** — the root's child subtrees are packed onto devices
  by LPT (largest subtree first onto the least-loaded device); each shard
  gets a synthetic root adopting its subtrees, rebuilt in BFS level
  order so it is a valid :class:`~repro.trees.structure.Tree`.

Shard workloads carry **derived fingerprints** —
``blake2b(parent_fingerprint | kind | i/n)`` — so every plan/run/analysis
cache key downstream automatically incorporates the shard layout: a
4-device run can never collide with a 1-device run (or a 2-device one) in
the plan cache or on disk, and single-device keys are untouched.

Shard plans are memoized per ``(workload fingerprint, n_shards)``: the
subset arrays are built once per sweep, like the analysis artifacts they
derive from.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.analysis import get_analysis
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import PlanError

__all__ = ["Shard", "shard_workload", "clear_shard_cache"]


@dataclass
class Shard:
    """One device's slice of a sharded workload."""

    #: shard position within the group (0-based device index)
    index: int
    #: total shards in the plan this shard belongs to
    n_shards: int
    #: the self-contained sub-workload this device runs
    workload: object
    #: original outer-iteration ids (loops) or node ids (trees, aligned
    #: with the shard tree's BFS ids; -1 marks the synthetic root)
    members: np.ndarray
    #: "nested-loop" | "tree"
    kind: str

    @property
    def n_members(self) -> int:
        """Original iterations/nodes owned by this shard."""
        return int(np.count_nonzero(self.members >= 0))


def _derived_fingerprint(parent_fp: str, kind: str, index: int, n: int) -> str:
    """Shard fingerprint: parent fingerprint + shard coordinates.

    Derived (not recomputed from the subset arrays) for two reasons: it is
    free, and it guarantees shard cache keys differ from — and can never
    collide with — whole-workload keys even if a shard happens to contain
    every iteration.
    """
    h = hashlib.blake2b(f"{parent_fp}|{kind}-shard|{index}/{n}".encode(),
                        digest_size=16)
    return h.hexdigest()


# --------------------------------------------------------------- nested loops

def _shard_loop(workload: NestedLoopWorkload, n: int) -> list[Shard] | None:
    """Round-robin deal over the degree-sorted outer order."""
    analysis = get_analysis(workload)
    desc = analysis.order[::-1]  # heaviest outer iterations first
    parent_fp = workload.fingerprint()
    shards: list[Shard] = []
    for i in range(n):
        ids = np.sort(desc[i::n])
        if ids.size == 0:
            continue
        pair_idx, _ = workload.pairs_of(ids)
        streams = [
            AccessStream(
                name=s.name,
                addresses=s.addresses[pair_idx],
                kind=s.kind,
                element_bytes=s.element_bytes,
                staged_in_shared=s.staged_in_shared,
            )
            for s in workload.streams
        ]
        sub = NestedLoopWorkload(
            name=f"{workload.name}@dev{i}/{n}",
            trip_counts=workload.trip_counts[ids],
            streams=streams,
            atomic_targets=(
                workload.atomic_targets[pair_idx]
                if workload.atomic_targets is not None else None
            ),
            inner_insts=workload.inner_insts,
            outer_insts=workload.outer_insts,
            outer_load_bytes=workload.outer_load_bytes,
            outer_store_bytes=workload.outer_store_bytes,
        )
        sub._fingerprint = _derived_fingerprint(parent_fp, "loop", i, n)
        shards.append(Shard(index=i, n_shards=n, workload=sub,
                            members=ids, kind="nested-loop"))
    if len(shards) < 2:
        return None
    return shards


# ----------------------------------------------------------------------- trees

def _lpt_bins(weights: np.ndarray, n: int) -> list[list[int]]:
    """Longest-processing-time packing of item indices into n bins."""
    bins: list[list[int]] = [[] for _ in range(n)]
    totals = np.zeros(n, dtype=np.int64)
    for item in np.argsort(weights, kind="stable")[::-1]:
        b = int(np.argmin(totals))
        bins[b].append(int(item))
        totals[b] += int(weights[item])
    return [sorted(b) for b in bins if b]


def _shard_tree(workload, n: int) -> list[Shard] | None:
    """Cut the tree at the root: pack child subtrees onto devices by LPT."""
    from repro.core.recursive import RecursiveTreeWorkload
    from repro.trees.metrics import subtree_sizes
    from repro.trees.structure import Tree

    tree = workload.tree
    root_children = tree.children_of(0)
    if root_children.size < 2:
        return None
    sizes = subtree_sizes(tree)[root_children]
    bins = _lpt_bins(sizes, n)
    if len(bins) < 2:
        return None
    parent_fp = workload.fingerprint()
    parents = tree.parents
    depth = tree.depth
    shards: list[Shard] = []
    for i, bin_items in enumerate(bins):
        roots = root_children[bin_items]
        # membership mask, propagated level by level (BFS ids make each
        # level contiguous and every parent precede its children)
        mask = np.zeros(tree.n_nodes, dtype=bool)
        mask[roots] = True
        for level in range(2, depth):
            ids = tree.level_nodes(level)
            mask[ids] = mask[parents[ids]]
        # new BFS order: synthetic root, then original levels filtered by
        # the mask (ascending original id within each level)
        per_level = [np.flatnonzero(
            mask[tree.level_offsets[lv]:tree.level_offsets[lv + 1]]
        ) + tree.level_offsets[lv] for lv in range(1, depth)]
        per_level = [ids for ids in per_level if ids.size]
        orig_ids = np.concatenate(
            [np.array([-1], dtype=np.int64)] + per_level
        )
        m = orig_ids.size
        old2new = np.full(tree.n_nodes, -1, dtype=np.int64)
        old2new[orig_ids[1:]] = np.arange(1, m, dtype=np.int64)
        new_parents = np.empty(m, dtype=np.int64)
        new_parents[0] = -1
        old_parents = parents[orig_ids[1:]]
        new_parents[1:] = np.where(
            old_parents == 0, 0, old2new[old_parents]
        )
        level_counts = [1] + [ids.size for ids in per_level]
        level_offsets = np.zeros(len(level_counts) + 1, dtype=np.int64)
        np.cumsum(level_counts, out=level_offsets[1:])
        # child CSR: new ids 1..m-1 grouped by (new) parent
        child_order = np.argsort(new_parents[1:], kind="stable") + 1
        child_offsets = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_parents[1:], minlength=m),
                  out=child_offsets[1:])
        sub_tree = Tree(
            parents=new_parents,
            level_offsets=level_offsets,
            child_offsets=child_offsets,
            children=child_order.astype(np.int64),
            name=f"{tree.name}@dev{i}/{n}",
        )
        sub = RecursiveTreeWorkload(
            tree=sub_tree, kind=workload.kind,
            inner_insts=workload.inner_insts,
        )
        sub._fingerprint = _derived_fingerprint(parent_fp, "tree", i, n)
        shards.append(Shard(index=i, n_shards=n, workload=sub,
                            members=orig_ids, kind="tree"))
    return shards


# ------------------------------------------------------------------ dispatch

_plans: dict[tuple[str, int], list[Shard] | None] = {}
_MAX_PLANS = 64


def shard_workload(workload, n: int) -> list[Shard] | None:
    """Split ``workload`` into up to ``n`` per-device shards.

    Returns ``None`` when the workload cannot usefully shard (fewer than
    two non-empty shards) — callers fall back to single-device execution.
    Plans are memoized by ``(fingerprint, n)``.

    ``n`` need not equal the device count: the work-stealing path of
    :func:`~repro.backends.group.run_sharded` *over-shards* into
    ``devices * steal_chunks`` chunks and schedules them elastically.
    Derived fingerprints carry ``i/n``, so chunk plans of different
    granularities can never alias each other (or the static per-device
    plan) in any cache.
    """
    if n < 2:
        return None
    key = (workload.fingerprint(), n)
    if key in _plans:
        return _plans[key]
    if isinstance(workload, NestedLoopWorkload):
        plan = _shard_loop(workload, n)
    elif hasattr(workload, "tree"):
        plan = _shard_tree(workload, n)
    else:
        raise PlanError(
            f"cannot shard workload of type {type(workload).__name__}"
        )
    if len(_plans) >= _MAX_PLANS:
        _plans.pop(next(iter(_plans)))
    _plans[key] = plan
    return plan


def clear_shard_cache() -> None:
    """Drop memoized shard plans (tests and long-lived services)."""
    _plans.clear()
