"""Template registry: paper name -> template class."""

from __future__ import annotations

from repro.core.base import NestedLoopTemplate
from repro.core.delayed_buffer import (
    DelayedBufferGlobalTemplate,
    DelayedBufferSharedTemplate,
)
from repro.core.dual_queue import DualQueueTemplate
from repro.core.dynamic_par import DparNaiveTemplate, DparOptTemplate
from repro.core.thread_mapped import BlockMappedTemplate, ThreadMappedTemplate
from repro.errors import PlanError

__all__ = [
    "NESTED_LOOP_TEMPLATES",
    "LOAD_BALANCING_TEMPLATES",
    "get_template",
]

#: all nested-loop templates by paper name
NESTED_LOOP_TEMPLATES: dict[str, type[NestedLoopTemplate]] = {
    "baseline": ThreadMappedTemplate,
    "block-mapped": BlockMappedTemplate,
    "dual-queue": DualQueueTemplate,
    "dbuf-global": DelayedBufferGlobalTemplate,
    "dbuf-shared": DelayedBufferSharedTemplate,
    "dpar-naive": DparNaiveTemplate,
    "dpar-opt": DparOptTemplate,
}

#: the five load-balancing variants evaluated in Figs. 4-6
LOAD_BALANCING_TEMPLATES = (
    "dual-queue", "dbuf-global", "dbuf-shared", "dpar-naive", "dpar-opt",
)


def get_template(name: str) -> NestedLoopTemplate:
    """Instantiate a nested-loop template by its paper name."""
    try:
        cls = NESTED_LOOP_TEMPLATES[name]
    except KeyError:
        known = ", ".join(sorted(NESTED_LOOP_TEMPLATES))
        raise PlanError(f"unknown template {name!r}; known: {known}") from None
    return cls()
