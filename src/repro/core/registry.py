"""Unified template registry: canonical paper name -> template.

Every parallelization template the repo implements — the nested-loop
load-balancing family of Figs. 1/2 and the recursive tree family of
Fig. 3 — is reachable through one :func:`resolve` call.  Canonical names
follow the paper (``thread-mapped``, ``dbuf-global``, ``rec-hier``, ...);
the alias map accepts the historical spellings (``baseline``) and
underscore variants, so existing callers keep working.
"""

from __future__ import annotations

from repro.core.base import NestedLoopTemplate
from repro.core.delayed_buffer import (
    DelayedBufferGlobalTemplate,
    DelayedBufferSharedTemplate,
)
from repro.core.dual_queue import DualQueueTemplate
from repro.core.dynamic_par import DparNaiveTemplate, DparOptTemplate
from repro.core.recursive import (
    FlatTreeTemplate,
    RecHierTreeTemplate,
    RecNaiveTreeTemplate,
)
from repro.core.thread_mapped import BlockMappedTemplate, ThreadMappedTemplate
from repro.errors import PlanError

__all__ = [
    "NESTED_LOOP_TEMPLATES",
    "TREE_TEMPLATE_CLASSES",
    "ALL_TEMPLATES",
    "LOAD_BALANCING_TEMPLATES",
    "TEMPLATE_ALIASES",
    "canonical_name",
    "resolve",
]

#: all nested-loop templates by paper name (legacy keys kept: ``baseline``
#: is the historical key for the thread-mapped template)
NESTED_LOOP_TEMPLATES: dict[str, type[NestedLoopTemplate]] = {
    "baseline": ThreadMappedTemplate,
    "block-mapped": BlockMappedTemplate,
    "dual-queue": DualQueueTemplate,
    "dbuf-global": DelayedBufferGlobalTemplate,
    "dbuf-shared": DelayedBufferSharedTemplate,
    "dpar-naive": DparNaiveTemplate,
    "dpar-opt": DparOptTemplate,
}

#: tree (recursive-computation) templates by paper name
TREE_TEMPLATE_CLASSES = {
    "flat": FlatTreeTemplate,
    "rec-naive": RecNaiveTreeTemplate,
    "rec-hier": RecHierTreeTemplate,
}

#: the five load-balancing variants evaluated in Figs. 4-6
LOAD_BALANCING_TEMPLATES = (
    "dual-queue", "dbuf-global", "dbuf-shared", "dpar-naive", "dpar-opt",
)

#: canonical name -> (kind, class); the single source every lookup uses
ALL_TEMPLATES: dict[str, tuple[str, type]] = {
    "thread-mapped": ("nested-loop", ThreadMappedTemplate),
    "block-mapped": ("nested-loop", BlockMappedTemplate),
    "dual-queue": ("nested-loop", DualQueueTemplate),
    "dbuf-global": ("nested-loop", DelayedBufferGlobalTemplate),
    "dbuf-shared": ("nested-loop", DelayedBufferSharedTemplate),
    "dpar-naive": ("nested-loop", DparNaiveTemplate),
    "dpar-opt": ("nested-loop", DparOptTemplate),
    "flat": ("tree", FlatTreeTemplate),
    "rec-naive": ("tree", RecNaiveTreeTemplate),
    "rec-hier": ("tree", RecHierTreeTemplate),
}

#: accepted alternative spellings -> canonical name
TEMPLATE_ALIASES: dict[str, str] = {
    "baseline": "thread-mapped",   # historical registry key / class .name
    "rec-hierarchical": "rec-hier",
}

_KINDS = ("nested-loop", "tree")


def canonical_name(name: str) -> str:
    """Normalize a template name to its canonical registry key.

    Accepts canonical names, aliases and underscore spellings; raises
    :class:`PlanError` for anything unknown.
    """
    if not isinstance(name, str):
        raise PlanError(f"template name must be a string, got {type(name).__name__}")
    key = name.strip().lower().replace("_", "-")
    key = TEMPLATE_ALIASES.get(key, key)
    if key not in ALL_TEMPLATES:
        known = ", ".join(sorted(ALL_TEMPLATES))
        raise PlanError(f"unknown template {name!r}; known: {known}")
    return key


def resolve(name: str, kind: str | None = None):
    """Instantiate a template by name from the merged registry.

    Parameters
    ----------
    name:
        canonical paper name (``thread-mapped``, ``dbuf-shared``,
        ``rec-hier``, ...) or an accepted alias (``baseline``).
    kind:
        restrict the lookup to ``"nested-loop"`` or ``"tree"`` templates;
        None accepts either.  A name that exists under a different kind
        raises :class:`PlanError` naming the mismatch.
    """
    if kind is not None and kind not in _KINDS:
        raise PlanError(f"unknown template kind {kind!r}; known: {', '.join(_KINDS)}")
    key = canonical_name(name)
    actual_kind, cls = ALL_TEMPLATES[key]
    if kind is not None and actual_kind != kind:
        raise PlanError(
            f"template {name!r} is a {actual_kind} template, not {kind}"
        )
    return cls()
