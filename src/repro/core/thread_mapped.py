"""Baseline thread-mapped template (Fig. 1(a)) and pure block mapping.

Thread mapping assigns every outer iteration to one thread: regular work
parallelizes perfectly, but irregular inner loops leave most of a warp
idle while its longest lane finishes — the paper's baseline and the
denominator of every speedup in Figs. 4-6.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import NestedLoopTemplate
from repro.core.mapping import (
    add_block_mapped_inner,
    add_outer_setup,
    add_thread_mapped_inner,
)
from repro.core.params import TemplateParams
from repro.core.workload import NestedLoopWorkload
from repro.gpusim.config import DeviceConfig
from repro.gpusim.costmodel import KernelCostBuilder
from repro.gpusim.kernels import LaunchGraph

__all__ = ["ThreadMappedTemplate", "BlockMappedTemplate"]


class ThreadMappedTemplate(NestedLoopTemplate):
    """One outer iteration per thread, no load balancing (the baseline)."""

    name = "baseline"
    PLAN_RELEVANT_PARAMS = ("thread_block", "registers_per_thread", "max_grid_blocks")

    def specialize(self, workload: NestedLoopWorkload, analysis,
                   config: DeviceConfig, params: TemplateParams):
        n = workload.outer_size
        blocks = self._grid_for(n, params.thread_block, params.max_grid_blocks)
        builder = KernelCostBuilder(
            config, f"{workload.name}/thread-mapped",
            block_size=params.thread_block, n_blocks=blocks,
            registers_per_thread=params.registers_per_thread,
        )
        outer = np.arange(n, dtype=np.int64)
        add_outer_setup(builder, workload, n)
        add_thread_mapped_inner(builder, workload, outer, outer,
                                analysis=analysis)
        graph = LaunchGraph()
        graph.add(builder.build())
        return graph, {"thread": outer}


class BlockMappedTemplate(NestedLoopTemplate):
    """One outer iteration per thread-block.

    Good for huge inner loops, wasteful for small ones: a 64-thread block
    processing a 3-iteration inner loop idles 61 threads — the paper's
    "uneven block utilization".
    """

    name = "block-mapped"
    PLAN_RELEVANT_PARAMS = ("lb_block", "registers_per_thread", "max_grid_blocks")

    def specialize(self, workload: NestedLoopWorkload, analysis,
                   config: DeviceConfig, params: TemplateParams):
        n = workload.outer_size
        if n > params.max_grid_blocks:
            # one block per iteration; chunk the grid like CUDA grids do
            raise_n = params.max_grid_blocks
            if n > raise_n:
                from repro.errors import PlanError

                raise PlanError(
                    f"block mapping needs {n} blocks (> clamp {raise_n})"
                )
        builder = KernelCostBuilder(
            config, f"{workload.name}/block-mapped",
            block_size=params.lb_block, n_blocks=n,
            registers_per_thread=params.registers_per_thread,
        )
        outer = np.arange(n, dtype=np.int64)
        add_outer_setup(builder, workload, n)
        add_block_mapped_inner(builder, workload, outer, outer,
                               analysis=analysis)
        graph = LaunchGraph()
        graph.add(builder.build())
        return graph, {"block": outer}
