"""Workload descriptions for the parallelization templates.

A :class:`NestedLoopWorkload` is the Fig. 1(a) shape::

    for i in range(outer_size):          # parallelizable outer loop
        for j in range(f(i)):            # irregular inner loop
            work(i, j)

Templates never see application code — they see the *trace* of ``work``:
per-(i, j) memory access streams (byte addresses in pair order), optional
per-pair atomic targets, and instruction weights.  That is exactly the
information a compiler emitting these templates would derive from the loop
body, and it is what the simulator needs to cost a mapping.

Pairs are stored row-major (all ``j`` of outer ``0``, then outer ``1``,
...), matching CSR edge order for graph workloads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.csr import concat_ranges

__all__ = ["AccessStream", "NestedLoopWorkload"]

#: deltas kept on the workload object itself (the in-object lineage the
#: analysis layer walks before falling back to the disk lineage tier)
MAX_LINEAGE = 16


@dataclass
class AccessStream:
    """One global-memory access performed by each inner iteration.

    ``addresses[p]`` is the byte address touched by pair ``p`` (row-major
    pair order).  ``staged_in_shared`` marks streams that a shared-memory
    buffered phase can stage on-chip and write back coalesced — the
    mechanism behind dbuf-shared's better store efficiency in Table I.
    """

    name: str
    addresses: np.ndarray
    kind: Literal["load", "store"] = "load"
    element_bytes: int = 4
    staged_in_shared: bool = False

    def __post_init__(self) -> None:
        self.addresses = np.asarray(self.addresses, dtype=np.int64)
        if self.addresses.ndim != 1:
            raise WorkloadError(f"stream {self.name!r}: addresses must be 1-D")
        if self.addresses.size and self.addresses.min() < 0:
            raise WorkloadError(f"stream {self.name!r}: negative addresses")
        if self.kind not in ("load", "store"):
            raise WorkloadError(f"stream {self.name!r}: kind must be load|store")
        if self.element_bytes <= 0:
            raise WorkloadError(f"stream {self.name!r}: element_bytes must be positive")


@dataclass
class NestedLoopWorkload:
    """An irregular nested loop plus its memory/atomic trace."""

    name: str
    trip_counts: np.ndarray
    streams: list[AccessStream] = field(default_factory=list)
    #: element index each pair RMWs atomically (-1 = no atomic); length nnz
    atomic_targets: np.ndarray | None = None
    #: issued instructions per inner iteration (index math, compare, branch)
    inner_insts: float = 6.0
    #: issued instructions per outer iteration (setup, offsets, write-back)
    outer_insts: float = 10.0
    #: coalesced bytes read per outer iteration (row offsets and the like)
    outer_load_bytes: int = 8
    #: coalesced bytes written per outer iteration (per-row results)
    outer_store_bytes: int = 0

    def __post_init__(self) -> None:
        self.trip_counts = np.asarray(self.trip_counts, dtype=np.int64)
        if self.trip_counts.ndim != 1 or self.trip_counts.size == 0:
            raise WorkloadError("trip_counts must be a non-empty 1-D array")
        if self.trip_counts.min() < 0:
            raise WorkloadError("trip counts cannot be negative")
        self.pair_offsets = np.zeros(self.trip_counts.size + 1, dtype=np.int64)
        np.cumsum(self.trip_counts, out=self.pair_offsets[1:])
        nnz = self.n_pairs
        for stream in self.streams:
            if stream.addresses.size != nnz:
                raise WorkloadError(
                    f"stream {stream.name!r} has {stream.addresses.size} "
                    f"addresses but the workload has {nnz} pairs"
                )
        if self.atomic_targets is not None:
            self.atomic_targets = np.asarray(self.atomic_targets, dtype=np.int64)
            if self.atomic_targets.shape != (nnz,):
                raise WorkloadError("atomic_targets must have one entry per pair")
        if (
            self.inner_insts < 0 or self.outer_insts < 0
            or self.outer_load_bytes < 0 or self.outer_store_bytes < 0
        ):
            raise WorkloadError("instruction/byte weights cannot be negative")
        #: mutation generation: bumped by every committed MutationBatch
        #: (and by invalidate_fingerprint after an untracked edit)
        self.version = 0
        #: recent MutationDeltas ending at this workload's fingerprint,
        #: oldest first, bounded at MAX_LINEAGE
        self.lineage: list = []

    @property
    def outer_size(self) -> int:
        """Number of outer-loop iterations."""
        return self.trip_counts.size

    @property
    def n_pairs(self) -> int:
        """Total inner iterations (sum of f(i))."""
        return int(self.pair_offsets[-1])

    def pairs_of(self, outer_ids: np.ndarray, trips: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Pair indices + local step ``j`` for a subset of outer iterations.

        ``trips`` optionally caps the per-iteration trip counts (a phase
        processing only the first ``lbTHRES`` iterations would pass the
        capped counts).  Returns ``(pair_idx, steps)`` where the pairs of
        ``outer_ids[k]`` appear consecutively.
        """
        outer_ids = np.asarray(outer_ids, dtype=np.int64)
        if outer_ids.size and (
            outer_ids.min() < 0 or outer_ids.max() >= self.outer_size
        ):
            raise WorkloadError("outer_ids out of range")
        full = self.trip_counts[outer_ids]
        if trips is None:
            trips = full
        else:
            trips = np.asarray(trips, dtype=np.int64)
            if trips.shape != outer_ids.shape:
                raise WorkloadError("trips must match outer_ids shape")
            if np.any(trips > full) or np.any(trips < 0):
                raise WorkloadError("trip caps out of range")
        pair_idx = concat_ranges(self.pair_offsets[outer_ids], trips)
        steps = concat_ranges(np.zeros_like(trips), trips)
        return pair_idx, steps

    def subset_trips(self, outer_ids: np.ndarray) -> np.ndarray:
        """Trip counts of a subset of outer iterations."""
        return self.trip_counts[np.asarray(outer_ids, dtype=np.int64)]

    def fingerprint(self) -> str:
        """Content hash of everything a template build reads.

        Two workloads with identical traces fingerprint identically, object
        identity aside — the plan cache keys on this.  The digest is
        computed once and memoized; workloads are treated as immutable
        after construction (nothing in the repo mutates them).
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        h = hashlib.blake2b(digest_size=16)
        h.update(self.trip_counts.tobytes())
        for stream in self.streams:
            h.update(
                f"|{stream.name}|{stream.kind}|{stream.element_bytes}"
                f"|{int(stream.staged_in_shared)}|".encode()
            )
            h.update(stream.addresses.tobytes())
        if self.atomic_targets is not None:
            h.update(b"|atomics|")
            h.update(self.atomic_targets.tobytes())
        h.update(
            f"|{self.inner_insts}|{self.outer_insts}"
            f"|{self.outer_load_bytes}|{self.outer_store_bytes}".encode()
        )
        digest = h.hexdigest()
        self._fingerprint = digest
        return digest

    def invalidate_fingerprint(self) -> None:
        """Re-key every derived identity after an untracked in-place edit.

        Callers that edit ``trip_counts``/stream addresses in place must
        call this or every cache keyed on the fingerprint (plan, select,
        analysis, run, disk) would keep serving plans for the pre-mutation
        trace.  All identities move together: the fingerprint memo drops,
        ``pair_offsets`` is recomputed from the edited trip counts (it was
        previously left stale, so row slices pointed at pre-edit pair
        ranges), the version bumps, and the mutation lineage clears — an
        untracked edit has no delta, so no incremental analysis may bridge
        it.  Prefer :meth:`apply_mutations`/:meth:`mutated`, which keep
        the delta.
        """
        self._fingerprint = None
        self.pair_offsets = np.zeros(self.trip_counts.size + 1, dtype=np.int64)
        np.cumsum(self.trip_counts, out=self.pair_offsets[1:])
        nnz = self.n_pairs
        for stream in self.streams:
            if stream.addresses.size != nnz:
                raise WorkloadError(
                    f"stream {stream.name!r} has {stream.addresses.size} "
                    f"addresses but the edited workload has {nnz} pairs"
                )
        if self.atomic_targets is not None and self.atomic_targets.shape != (nnz,):
            raise WorkloadError("atomic_targets must have one entry per pair")
        self.version += 1
        self.lineage.clear()

    # ------------------------------------------------------ mutation API
    def apply_mutations(self, batch):
        """Commit a :class:`~repro.core.mutation.MutationBatch` in place.

        All cache identities bump atomically: the new trace arrays are
        assembled first (off to the side), then swapped in, and the new
        fingerprint is computed eagerly before returning — there is no
        window where stale ``pair_offsets`` or a stale fingerprint memo
        can leak a pre-mutation plan.  Returns the
        :class:`~repro.core.mutation.MutationDelta`, which is also
        appended to :attr:`lineage` and persisted to the disk cache's
        ``lineage`` tier when one is configured.

        Note the *object* mutates: callers holding the pre-mutation trace
        (e.g. a serving snapshot) should use :meth:`mutated` instead.
        """
        from repro.core.mutation import apply_batch

        state, delta = apply_batch(self, batch)
        self.trip_counts = state.trip_counts
        self.pair_offsets = np.zeros(self.trip_counts.size + 1, dtype=np.int64)
        np.cumsum(self.trip_counts, out=self.pair_offsets[1:])
        for stream, addresses in zip(self.streams, state.stream_addresses):
            stream.addresses = addresses
        self.atomic_targets = state.atomic_targets
        self._fingerprint = None
        delta.fingerprint = self.fingerprint()
        self.version += 1
        delta.version_to = self.version
        self._push_lineage(delta)
        return delta

    def mutated(self, batch, name: str | None = None):
        """Functional mutation: ``(child, delta)``; ``self`` is untouched.

        The child gets fresh trace arrays and fresh stream objects, so the
        parent remains a valid immutable snapshot — this is the path the
        serving layer's versioned workload streams use to guarantee
        in-flight batches never observe a torn trace.
        """
        from repro.core.mutation import apply_batch

        state, delta = apply_batch(self, batch)
        child = NestedLoopWorkload(
            name=self.name if name is None else name,
            trip_counts=state.trip_counts,
            streams=[
                AccessStream(
                    name=stream.name,
                    addresses=addresses,
                    kind=stream.kind,
                    element_bytes=stream.element_bytes,
                    staged_in_shared=stream.staged_in_shared,
                )
                for stream, addresses in zip(self.streams, state.stream_addresses)
            ],
            atomic_targets=state.atomic_targets,
            inner_insts=self.inner_insts,
            outer_insts=self.outer_insts,
            outer_load_bytes=self.outer_load_bytes,
            outer_store_bytes=self.outer_store_bytes,
        )
        delta.fingerprint = child.fingerprint()
        child.version = self.version + 1
        delta.version_to = child.version
        child.lineage = list(self.lineage)
        child._push_lineage(delta)
        return child, delta

    def _push_lineage(self, delta) -> None:
        """Append a delta to the bounded in-object lineage and persist it
        to the disk ``lineage`` tier (keyed on the child fingerprint)."""
        self.lineage.append(delta)
        if len(self.lineage) > MAX_LINEAGE:
            del self.lineage[: len(self.lineage) - MAX_LINEAGE]
        from repro.core.artifactcache import get_artifact_cache

        disk = get_artifact_cache()
        if disk is not None:
            disk.put("lineage", delta.fingerprint, delta)
