"""Parallelization templates for recursive tree computations (Fig. 3).

Three GPU variants of a recursive tree traversal (descendants / heights):

* **flat** — the recursion-eliminated kernel: one thread per node walks
  its ancestor chain issuing one atomic RMW per hop.  Perfectly parallel,
  but the atomic count equals the node-ancestor pair count and the root
  is a globally hot address — performance saturates with outdegree.
* **rec-naive** — thread-based recursion: a kernel per internal node (one
  block, a thread per child); every thread whose child is internal spawns
  a nested kernel.  Kernel count = 1 + internal nodes below the root; the
  children of one block serialize in its NULL stream.
* **rec-hier** — hierarchical recursion: a kernel per node with
  grandchildren (children as blocks, grandchildren as threads); each
  *block* spawns at most one nested kernel.  Far fewer, far larger grids.

All three produce identical functional results (``subtree_sizes`` /
``node_heights``); only the hardware mapping differs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro import obs
from repro.backends import coerce_backend, effective_backend, run_sharded
from repro.core.analysis import TreeAnalysis, get_tree_analysis
from repro.core.artifactcache import get_artifact_cache
from repro.core.base import TemplateRun, plan_key
from repro.core.params import TemplateParams
from repro.core.plancache import default_cache
from repro.errors import WorkloadError
from repro.gpusim.atomics import AtomicStats
from repro.gpusim.coalesce import MemoryTraffic, contiguous_transactions, transaction_counts
from repro.gpusim.config import DeviceConfig
from repro.gpusim.costmodel import (
    KernelCostBuilder,
    effective_segment_cycles,
    resident_warps_estimate,
)
from repro.gpusim.dynpar import require_device_support
from repro.gpusim.executor import get_default_engine
from repro.gpusim.kernels import KernelCosts, Launch, LaunchGraph, ProfileCounters
from repro.gpusim.warps import WarpExecStats
from repro.trees.metrics import node_heights, subtree_sizes
from repro.trees.structure import Tree

__all__ = [
    "RecursiveTreeWorkload",
    "FlatTreeTemplate",
    "RecNaiveTreeTemplate",
    "RecHierTreeTemplate",
    "TREE_TEMPLATES",
]


@dataclass
class RecursiveTreeWorkload:
    """A tree plus the per-node work of the recursive computation."""

    tree: Tree
    kind: Literal["descendants", "heights"] = "descendants"
    #: issued instructions per processed child/hop
    inner_insts: float = 6.0

    def __post_init__(self) -> None:
        if self.kind not in ("descendants", "heights"):
            raise WorkloadError(f"unknown tree computation {self.kind!r}")

    @property
    def name(self) -> str:
        """Workload label."""
        return f"tree-{self.kind}({self.tree.name})"

    def reference_result(self) -> np.ndarray:
        """The functional result every template must reproduce."""
        if self.kind == "descendants":
            return subtree_sizes(self.tree)
        return node_heights(self.tree)

    def fingerprint(self) -> str:
        """Content hash of the tree structure + computation (plan cache key).

        Memoized; trees are treated as immutable after construction.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        tree = self.tree
        h = hashlib.blake2b(digest_size=16)
        h.update(tree.parents.tobytes())
        h.update(b"|")
        h.update(tree.level_offsets.tobytes())
        h.update(f"|{self.kind}|{self.inner_insts}".encode())
        digest = h.hexdigest()
        self._fingerprint = digest
        return digest

    def invalidate_fingerprint(self) -> None:
        """Drop the memoized fingerprint after mutating the tree in place
        (see ``NestedLoopWorkload.invalidate_fingerprint``)."""
        self._fingerprint = None


class _TreeTemplateBase:
    """Shared run() wrapper for the tree templates."""

    name = "abstract"
    uses_dynamic_parallelism = False
    #: legal under persistent-queue execution (see NestedLoopTemplate)
    queue_compatible = True
    #: params fields the build reads (see NestedLoopTemplate); None = all
    PLAN_RELEVANT_PARAMS: tuple[str, ...] | None = None

    def build(self, workload: RecursiveTreeWorkload, config: DeviceConfig,
              params: TemplateParams) -> LaunchGraph:
        """Two-stage pipeline: cached tree analysis, then specialize."""
        return self.specialize(workload, get_tree_analysis(workload),
                               config, params)

    def specialize(self, workload: RecursiveTreeWorkload,
                   analysis: TreeAnalysis, config: DeviceConfig,
                   params: TemplateParams) -> LaunchGraph:
        """Assemble the launch graph for one concrete parameter point."""
        raise NotImplementedError

    def run(
        self,
        workload: RecursiveTreeWorkload,
        config: DeviceConfig,
        params: TemplateParams | None = None,
        executor=None,
        *,
        backend=None,
    ) -> TemplateRun:
        """Build, execute and profile; the functional result is attached
        to the run's schedule under ``"result"`` for equality testing."""
        params = params or TemplateParams()
        backend = effective_backend(
            coerce_backend(backend, executor, config), self
        )
        if backend.n_devices > 1:
            merged = run_sharded(self, workload, backend, config, params)
            if merged is not None:
                return merged
            backend = backend.members[0]
        prep = self._prepare(workload, config, params, backend)
        if prep.result is None:
            prep.record(backend.submit(prep.graph))
        return prep.finish()

    def _prepare(
        self,
        workload: RecursiveTreeWorkload,
        config: DeviceConfig,
        params: TemplateParams,
        backend,
    ):
        """Resolve the plan and probe the run tier (execution pending);
        the tree-template counterpart of ``NestedLoopTemplate._prepare``
        so batch entry points (``repro.core.base.run_many``) can fuse
        tree runs the same way."""
        from repro.core.base import _PreparedRun

        cache = default_cache()
        key = plan_key(self, workload.fingerprint(), config, params)
        disk = get_artifact_cache()
        graph = cache.get(key)
        if graph is None:
            graph = disk.get("plan", key) if disk is not None else None
            if graph is None:
                with obs.span("plan.build", template=self.name,
                              workload=workload.name):
                    graph = self.build(workload, config, params)
                if disk is not None:
                    disk.put("plan", key, graph)
            cache.put(key, graph)
            obs.add_counter("plan_cache.misses")
        elif obs.enabled():
            obs.instant("plan.cache_hit", template=self.name,
                        workload=workload.name)
            obs.add_counter("plan_cache.hits")
        use_run_tier = (
            disk is not None
            and not backend.record_timeline
            and not obs.enabled()
        )
        run_key = None
        result = None
        if use_run_tier:
            run_key = (key, backend.engine or get_default_engine())
            # non-BSP execution models tag their run entries (see
            # NestedLoopTemplate.run)
            tag = backend.run_cache_tag
            if tag is not None:
                run_key = run_key + (tag,)
            result = disk.get("run", run_key)
        return _PreparedRun(
            template=self,
            workload=workload,
            config=config,
            params=params,
            graph=graph,
            schedule={"nodes": np.arange(workload.tree.n_nodes)},
            run_key=run_key,
            result=result,
        )


class FlatTreeTemplate(_TreeTemplateBase):
    """Fig. 3(c): thread-mapped iterative kernel with ancestor-walk atomics."""

    name = "flat"
    PLAN_RELEVANT_PARAMS = ("thread_block", "registers_per_thread")

    def specialize(self, workload, analysis, config, params):
        """One thread-mapped kernel; each thread walks its ancestor chain."""
        tree = workload.tree
        n = tree.n_nodes
        blocks = max(1, -(-n // params.thread_block))
        builder = KernelCostBuilder(
            config, f"{workload.name}/flat",
            block_size=params.thread_block, n_blocks=blocks,
            registers_per_thread=params.registers_per_thread,
        )
        levels = tree.levels
        builder.add_uniform(n, insts=8.0)
        builder.add_loop(levels, insts_per_iter=workload.inner_insts)

        # ancestor-chain walk (precomputed): hop k of node v touches its
        # k-th ancestor
        nodes = analysis.hop_nodes
        ancestors = analysis.hop_ancestors
        hops = analysis.hop_ids
        if nodes.size:
            warp = builder.warp_of_thread(nodes)
            max_hop = int(hops.max()) + 1
            group = warp * max_hop + hops
            # parent-pointer loads (scattered within the chain)
            tx = transaction_counts(warp, group, None, builder.n_warps,
                                    agg_divisor=max_hop,
                                    segments=analysis.hop_segments)
            builder.add_traffic(tx, int(nodes.size) * 8, "load")
            # one atomic RMW per (node, ancestor) pair
            from repro.gpusim.atomics import flat_atomic_cycles

            cycles, stats = flat_atomic_cycles(
                warp, group, ancestors, builder.n_warps, config
            )
            builder.add_atomic_cycles(cycles, stats)
            # hot addresses: RMW multiplicity per ancestor
            builder.add_hot_address_tail(analysis.ancestor_counts)
        graph = LaunchGraph()
        graph.add(builder.build())
        return graph


def _child_list_tx(config: DeviceConfig, degrees: np.ndarray) -> np.ndarray:
    """Transactions to read each node's (contiguous) child-id list."""
    return contiguous_transactions(
        degrees, element_bytes=8,
        lanes_per_warp=config.warp_size,
        segment_bytes=config.mem_segment_bytes,
    )


def _atomic_reduction_cycles(config: DeviceConfig, degrees: np.ndarray) -> np.ndarray:
    """Cycles for `degree` threads RMW-ing one shared counter *naively*.

    Every warp of the group conflicts fully on the single address:
    warps x (atomic + (lanes-1) x conflict).  This is the rec-naive
    kernel's reduction (Fig. 3(d): every thread atomicAdds).
    """
    d = np.asarray(degrees, dtype=np.int64)
    full_warps = d // config.warp_size
    rem = d % config.warp_size
    per_full = config.atomic_cycles + (config.warp_size - 1) * config.atomic_conflict_cycles
    per_rem = np.where(
        rem > 0,
        config.atomic_cycles + (rem - 1).clip(min=0) * config.atomic_conflict_cycles,
        0,
    )
    return full_warps * per_full + per_rem


def _block_reduction_cycles(config: DeviceConfig, degrees: np.ndarray) -> np.ndarray:
    """Cycles for a proper in-block tree reduction of `degree` values.

    The hierarchical template reduces grandchild contributions with warp
    shuffles + one shared-memory combine, then issues a *single* atomic
    per block — the paper's "significant reduction in the number of
    atomic operations compared to the flat code".
    """
    d = np.asarray(degrees, dtype=np.int64)
    wpb = -(-np.maximum(d, 1) // config.warp_size)
    shuffle_steps = 5  # log2(32) butterfly
    per_block = (
        wpb * shuffle_steps / config.warp_throughput_per_cycle
        + wpb * config.shared_mem_cycles
        + config.atomic_cycles
    )
    return np.where(d > 0, per_block, 0.0)


class RecNaiveTreeTemplate(_TreeTemplateBase):
    """Fig. 3(d): a single-block kernel per internal node, spawned per thread."""

    name = "rec-naive"
    uses_dynamic_parallelism = True

    def specialize(self, workload, analysis, config, params):
        """One single-block launch per internal node, spawned per thread."""
        require_device_support(config, self.name)
        tree = workload.tree
        cfg = config
        degrees = analysis.degrees
        internal = analysis.internal
        graph = LaunchGraph()
        if internal.size == 0:
            # single trivial root kernel
            builder = KernelCostBuilder(
                cfg, f"{workload.name}/rec-naive-root",
                block_size=cfg.warp_size, n_blocks=1,
            )
            builder.add_uniform(1, insts=8.0)
            graph.add(builder.build())
            return graph

        d = degrees[internal]
        wpb_of = -(-d // cfg.warp_size)
        spawns = analysis.spawns

        # per-launch cost, vectorized over internal nodes
        resident = resident_warps_estimate(
            cfg, params.lb_block, 1,
            concurrent_grids=min(int(internal.size), cfg.max_concurrent_kernels),
        )
        seg = effective_segment_cycles(cfg, resident)
        compute = (wpb_of * workload.inner_insts * 2 + 8.0) / cfg.warp_throughput_per_cycle
        mem = (_child_list_tx(cfg, d) + 1) * seg
        atom = _atomic_reduction_cycles(cfg, d)
        issue = spawns * cfg.device_launch_issue_cycles
        block_cycles = compute + mem + atom + issue
        # a one-block grid issues at its own width
        floor_scale = np.maximum(cfg.warp_throughput_per_cycle / wpb_of, 1.0)

        # aggregate counters attached to the root launch
        counters = ProfileCounters(warp=WarpExecStats(warp_size=cfg.warp_size))
        lane_slots = wpb_of * cfg.warp_size
        counters.warp.add_counts(
            int((lane_slots // cfg.warp_size).sum() * workload.inner_insts),
            int(d.sum() * workload.inner_insts),
        )
        counters.load_traffic = MemoryTraffic(
            requested_bytes=int(d.sum()) * 8,
            transactions=int(_child_list_tx(cfg, d).sum()),
            segment_bytes=cfg.mem_segment_bytes,
        )
        counters.atomic = AtomicStats(
            n_atomics=int(d.sum()),
            max_address_multiplicity=int(d.max()),
        )
        counters.device_launches = int(internal.size) - 1
        counters.host_launches = 1

        # launches level by level so parents exist before children
        launch_of_node: dict[int, int] = {}
        sibling_rank = analysis.sibling_rank
        idx_of_internal = {int(v): k for k, v in enumerate(internal.tolist())}
        for node in internal.tolist():
            k = idx_of_internal[node]
            costs = KernelCosts(
                block_cycles=np.array([block_cycles[k]]),
                block_floor=np.array([block_cycles[k] * floor_scale[k]]),
            )
            parent_node = int(tree.parents[node])
            if parent_node < 0:
                launch = Launch(
                    name=f"{workload.name}/rec-naive",
                    block_size=min(int(d[k]) if d[k] > 0 else 1, 1024),
                    costs=costs,
                    counters=counters if node == 0 else ProfileCounters(),
                    resident_warps_hint=float(resident),
                )
            else:
                launch = Launch(
                    name=f"{workload.name}/rec-naive",
                    block_size=min(max(int(d[k]), 1), 1024),
                    costs=costs,
                    parent=launch_of_node[parent_node],
                    parent_block=0,
                    device_stream=int(sibling_rank[node]) % params.streams_per_block,
                    counters=ProfileCounters(),
                    resident_warps_hint=float(resident),
                )
            launch_of_node[node] = graph.add(launch)
        return graph


class RecHierTreeTemplate(_TreeTemplateBase):
    """Fig. 3(e): children as blocks, grandchildren as threads."""

    name = "rec-hier"
    uses_dynamic_parallelism = True

    def specialize(self, workload, analysis, config, params):
        """Two-level launches: children as blocks, grandchildren as threads."""
        require_device_support(config, self.name)
        tree = workload.tree
        cfg = config
        degrees = analysis.degrees
        # a node needs a launch iff it has grandchildren (covers 2 levels),
        # plus the root launch which always exists
        child_deg_sum = analysis.child_deg_sum
        needs_launch = analysis.needs_launch
        graph = LaunchGraph()

        sibling_index = analysis.sibling_rank

        resident = resident_warps_estimate(
            cfg, params.lb_block, 4,
            concurrent_grids=min(int(needs_launch.size) + 1,
                                 cfg.max_concurrent_kernels),
        )
        seg = effective_segment_cycles(cfg, resident)

        launch_of_node: dict[int, int] = {}
        total_counters = ProfileCounters(warp=WarpExecStats(warp_size=cfg.warp_size))
        first = True
        for node in needs_launch.tolist():
            children = tree.children_of(node)
            if children.size == 0:
                children = np.zeros(0, dtype=np.int64)
            gdeg = degrees[children] if children.size else np.zeros(0, dtype=np.int64)
            n_blocks = max(int(children.size), 1)
            # per-block work: process grandchildren as threads
            wpb = -(-np.maximum(gdeg, 1) // cfg.warp_size)
            compute = (wpb * workload.inner_insts * 2 + 8.0) / cfg.warp_throughput_per_cycle
            mem = (_child_list_tx(cfg, np.maximum(gdeg, 1)) + 1) * seg
            atom = _block_reduction_cycles(cfg, gdeg) + cfg.atomic_cycles
            # blocks with grand-grandchildren spawn one nested launch each
            spawns_mask = child_deg_sum[children] > 0 if children.size else np.zeros(0, bool)
            issue = np.where(spawns_mask, cfg.device_launch_issue_cycles, 0) \
                if children.size else np.zeros(1)
            block_cycles = compute + mem + atom
            if children.size:
                block_cycles = block_cycles + issue
            else:
                block_cycles = np.array([100.0])
            # cross-block reduction into this node's counter: hot address
            serial_tail = children.size * cfg.atomic_same_address_cycles
            block_size = min(max(int(gdeg.max()) if gdeg.size else 1, cfg.warp_size), 1024)
            floor_scale = max(cfg.warp_throughput_per_cycle
                              / max(-(-block_size // cfg.warp_size), 1), 1.0)
            costs = KernelCosts(
                block_cycles=np.asarray(block_cycles, dtype=np.float64),
                block_floor=np.asarray(block_cycles, dtype=np.float64) * floor_scale,
                serial_tail=serial_tail,
            )
            # divergence stats: grandchildren fill warps of width gdeg
            if gdeg.size:
                issued = int((-(-np.maximum(gdeg, 1) // cfg.warp_size)).sum()
                             * workload.inner_insts)
                active = int(gdeg.sum() * workload.inner_insts)
                total_counters.warp.add_counts(issued, max(min(active, issued * 32), 0))
                total_counters.load_traffic = total_counters.load_traffic.merge(
                    MemoryTraffic(
                        requested_bytes=int(gdeg.sum()) * 8,
                        transactions=int(_child_list_tx(cfg, gdeg).sum()),
                        segment_bytes=cfg.mem_segment_bytes,
                    )
                )
                total_counters.atomic.merge(AtomicStats(
                    n_atomics=int(gdeg.sum() + children.size),
                    max_address_multiplicity=int(max(gdeg.max(), children.size)),
                ))
            parent_node = int(tree.parents[node])
            if parent_node < 0:
                total_counters.host_launches += 1
                launch = Launch(
                    name=f"{workload.name}/rec-hier",
                    block_size=block_size,
                    costs=costs,
                    counters=total_counters if first else ProfileCounters(),
                    resident_warps_hint=float(resident),
                )
            else:
                total_counters.device_launches += 1
                launch = Launch(
                    name=f"{workload.name}/rec-hier",
                    block_size=block_size,
                    costs=costs,
                    parent=launch_of_node[parent_node],
                    parent_block=int(sibling_index[node]),
                    counters=ProfileCounters(),
                    resident_warps_hint=float(resident),
                )
            launch_of_node[node] = graph.add(launch)
            first = False
        return graph


#: registry of tree templates by paper name
TREE_TEMPLATES = {
    "flat": FlatTreeTemplate,
    "rec-naive": RecNaiveTreeTemplate,
    "rec-hier": RecHierTreeTemplate,
}
