"""Template tuning parameters.

Two knobs dominate the paper's evaluation: the load-balancing threshold
``lbTHRES`` (how big an inner loop must be before it is moved to the
block-mapped / nested phase — Figs. 4-6, Table II) and the block size used
by the block-mapped portions (Fig. 4).  The thread-mapped phases use the
paper's fixed 192-thread blocks (the core count of a Kepler SM).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["TemplateParams", "DEFAULT_THREAD_BLOCK", "DEFAULT_LB_BLOCK"]

#: the paper's thread-mapped block size ("we use 192 threads per block,
#: equaling the number of cores per streaming multiprocessor")
DEFAULT_THREAD_BLOCK = 192
#: the paper's block-mapped block size after the Fig. 4 study ("in the
#: remaining experiments we use small blocks consisting of 64 threads")
DEFAULT_LB_BLOCK = 64


@dataclass(frozen=True, kw_only=True)
class TemplateParams:
    """Knobs shared by all parallelization templates (keyword-only).

    Fields
    ------
    lb_threshold:
        the paper's ``lbTHRES``: iterations with f(i) > lb_threshold move
        to the load-balanced (block-mapped / buffered / nested) phase.
        Must be >= 1 — a zero threshold would empty the thread-mapped
        phase entirely, which no template supports.
    thread_block:
        block size of thread-mapped kernels (paper default: 192, the core
        count of a Kepler SM).  At least one warp (32).
    lb_block:
        block size of the block-mapped code portions — the Fig. 4 x-axis
        (paper choice after that study: 64).
    registers_per_thread:
        per-thread register usage assumed by the occupancy calculation
        (the paper reports low register pressure; default 24).
    streams_per_block:
        device streams available to each block for nested launches; 1
        means only the per-block NULL stream (Fig. 9's "stream" variants
        use 2).
    max_grid_blocks:
        clamp on the grid size of any generated kernel; exceeding it is a
        :class:`~repro.errors.PlanError` at plan time, not a silent
        truncation.
    """

    #: iterations with f(i) > lb_threshold go to the load-balanced phase
    lb_threshold: int = 32
    #: block size of thread-mapped kernels
    thread_block: int = DEFAULT_THREAD_BLOCK
    #: block size of block-mapped kernels
    lb_block: int = DEFAULT_LB_BLOCK
    #: registers per thread assumed for occupancy (paper: low usage)
    registers_per_thread: int = 24
    #: extra device streams per thread-block for nested launches
    #: (1 = the per-block NULL stream only; Fig. 9's "stream" variants use 2)
    streams_per_block: int = 1
    #: maximum blocks a thread-mapped grid may use (grid-size clamp)
    max_grid_blocks: int = 65_535

    def __post_init__(self) -> None:
        if self.lb_threshold < 1:
            raise ConfigError("lb_threshold must be >= 1")
        if self.thread_block < 32 or self.lb_block < 1:
            raise ConfigError("block sizes out of range")
        if self.registers_per_thread < 1:
            raise ConfigError("registers_per_thread must be >= 1")
        if self.streams_per_block < 1:
            raise ConfigError("streams_per_block must be >= 1")
        if self.max_grid_blocks < 1:
            raise ConfigError("max_grid_blocks must be >= 1")

    def replace(self, **changes: object) -> "TemplateParams":
        """Copy with changes (revalidated)."""
        return dataclasses.replace(self, **changes)
