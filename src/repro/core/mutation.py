"""Streaming mutations of nested-loop workloads.

Production irregular workloads are not frozen: a graph under live traffic
gains and loses edges while queries keep arriving.  This module is the
pure core of the streaming story — a :class:`MutationBatch` describes one
batch of edge/node inserts and deletes against a
:class:`~repro.core.workload.NestedLoopWorkload`, :func:`apply_batch`
applies it functionally (fresh arrays, the input workload untouched), and
the resulting :class:`MutationDelta` is a structured, self-contained
record of exactly what changed.

The delta is the contract the rest of the stack builds on:

* :meth:`WorkloadAnalysis.apply_delta <repro.core.analysis.WorkloadAnalysis.apply_delta>`
  replays it over a parent analysis instead of recomputing from scratch;
* the ``lineage`` tier of the disk artifact cache persists it keyed on the
  child fingerprint, so warm processes and pool workers can walk back to
  the nearest ancestor analysis;
* the serving layer's :class:`~repro.service.streams.WorkloadStream`
  returns it from every ``mutate`` call.

Pair-splice semantics: deleted pairs are removed by their global
pre-mutation pair index; inserted pairs land at the *end* of their row's
slice (insertion order preserved within a row).  Both the workload's
per-pair arrays (stream addresses, atomic targets) and the analysis'
per-pair arrays (segment ids) are spliced by the same
``(deleted_pairs, insert_positions)`` coordinates, which is what makes the
incremental analysis bit-identical to a from-scratch rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.csr import concat_ranges

__all__ = [
    "PairInserts",
    "MutationBatch",
    "MutationDelta",
    "apply_batch",
    "splice",
]

#: segment size of the pair-trace coalescing model; deltas carry inserted
#: segment ids precomputed at this granularity (keep in sync with
#: ``analysis._TRACE_SEGMENT_BYTES``)
TRACE_SEGMENT_BYTES = 128


@dataclass
class PairInserts:
    """Pairs (inner iterations / edges) to insert, one batch.

    ``outer_ids[k]`` is the outer iteration (row) receiving pair ``k``;
    ``stream_addresses[s][k]`` is the byte address pair ``k`` contributes
    to the workload's stream ``s`` (one array per workload stream, all of
    equal length).  ``atomic_targets`` is optional and only valid on
    workloads that carry atomics (-1 = no atomic for that pair).
    """

    outer_ids: np.ndarray
    stream_addresses: list[np.ndarray] = field(default_factory=list)
    atomic_targets: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.outer_ids = np.asarray(self.outer_ids, dtype=np.int64)
        if self.outer_ids.ndim != 1:
            raise WorkloadError("inserts: outer_ids must be 1-D")
        self.stream_addresses = [
            np.asarray(a, dtype=np.int64) for a in self.stream_addresses
        ]
        n = self.outer_ids.size
        for k, addresses in enumerate(self.stream_addresses):
            if addresses.shape != (n,):
                raise WorkloadError(
                    f"inserts: stream {k} has {addresses.size} addresses "
                    f"for {n} inserted pairs"
                )
            if addresses.size and addresses.min() < 0:
                raise WorkloadError(f"inserts: stream {k} has negative addresses")
        if self.atomic_targets is not None:
            self.atomic_targets = np.asarray(self.atomic_targets, dtype=np.int64)
            if self.atomic_targets.shape != (n,):
                raise WorkloadError("inserts: atomic_targets must match outer_ids")


@dataclass
class MutationBatch:
    """One batch of structural edits to a nested-loop workload.

    * ``inserts`` — new pairs (edge inserts), appended at the end of their
      row's slice;
    * ``delete_pairs`` — global pair indices to remove (edge deletes), in
      pre-mutation numbering;
    * ``isolate_outer`` — outer ids whose pairs are all removed (node
      delete as a tombstone: the zero-trip row survives, so outer ids
      never renumber);
    * ``append_outer`` — number of fresh zero-trip rows appended at the
      end (node inserts; combine with ``inserts`` targeting the new ids
      ``outer_size .. outer_size + append_outer - 1`` to wire them up).
    """

    inserts: PairInserts | None = None
    delete_pairs: np.ndarray | None = None
    isolate_outer: np.ndarray | None = None
    append_outer: int = 0

    def __post_init__(self) -> None:
        if self.delete_pairs is not None:
            self.delete_pairs = np.asarray(self.delete_pairs, dtype=np.int64)
        if self.isolate_outer is not None:
            self.isolate_outer = np.asarray(self.isolate_outer, dtype=np.int64)
        self.append_outer = int(self.append_outer)
        if self.append_outer < 0:
            raise WorkloadError("append_outer cannot be negative")

    def is_empty(self) -> bool:
        """True when the batch would not change anything."""
        return (
            (self.inserts is None or self.inserts.outer_ids.size == 0)
            and (self.delete_pairs is None or self.delete_pairs.size == 0)
            and (self.isolate_outer is None or self.isolate_outer.size == 0)
            and self.append_outer == 0
        )


@dataclass
class MutationDelta:
    """Structured record of one committed mutation batch.

    Self-contained and picklable: everything
    :meth:`~repro.core.analysis.WorkloadAnalysis.apply_delta` needs to
    update a parent analysis is carried here, so delta chains loaded from
    the disk lineage tier replay without the intermediate workloads.

    ``changed``/``changed_old``/``changed_new`` cover pre-existing rows
    whose trip count changed; ``added``/``added_trips`` cover rows
    appended by this batch.  ``deleted_pairs`` are sorted pre-mutation
    global pair indices; ``insert_rows``/``insert_positions`` describe the
    inserted pairs sorted by row, with positions in *post-delete*
    coordinates (``np.insert`` semantics).  ``insert_segments`` carries
    the inserted pairs' per-stream segment ids
    (``address // TRACE_SEGMENT_BYTES``), aligned with ``insert_rows``.
    """

    parent_fingerprint: str
    fingerprint: str
    version_from: int
    version_to: int
    outer_before: int
    outer_after: int
    changed: np.ndarray
    changed_old: np.ndarray
    changed_new: np.ndarray
    added: np.ndarray
    added_trips: np.ndarray
    deleted_pairs: np.ndarray
    insert_rows: np.ndarray
    insert_positions: np.ndarray
    insert_segments: list[np.ndarray]
    insert_atomics: np.ndarray | None

    @property
    def n_deleted(self) -> int:
        return int(self.deleted_pairs.size)

    @property
    def n_inserted(self) -> int:
        return int(self.insert_rows.size)

    def touch_fractions(self, n_pairs_before: int) -> tuple[float, float]:
        """``(rows_frac, pairs_frac)`` — how much of the workload this
        delta touches, the rebuild-threshold inputs."""
        rows = self.changed.size + self.added.size
        pairs = self.n_deleted + self.n_inserted
        return (
            rows / max(1, self.outer_after),
            pairs / max(1, n_pairs_before + self.n_inserted),
        )

    def summary(self) -> dict[str, int]:
        """Plain-int description (service stats, bench records)."""
        return {
            "version_from": self.version_from,
            "version_to": self.version_to,
            "changed_rows": int(self.changed.size),
            "added_rows": int(self.added.size),
            "deleted_pairs": self.n_deleted,
            "inserted_pairs": self.n_inserted,
        }


def splice(arr: np.ndarray, delete_idx: np.ndarray,
           insert_pos: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Delete-then-insert on a per-pair array, returning a fresh array.

    ``delete_idx`` is in pre-splice coordinates, ``insert_pos`` in
    post-delete coordinates (repeated positions keep the order of
    ``values``, per ``np.insert``).  The workload commit and the
    incremental analysis run this exact function over their per-pair
    arrays, which is what keeps them bit-identical.

    Implemented as run-slicing + one concatenate per pass rather than
    ``np.delete``/``np.insert``: for the sparse edits streaming batches
    make, those build full-size boolean masks (~8x slower than copying
    the surviving runs), and this function is the per-stream hot loop of
    both the commit and the delta replay.
    """
    if delete_idx.size == 0:
        k = insert_pos.size
        if k == 0:
            return arr.copy()
        order = np.argsort(insert_pos, kind="stable")
        vals = np.asarray(values, dtype=arr.dtype)[order]  # np.insert casts
        pieces = []
        prev = 0
        for j, pos in enumerate(insert_pos[order].tolist()):
            pieces.append(arr[prev:pos])
            pieces.append(vals[j:j + 1])
            prev = pos
        pieces.append(arr[prev:])
        return np.concatenate(pieces)

    dele = np.unique(delete_idx)  # np.delete semantics: dups drop once
    d_list = dele.tolist()
    if insert_pos.size == 0:
        bounds = zip(
            np.concatenate(([0], dele + 1)).tolist(),
            np.concatenate((dele, [arr.size])).tolist(),
        )
        return np.concatenate([arr[a:b] for a, b in bounds])

    # both: map insert points back to pre-delete coordinates, then walk
    # deletes and inserts together — one concatenate, one pass over arr
    order = np.argsort(insert_pos, kind="stable")
    vals = np.asarray(values, dtype=arr.dtype)[order]
    pos_sorted = insert_pos[order]
    shift = np.searchsorted(dele - np.arange(dele.size), pos_sorted,
                            side="right")
    pieces = []
    prev = 0
    di = 0
    n_del = len(d_list)
    for j, q in enumerate((pos_sorted + shift).tolist()):
        while di < n_del and d_list[di] < q:
            pieces.append(arr[prev:d_list[di]])
            prev = d_list[di] + 1
            di += 1
        pieces.append(arr[prev:q])
        pieces.append(vals[j:j + 1])
        prev = q
    while di < n_del:
        pieces.append(arr[prev:d_list[di]])
        prev = d_list[di] + 1
        di += 1
    pieces.append(arr[prev:])
    return np.concatenate(pieces)


@dataclass
class _NewState:
    """Post-mutation workload arrays (all freshly allocated)."""

    trip_counts: np.ndarray
    stream_addresses: list[np.ndarray]
    atomic_targets: np.ndarray | None


def apply_batch(workload, batch: MutationBatch) -> tuple[_NewState, MutationDelta]:
    """Apply one batch functionally: new arrays plus the structured delta.

    Never touches ``workload`` — both the in-place
    ``NestedLoopWorkload.apply_mutations`` commit and the functional
    ``mutated`` snapshot path are thin wrappers around this.  The returned
    delta's ``fingerprint``/``version_to`` are provisional (parent values)
    until the caller constructs the child and stamps them.
    """
    if not isinstance(batch, MutationBatch):
        raise WorkloadError("expected a MutationBatch")
    if batch.is_empty():
        raise WorkloadError("empty mutation batch (no inserts, deletes or appends)")
    n_old = workload.outer_size
    n_pairs_old = workload.n_pairs
    old_trips = workload.trip_counts
    old_offsets = workload.pair_offsets
    append = batch.append_outer
    n_new = n_old + append

    # ---- deletions: explicit pair deletes plus isolated rows' pairs
    if batch.delete_pairs is not None and batch.delete_pairs.size:
        delete = np.unique(batch.delete_pairs)
        if delete[0] < 0 or delete[-1] >= n_pairs_old:
            raise WorkloadError("delete_pairs out of range")
    else:
        delete = np.zeros(0, dtype=np.int64)
    if batch.isolate_outer is not None and batch.isolate_outer.size:
        iso = np.unique(batch.isolate_outer)
        if iso[0] < 0 or iso[-1] >= n_old:
            raise WorkloadError("isolate_outer out of range")
        iso_pairs = concat_ranges(old_offsets[iso], old_trips[iso])
        delete = np.union1d(delete, iso_pairs)
    del_per_row = np.diff(np.searchsorted(delete, old_offsets))
    trips_after_delete = np.concatenate(
        [old_trips - del_per_row, np.zeros(append, dtype=np.int64)]
    )

    # ---- insertions: sort by row (stable), position at end of row slice
    ins = batch.inserts
    if ins is not None and ins.outer_ids.size:
        if len(ins.stream_addresses) != len(workload.streams):
            raise WorkloadError(
                f"inserts carry {len(ins.stream_addresses)} streams but the "
                f"workload has {len(workload.streams)}"
            )
        rows = ins.outer_ids
        if rows.min() < 0 or rows.max() >= n_new:
            raise WorkloadError("inserts: outer_ids out of range")
        if ins.atomic_targets is not None and workload.atomic_targets is None:
            raise WorkloadError(
                "inserts carry atomic targets but the workload has none"
            )
        order = np.argsort(rows, kind="stable")
        insert_rows = rows[order]
        insert_addresses = [a[order] for a in ins.stream_addresses]
        if workload.atomic_targets is not None:
            if ins.atomic_targets is not None:
                insert_atomics = ins.atomic_targets[order]
            else:
                insert_atomics = np.full(insert_rows.size, -1, dtype=np.int64)
        else:
            insert_atomics = None
        ins_per_row = np.bincount(insert_rows, minlength=n_new)
    else:
        insert_rows = np.zeros(0, dtype=np.int64)
        insert_addresses = [
            np.zeros(0, dtype=np.int64) for _ in workload.streams
        ]
        insert_atomics = (
            np.zeros(0, dtype=np.int64)
            if workload.atomic_targets is not None else None
        )
        ins_per_row = np.zeros(n_new, dtype=np.int64)

    new_trips = trips_after_delete + ins_per_row
    offsets_after_delete = np.zeros(n_new + 1, dtype=np.int64)
    np.cumsum(trips_after_delete, out=offsets_after_delete[1:])
    insert_positions = offsets_after_delete[insert_rows + 1]

    new_streams = [
        splice(stream.addresses, delete, insert_positions, insert_addresses[k])
        for k, stream in enumerate(workload.streams)
    ]
    if workload.atomic_targets is not None:
        new_atomics = splice(
            workload.atomic_targets, delete, insert_positions, insert_atomics
        )
    else:
        new_atomics = None

    changed = np.flatnonzero(
        (del_per_row > 0) | (ins_per_row[:n_old] > 0)
    )
    delta = MutationDelta(
        parent_fingerprint=workload.fingerprint(),
        fingerprint=workload.fingerprint(),  # stamped by the caller
        version_from=workload.version,
        version_to=workload.version + 1,
        outer_before=n_old,
        outer_after=n_new,
        changed=changed,
        changed_old=old_trips[changed],
        changed_new=new_trips[changed],
        added=np.arange(n_old, n_new, dtype=np.int64),
        added_trips=new_trips[n_old:].copy(),
        deleted_pairs=delete,
        insert_rows=insert_rows,
        insert_positions=insert_positions,
        insert_segments=[a // TRACE_SEGMENT_BYTES for a in insert_addresses],
        insert_atomics=insert_atomics,
    )
    state = _NewState(
        trip_counts=new_trips,
        stream_addresses=new_streams,
        atomic_targets=new_atomics,
    )
    return state, delta
