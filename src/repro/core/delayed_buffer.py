"""Delayed-buffer templates (Fig. 1(c)): dbuf-global and dbuf-shared.

Both run a thread-mapped first phase in which every thread either executes
its (small) inner loop or *delays* it by appending the iteration id to a
buffer.  They differ in where the buffer lives:

* **dbuf-global** — the buffer is in global memory; a second kernel
  processes it block-mapped with the work *redistributed fairly across
  blocks* (no intra-grid imbalance), at the price of an extra kernel
  launch and global buffer traffic;
* **dbuf-shared** — the buffer is per-block in shared memory; the same
  kernel processes it in an in-block second phase.  No second launch and
  better store coalescing through shared-memory staging, but blocks that
  happened to own many large iterations finish late (work imbalance
  across blocks, worst at low ``lbTHRES``).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import NestedLoopTemplate
from repro.core.mapping import (
    add_block_mapped_inner,
    add_outer_setup,
    add_partitioned_pairs,
    add_thread_mapped_inner,
)
from repro.core.params import TemplateParams
from repro.core.workload import NestedLoopWorkload
from repro.gpusim.config import DeviceConfig
from repro.gpusim.costmodel import KernelCostBuilder
from repro.gpusim.kernels import LaunchGraph

__all__ = ["DelayedBufferGlobalTemplate", "DelayedBufferSharedTemplate"]

#: instructions spent appending one iteration to a delayed buffer
_APPEND_INSTS = 4.0


def _phase_one(
    workload: NestedLoopWorkload,
    config: DeviceConfig,
    params: TemplateParams,
    small: np.ndarray,
    large: np.ndarray,
    buffer_in_shared: bool,
    analysis=None,
) -> KernelCostBuilder:
    """Thread-mapped phase: process small iterations, delay large ones."""
    n = workload.outer_size
    blocks = NestedLoopTemplate._grid_for(n, params.thread_block,
                                          params.max_grid_blocks)
    smem = params.thread_block * 4 if buffer_in_shared else 0
    builder = KernelCostBuilder(
        config,
        f"{workload.name}/dbuf-phase1",
        block_size=params.thread_block,
        n_blocks=blocks,
        registers_per_thread=params.registers_per_thread,
        shared_mem_per_block=smem,
    )
    add_outer_setup(builder, workload, n)
    if small.size:
        add_thread_mapped_inner(builder, workload, small, small,
                                analysis=analysis)
    if large.size:
        # append cost: compare + buffer write per delayed iteration
        flags = np.zeros(n, dtype=np.int64)
        flags[large] = 1
        builder.add_loop(flags, insts_per_iter=_APPEND_INSTS)
        if buffer_in_shared:
            builder.add_shared_accesses(int(large.size))
        else:
            per_warp = np.zeros(builder.n_warps)
            warp_of_large = builder.warp_of_thread(large)
            np.add.at(per_warp, warp_of_large, 1.0)
            builder.add_traffic(per_warp, int(large.size) * 4, "store")
            # global buffer tail counter
            builder.add_hot_address_tail(int(large.size))
    return builder


class DelayedBufferGlobalTemplate(NestedLoopTemplate):
    """dbuf-global: global-memory buffer + fair cross-block second kernel."""

    name = "dbuf-global"

    def specialize(self, workload: NestedLoopWorkload, analysis,
                   config: DeviceConfig, params: TemplateParams):
        small, large = analysis.partition(params.lb_threshold)
        graph = LaunchGraph()
        graph.add(_phase_one(workload, config, params, small, large,
                             buffer_in_shared=False, analysis=analysis).build())
        if large.size:
            # grid sized to saturate the device; work split evenly
            occ_blocks = config.sm_count * config.max_blocks_per_sm
            pair_total = int(workload.subset_trips(large).sum())
            grid = min(
                max(1, int(large.size)),
                max(occ_blocks, 1),
                max(1, -(-pair_total // params.lb_block)),
            )
            builder = KernelCostBuilder(
                config, f"{workload.name}/dbuf-phase2",
                block_size=params.lb_block, n_blocks=grid,
                registers_per_thread=params.registers_per_thread,
            )
            add_outer_setup(builder, workload, large.size, indirect=True)
            add_partitioned_pairs(builder, workload, large, analysis=analysis)
            graph.add(builder.build())
        return graph, {"inline": small, "buffered": large}


class DelayedBufferSharedTemplate(NestedLoopTemplate):
    """dbuf-shared: per-block shared-memory buffer, single kernel."""

    name = "dbuf-shared"
    #: the in-kernel two-phase handoff (fill shared buffer, then drain it
    #: block-wide) assumes every thread of the bulk launch reaches the
    #: phase boundary together — persistent workers pulling tasks give no
    #: such launch-wide barrier, so queue backends fall back to BSP
    queue_compatible = False

    def specialize(self, workload: NestedLoopWorkload, analysis,
                   config: DeviceConfig, params: TemplateParams):
        small, large = analysis.partition(params.lb_threshold)
        n = workload.outer_size
        builder = _phase_one(workload, config, params, small, large,
                             buffer_in_shared=True, analysis=analysis)
        if large.size:
            # The in-block phase keeps each delayed iteration in the block
            # that owns it (thread id -> block id): no redistribution, so
            # hub-heavy blocks run long.  Stores are staged through shared
            # memory and flushed coalesced.
            owner_block = large // params.thread_block
            # phase 2 uses the same (192-thread) blocks
            add_block_mapped_inner(
                builder, workload, large, owner_block, coalesce_stores=True,
                analysis=analysis,
            )
        graph = LaunchGraph()
        graph.add(builder.build())
        return graph, {"inline": small, "buffered": large}
