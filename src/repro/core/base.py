"""Template base classes and the run wrapper."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields as dataclass_fields

import numpy as np

from repro import obs
from repro.core.params import TemplateParams
from repro.core.plancache import default_cache
from repro.core.workload import NestedLoopWorkload
from repro.errors import PlanError
from repro.gpusim.config import DeviceConfig
from repro.gpusim.executor import ExecutionResult, GpuExecutor
from repro.gpusim.kernels import LaunchGraph
from repro.gpusim.profiler import ProfileMetrics, profile

__all__ = ["TemplateRun", "NestedLoopTemplate", "check_schedule", "plan_key"]


def plan_key(
    template: "NestedLoopTemplate | object",
    workload_fingerprint: str,
    config: DeviceConfig,
    params: TemplateParams,
) -> tuple:
    """Cache key for one template build.

    Only the params fields named in the template's ``PLAN_RELEVANT_PARAMS``
    enter the key (None means all fields): sweeping a parameter the
    template's plan never reads keeps hitting the same entry.
    """
    relevant = getattr(template, "PLAN_RELEVANT_PARAMS", None)
    if relevant is None:
        relevant = tuple(f.name for f in dataclass_fields(params))
    param_items = tuple((name, getattr(params, name)) for name in relevant)
    return (workload_fingerprint, template.name, config, param_items)


@dataclass
class TemplateRun:
    """Everything one template execution produced."""

    template: str
    workload: str
    graph: LaunchGraph
    result: ExecutionResult
    metrics: ProfileMetrics
    #: phase name -> outer iteration ids handled by that phase
    schedule: dict[str, np.ndarray] = field(default_factory=dict)
    params: TemplateParams | None = None

    @property
    def time_ms(self) -> float:
        """End-to-end simulated time."""
        return self.result.time_ms


def check_schedule(schedule: dict[str, np.ndarray], outer_size: int) -> None:
    """Every outer iteration must be scheduled exactly once across phases.

    This is the work-conservation invariant templates must uphold: load
    balancing may *move* iterations between phases, never drop or
    duplicate them.
    """
    if not schedule:
        raise PlanError("schedule is empty")
    allx = np.concatenate([np.asarray(v, dtype=np.int64) for v in schedule.values()])
    if allx.size != outer_size:
        raise PlanError(
            f"schedule covers {allx.size} iterations, expected {outer_size}"
        )
    seen = np.zeros(outer_size, dtype=bool)
    if allx.size and (allx.min() < 0 or allx.max() >= outer_size):
        raise PlanError("schedule contains out-of-range iterations")
    seen[allx] = True
    if allx.size != np.count_nonzero(seen):
        raise PlanError("schedule assigns some iteration twice")
    if not seen.all():
        raise PlanError("schedule drops iterations")


class NestedLoopTemplate(ABC):
    """A parallelization template for irregular nested loops (Fig. 1)."""

    #: template identifier (paper name)
    name: str = "abstract"
    #: whether the template needs CC >= 3.5 nested launches
    uses_dynamic_parallelism: bool = False
    #: :class:`TemplateParams` fields this template's build() reads; the
    #: plan cache keys only on these (None = key on every field)
    PLAN_RELEVANT_PARAMS: tuple[str, ...] | None = None

    @abstractmethod
    def build(
        self,
        workload: NestedLoopWorkload,
        config: DeviceConfig,
        params: TemplateParams,
    ) -> tuple[LaunchGraph, dict[str, np.ndarray]]:
        """Produce the launch graph + phase schedule for a workload."""

    def run(
        self,
        workload: NestedLoopWorkload,
        config: DeviceConfig,
        params: TemplateParams | None = None,
        executor: GpuExecutor | None = None,
    ) -> TemplateRun:
        """Build, validate, execute and profile in one call.

        Plans are served from the process-wide plan cache when an identical
        (workload, template, plan-relevant params, device) build was done
        before; cached graphs are shared, so treat them as read-only.
        """
        params = params or TemplateParams()
        cache = default_cache()
        key = plan_key(self, workload.fingerprint(), config, params)
        cached = cache.get(key)
        if cached is not None:
            graph, schedule = cached
            if obs.enabled():
                obs.instant("plan.cache_hit", template=self.name,
                            workload=workload.name)
                obs.add_counter("plan_cache.hits")
        else:
            with obs.span("plan.build", template=self.name,
                          workload=workload.name):
                graph, schedule = self.build(workload, config, params)
                check_schedule(schedule, workload.outer_size)
            cache.put(key, (graph, schedule))
            obs.add_counter("plan_cache.misses")
        executor = executor or GpuExecutor(config)
        result = executor.run(graph)
        metrics = profile(graph, result, config)
        return TemplateRun(
            template=self.name,
            workload=workload.name,
            graph=graph,
            result=result,
            metrics=metrics,
            schedule=schedule,
            params=params,
        )

    # convenience used by all subclasses
    @staticmethod
    def _grid_for(n_threads: int, block_size: int, max_blocks: int) -> int:
        if n_threads <= 0:
            raise PlanError("grid needs at least one thread")
        blocks = -(-n_threads // block_size)
        if blocks > max_blocks:
            raise PlanError(
                f"grid of {blocks} blocks exceeds the configured clamp "
                f"({max_blocks}); enlarge TemplateParams.max_grid_blocks"
            )
        return blocks
