"""Template base classes and the run wrapper."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields as dataclass_fields

import numpy as np

from repro import obs
from repro.backends import coerce_backend, effective_backend, run_sharded
from repro.core.analysis import WorkloadAnalysis, get_analysis
from repro.core.artifactcache import get_artifact_cache
from repro.core.params import TemplateParams
from repro.core.plancache import default_cache
from repro.core.workload import NestedLoopWorkload
from repro.errors import PlanError
from repro.gpusim.config import DeviceConfig
from repro.gpusim.executor import ExecutionResult, get_default_engine
from repro.gpusim.kernels import LaunchGraph
from repro.gpusim.profiler import ProfileMetrics, profile

__all__ = ["TemplateRun", "NestedLoopTemplate", "check_schedule", "plan_key"]


def plan_key(
    template: "NestedLoopTemplate | object",
    workload_fingerprint: str,
    config: DeviceConfig,
    params: TemplateParams,
) -> tuple:
    """Cache key for one template build.

    Only the params fields named in the template's ``PLAN_RELEVANT_PARAMS``
    enter the key (None means all fields): sweeping a parameter the
    template's plan never reads keeps hitting the same entry.  The device
    enters as its content fingerprint string, so equal configs constructed
    in different processes produce identical (and repr-stable) keys — the
    disk artifact cache depends on this.
    """
    relevant = getattr(template, "PLAN_RELEVANT_PARAMS", None)
    if relevant is None:
        relevant = tuple(f.name for f in dataclass_fields(params))
    param_items = tuple((name, getattr(params, name)) for name in relevant)
    return (workload_fingerprint, template.name, config.fingerprint(), param_items)


@dataclass
class TemplateRun:
    """Everything one template execution produced."""

    template: str
    workload: str
    graph: LaunchGraph
    result: ExecutionResult
    metrics: ProfileMetrics
    #: phase name -> outer iteration ids handled by that phase
    schedule: dict[str, np.ndarray] = field(default_factory=dict)
    params: TemplateParams | None = None
    #: per-shard runs of a multi-device execution (None for single-device)
    device_runs: list["TemplateRun"] | None = None
    #: the auto-select decision behind a ``template="auto"`` run
    #: (:class:`~repro.ir.select.Selection`; None for named-template runs)
    selection: object | None = None

    @property
    def time_ms(self) -> float:
        """End-to-end simulated time."""
        return self.result.time_ms


def check_schedule(schedule: dict[str, np.ndarray], outer_size: int) -> None:
    """Every outer iteration must be scheduled exactly once across phases.

    This is the work-conservation invariant templates must uphold: load
    balancing may *move* iterations between phases, never drop or
    duplicate them.
    """
    if not schedule:
        raise PlanError("schedule is empty")
    allx = np.concatenate([np.asarray(v, dtype=np.int64) for v in schedule.values()])
    if allx.size != outer_size:
        raise PlanError(
            f"schedule covers {allx.size} iterations, expected {outer_size}"
        )
    seen = np.zeros(outer_size, dtype=bool)
    if allx.size and (allx.min() < 0 or allx.max() >= outer_size):
        raise PlanError("schedule contains out-of-range iterations")
    seen[allx] = True
    if allx.size != np.count_nonzero(seen):
        raise PlanError("schedule assigns some iteration twice")
    if not seen.all():
        raise PlanError("schedule drops iterations")


class NestedLoopTemplate(ABC):
    """A parallelization template for irregular nested loops (Fig. 1)."""

    #: template identifier (paper name)
    name: str = "abstract"
    #: whether the template needs CC >= 3.5 nested launches
    uses_dynamic_parallelism: bool = False
    #: whether the plan is legal under persistent-queue execution; False
    #: for templates whose correctness depends on launch-wide barrier
    #: semantics (see repro.backends.effective_backend)
    queue_compatible: bool = True
    #: :class:`TemplateParams` fields this template's build() reads; the
    #: plan cache keys only on these (None = key on every field)
    PLAN_RELEVANT_PARAMS: tuple[str, ...] | None = None

    def build(
        self,
        workload: NestedLoopWorkload,
        config: DeviceConfig,
        params: TemplateParams,
    ) -> tuple[LaunchGraph, dict[str, np.ndarray]]:
        """Produce the launch graph + phase schedule for a workload.

        Two-stage pipeline: fetch (or compute) the workload-invariant
        :class:`WorkloadAnalysis` from the fingerprint-keyed analysis
        cache, then :meth:`specialize` it to this concrete ``(config,
        params)`` point.  A parameter sweep over N points therefore pays
        the analysis once and runs only the cheap specialize stage N times.
        """
        return self.specialize(workload, get_analysis(workload), config, params)

    @abstractmethod
    def specialize(
        self,
        workload: NestedLoopWorkload,
        analysis: WorkloadAnalysis,
        config: DeviceConfig,
        params: TemplateParams,
    ) -> tuple[LaunchGraph, dict[str, np.ndarray]]:
        """Assemble the launch graph for one concrete parameter point.

        ``analysis`` holds everything that depends on the workload alone
        (sorted trip order, threshold partitions, per-stream segment ids);
        implementations must not mutate it — it is shared across templates,
        parameter points and (via the disk cache) processes.
        """

    def run(
        self,
        workload: NestedLoopWorkload,
        config: DeviceConfig,
        params: TemplateParams | None = None,
        executor=None,
        *,
        backend=None,
    ) -> TemplateRun:
        """Build, validate, execute and profile in one call.

        Execution goes through a :class:`~repro.backends.Backend` —
        resolved from ``backend``, a legacy ``executor`` (wrapped
        unchanged), or the process's default device topology.  A
        multi-device backend shards the workload and merges the
        per-device runs (see :func:`repro.backends.run_sharded`).

        Plans are served from the process-wide plan cache when an identical
        (workload, template, plan-relevant params, device) build was done
        before, falling back to the disk artifact cache (shared across
        bench/service worker processes) when one is configured; cached
        graphs are shared, so treat them as read-only.  Execution results
        are themselves cached in the disk ``run`` tier — the simulator is
        deterministic — except when a timeline or tracing is requested,
        which needs a live run.
        """
        params = params or TemplateParams()
        backend = effective_backend(
            coerce_backend(backend, executor, config), self
        )
        if backend.n_devices > 1:
            merged = run_sharded(self, workload, backend, config, params)
            if merged is not None:
                return merged
            backend = backend.members[0]
        cache = default_cache()
        key = plan_key(self, workload.fingerprint(), config, params)
        disk = get_artifact_cache()
        cached = cache.get(key)
        if cached is not None:
            graph, schedule = cached
            if obs.enabled():
                obs.instant("plan.cache_hit", template=self.name,
                            workload=workload.name)
                obs.add_counter("plan_cache.hits")
        else:
            plan = disk.get("plan", key) if disk is not None else None
            if plan is None:
                with obs.span("plan.build", template=self.name,
                              workload=workload.name):
                    graph, schedule = self.build(workload, config, params)
                    check_schedule(schedule, workload.outer_size)
                if disk is not None:
                    disk.put("plan", key, (graph, schedule))
            else:
                graph, schedule = plan
            cache.put(key, (graph, schedule))
            obs.add_counter("plan_cache.misses")
        use_run_tier = (
            disk is not None
            and not backend.record_timeline
            and not obs.enabled()
        )
        result = None
        if use_run_tier:
            run_key = (key, backend.engine or get_default_engine())
            # non-BSP execution models tag their run entries; the classic
            # (untagged) key stays byte-identical for sim backends
            tag = backend.run_cache_tag
            if tag is not None:
                run_key = run_key + (tag,)
            result = disk.get("run", run_key)
        if result is None:
            result = backend.submit(graph)
            if use_run_tier:
                disk.put("run", run_key, result)
        metrics = profile(graph, result, config)
        return TemplateRun(
            template=self.name,
            workload=workload.name,
            graph=graph,
            result=result,
            metrics=metrics,
            schedule=schedule,
            params=params,
        )

    # convenience used by all subclasses
    @staticmethod
    def _grid_for(n_threads: int, block_size: int, max_blocks: int) -> int:
        if n_threads <= 0:
            raise PlanError("grid needs at least one thread")
        blocks = -(-n_threads // block_size)
        if blocks > max_blocks:
            raise PlanError(
                f"grid of {blocks} blocks exceeds the configured clamp "
                f"({max_blocks}); enlarge TemplateParams.max_grid_blocks"
            )
        return blocks
