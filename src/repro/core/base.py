"""Template base classes and the run wrapper."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields as dataclass_fields

import numpy as np

from repro import obs
from repro.backends import coerce_backend, effective_backend, run_sharded
from repro.core.analysis import WorkloadAnalysis, get_analysis
from repro.core.artifactcache import get_artifact_cache
from repro.core.params import TemplateParams
from repro.core.plancache import default_cache
from repro.core.workload import NestedLoopWorkload
from repro.errors import PlanError
from repro.gpusim.config import DeviceConfig
from repro.gpusim.executor import ExecutionResult, get_default_engine
from repro.gpusim.kernels import LaunchGraph
from repro.gpusim.profiler import ProfileMetrics, profile

__all__ = [
    "TemplateRun", "NestedLoopTemplate", "check_schedule", "plan_key",
    "run_many",
]


def plan_key(
    template: "NestedLoopTemplate | object",
    workload_fingerprint: str,
    config: DeviceConfig,
    params: TemplateParams,
) -> tuple:
    """Cache key for one template build.

    Only the params fields named in the template's ``PLAN_RELEVANT_PARAMS``
    enter the key (None means all fields): sweeping a parameter the
    template's plan never reads keeps hitting the same entry.  The device
    enters as its content fingerprint string, so equal configs constructed
    in different processes produce identical (and repr-stable) keys — the
    disk artifact cache depends on this.
    """
    relevant = getattr(template, "PLAN_RELEVANT_PARAMS", None)
    if relevant is None:
        relevant = tuple(f.name for f in dataclass_fields(params))
    param_items = tuple((name, getattr(params, name)) for name in relevant)
    return (workload_fingerprint, template.name, config.fingerprint(), param_items)


@dataclass
class TemplateRun:
    """Everything one template execution produced."""

    template: str
    workload: str
    graph: LaunchGraph
    result: ExecutionResult
    metrics: ProfileMetrics
    #: phase name -> outer iteration ids handled by that phase
    schedule: dict[str, np.ndarray] = field(default_factory=dict)
    params: TemplateParams | None = None
    #: per-shard runs of a multi-device execution (None for single-device)
    device_runs: list["TemplateRun"] | None = None
    #: the auto-select decision behind a ``template="auto"`` run
    #: (:class:`~repro.ir.select.Selection`; None for named-template runs)
    selection: object | None = None

    @property
    def time_ms(self) -> float:
        """End-to-end simulated time."""
        return self.result.time_ms


def check_schedule(schedule: dict[str, np.ndarray], outer_size: int) -> None:
    """Every outer iteration must be scheduled exactly once across phases.

    This is the work-conservation invariant templates must uphold: load
    balancing may *move* iterations between phases, never drop or
    duplicate them.
    """
    if not schedule:
        raise PlanError("schedule is empty")
    allx = np.concatenate([np.asarray(v, dtype=np.int64) for v in schedule.values()])
    if allx.size != outer_size:
        raise PlanError(
            f"schedule covers {allx.size} iterations, expected {outer_size}"
        )
    seen = np.zeros(outer_size, dtype=bool)
    if allx.size and (allx.min() < 0 or allx.max() >= outer_size):
        raise PlanError("schedule contains out-of-range iterations")
    seen[allx] = True
    if allx.size != np.count_nonzero(seen):
        raise PlanError("schedule assigns some iteration twice")
    if not seen.all():
        raise PlanError("schedule drops iterations")


@dataclass
class _PreparedRun:
    """A template run with its plan resolved but execution still pending.

    The single-device half of :meth:`NestedLoopTemplate.run`, split out so
    batch entry points (:func:`run_many`, the service fusion path) can
    resolve many plans first, execute every run-tier miss as **one** fused
    backend pass, and only then finalize — without duplicating any of the
    plan-cache / disk-cache / run-tier logic.
    """

    template: "NestedLoopTemplate"
    workload: NestedLoopWorkload
    config: DeviceConfig
    params: TemplateParams
    graph: LaunchGraph
    schedule: dict[str, np.ndarray]
    #: run-tier key when the disk run tier applies to this run, else None
    run_key: tuple | None
    #: cached execution result (run-tier hit), or None when a live
    #: execution is still needed
    result: ExecutionResult | None

    def record(self, result: ExecutionResult) -> None:
        """Attach a live execution result, persisting it to the run tier."""
        self.result = result
        if self.run_key is not None:
            disk = get_artifact_cache()
            if disk is not None:
                disk.put("run", self.run_key, result)

    def finish(self) -> TemplateRun:
        """Profile the (now present) result and assemble the TemplateRun."""
        metrics = profile(self.graph, self.result, self.config)
        return TemplateRun(
            template=self.template.name,
            workload=self.workload.name,
            graph=self.graph,
            result=self.result,
            metrics=metrics,
            schedule=self.schedule,
            params=self.params,
        )


class NestedLoopTemplate(ABC):
    """A parallelization template for irregular nested loops (Fig. 1)."""

    #: template identifier (paper name)
    name: str = "abstract"
    #: whether the template needs CC >= 3.5 nested launches
    uses_dynamic_parallelism: bool = False
    #: whether the plan is legal under persistent-queue execution; False
    #: for templates whose correctness depends on launch-wide barrier
    #: semantics (see repro.backends.effective_backend)
    queue_compatible: bool = True
    #: :class:`TemplateParams` fields this template's build() reads; the
    #: plan cache keys only on these (None = key on every field)
    PLAN_RELEVANT_PARAMS: tuple[str, ...] | None = None

    def build(
        self,
        workload: NestedLoopWorkload,
        config: DeviceConfig,
        params: TemplateParams,
    ) -> tuple[LaunchGraph, dict[str, np.ndarray]]:
        """Produce the launch graph + phase schedule for a workload.

        Two-stage pipeline: fetch (or compute) the workload-invariant
        :class:`WorkloadAnalysis` from the fingerprint-keyed analysis
        cache, then :meth:`specialize` it to this concrete ``(config,
        params)`` point.  A parameter sweep over N points therefore pays
        the analysis once and runs only the cheap specialize stage N times.
        """
        return self.specialize(workload, get_analysis(workload), config, params)

    @abstractmethod
    def specialize(
        self,
        workload: NestedLoopWorkload,
        analysis: WorkloadAnalysis,
        config: DeviceConfig,
        params: TemplateParams,
    ) -> tuple[LaunchGraph, dict[str, np.ndarray]]:
        """Assemble the launch graph for one concrete parameter point.

        ``analysis`` holds everything that depends on the workload alone
        (sorted trip order, threshold partitions, per-stream segment ids);
        implementations must not mutate it — it is shared across templates,
        parameter points and (via the disk cache) processes.
        """

    def run(
        self,
        workload: NestedLoopWorkload,
        config: DeviceConfig,
        params: TemplateParams | None = None,
        executor=None,
        *,
        backend=None,
    ) -> TemplateRun:
        """Build, validate, execute and profile in one call.

        Execution goes through a :class:`~repro.backends.Backend` —
        resolved from ``backend``, a legacy ``executor`` (wrapped
        unchanged), or the process's default device topology.  A
        multi-device backend shards the workload and merges the
        per-device runs (see :func:`repro.backends.run_sharded`).

        Plans are served from the process-wide plan cache when an identical
        (workload, template, plan-relevant params, device) build was done
        before, falling back to the disk artifact cache (shared across
        bench/service worker processes) when one is configured; cached
        graphs are shared, so treat them as read-only.  Execution results
        are themselves cached in the disk ``run`` tier — the simulator is
        deterministic — except when a timeline or tracing is requested,
        which needs a live run.
        """
        params = params or TemplateParams()
        backend = effective_backend(
            coerce_backend(backend, executor, config), self
        )
        if backend.n_devices > 1:
            merged = run_sharded(self, workload, backend, config, params)
            if merged is not None:
                return merged
            backend = backend.members[0]
        prep = self._prepare(workload, config, params, backend)
        if prep.result is None:
            prep.record(backend.submit(prep.graph))
        return prep.finish()

    def _prepare(
        self,
        workload: NestedLoopWorkload,
        config: DeviceConfig,
        params: TemplateParams,
        backend,
    ) -> _PreparedRun:
        """Resolve the plan and probe the run tier; execution stays pending.

        Single source of the caching ladder: process plan cache → disk
        plan tier → live build, then a disk run-tier probe (skipped when a
        timeline or tracing is requested, which needs a live run).  The
        returned :class:`_PreparedRun` carries ``result`` when the run
        tier hit; callers execute the graph themselves otherwise — one at
        a time (:meth:`run`) or fused (:func:`run_many`).
        """
        cache = default_cache()
        key = plan_key(self, workload.fingerprint(), config, params)
        disk = get_artifact_cache()
        cached = cache.get(key)
        if cached is not None:
            graph, schedule = cached
            if obs.enabled():
                obs.instant("plan.cache_hit", template=self.name,
                            workload=workload.name)
                obs.add_counter("plan_cache.hits")
        else:
            plan = disk.get("plan", key) if disk is not None else None
            if plan is None:
                with obs.span("plan.build", template=self.name,
                              workload=workload.name):
                    graph, schedule = self.build(workload, config, params)
                    check_schedule(schedule, workload.outer_size)
                if disk is not None:
                    disk.put("plan", key, (graph, schedule))
            else:
                graph, schedule = plan
            cache.put(key, (graph, schedule))
            obs.add_counter("plan_cache.misses")
        use_run_tier = (
            disk is not None
            and not backend.record_timeline
            and not obs.enabled()
        )
        run_key = None
        result = None
        if use_run_tier:
            run_key = (key, backend.engine or get_default_engine())
            # non-BSP execution models tag their run entries; the classic
            # (untagged) key stays byte-identical for sim backends
            tag = backend.run_cache_tag
            if tag is not None:
                run_key = run_key + (tag,)
            result = disk.get("run", run_key)
        return _PreparedRun(
            template=self,
            workload=workload,
            config=config,
            params=params,
            graph=graph,
            schedule=schedule,
            run_key=run_key,
            result=result,
        )

    # convenience used by all subclasses
    @staticmethod
    def _grid_for(n_threads: int, block_size: int, max_blocks: int) -> int:
        if n_threads <= 0:
            raise PlanError("grid needs at least one thread")
        blocks = -(-n_threads // block_size)
        if blocks > max_blocks:
            raise PlanError(
                f"grid of {blocks} blocks exceeds the configured clamp "
                f"({max_blocks}); enlarge TemplateParams.max_grid_blocks"
            )
        return blocks


def run_many(
    items,
    config: DeviceConfig,
    *,
    backend=None,
    executor=None,
) -> list[TemplateRun]:
    """Execute several template runs, fusing executor passes where legal.

    ``items`` is a sequence of ``(template, workload)`` or ``(template,
    workload, params)`` tuples sharing one device config.  Every item goes
    through the same caching ladder as :meth:`NestedLoopTemplate.run`;
    the run-tier *misses* that land on the same single-device backend are
    then executed as **one** fused event-loop pass via
    :meth:`~repro.backends.Backend.submit_many` instead of N sequential
    passes.  Results are bit-identical to calling ``run`` per item (fused
    lanes share only the event heap, never state) and come back in input
    order.

    Items whose effective backend cannot fuse — multi-device groups (they
    shard whole workloads) or per-item fallback backends — drop back to
    the plain per-item ``run`` path.
    """
    base = coerce_backend(backend, executor, config)
    runs: list[TemplateRun | None] = [None] * len(items)
    pending: list[tuple[int, object, _PreparedRun]] = []
    for idx, item in enumerate(items):
        template, workload = item[0], item[1]
        params = (item[2] if len(item) > 2 else None) or TemplateParams()
        eff = effective_backend(base, template)
        if eff.n_devices > 1:
            runs[idx] = template.run(workload, config, params, backend=eff)
            continue
        prep = template._prepare(workload, config, params, eff)
        if prep.result is not None:
            runs[idx] = prep.finish()
        else:
            pending.append((idx, eff, prep))
    # one fused pass per distinct backend object (queue->sim fallbacks may
    # materialize per item; identity grouping keeps each pass coherent)
    groups: dict[int, tuple[object, list[tuple[int, _PreparedRun]]]] = {}
    for idx, eff, prep in pending:
        groups.setdefault(id(eff), (eff, []))[1].append((idx, prep))
    for eff, members in groups.values():
        results = eff.submit_many([prep.graph for _, prep in members])
        for (idx, prep), result in zip(members, results):
            prep.record(result)
            runs[idx] = prep.finish()
    return runs
