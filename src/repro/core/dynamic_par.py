"""Dynamic-parallelism templates (Fig. 1(d)-(e)): dpar-naive and dpar-opt.

dpar-naive launches one nested (single-block) grid per large iteration,
straight from the owning *thread*; the flood of small grids pays grid-
management service + launch latency per child, children of one block
serialize in the block's NULL stream, and tiny grids cannot hide memory
latency — the three mechanisms behind its consistent losses in the paper.

dpar-opt delays large iterations into a per-block buffer and launches a
*single*, larger child grid per block (one block per buffered iteration):
far fewer, far bigger children, matching dbuf-shared's performance while
still using nested parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import NestedLoopTemplate
from repro.core.mapping import (
    _sequence_within,
    add_block_mapped_inner,
    add_outer_setup,
    add_thread_mapped_inner,
)
from repro.core.params import TemplateParams
from repro.core.workload import NestedLoopWorkload
from repro.gpusim.atomics import AtomicStats, flat_atomic_cycles
from repro.gpusim.coalesce import MemoryTraffic, transaction_counts
from repro.gpusim.config import DeviceConfig
from repro.gpusim.costmodel import (
    KernelCostBuilder,
    effective_segment_cycles,
    resident_warps_estimate,
)
from repro.gpusim.dynpar import require_device_support
from repro.gpusim.kernels import KernelCosts, Launch, LaunchGraph
from repro.gpusim.warps import WarpExecStats

__all__ = ["DparNaiveTemplate", "DparOptTemplate"]


def _parent_phase(
    workload: NestedLoopWorkload,
    config: DeviceConfig,
    params: TemplateParams,
    small: np.ndarray,
    large: np.ndarray,
    launches_per_large: bool,
    analysis=None,
) -> KernelCostBuilder:
    """Thread-mapped parent kernel: small inline, large spawn/buffer."""
    n = workload.outer_size
    blocks = NestedLoopTemplate._grid_for(n, params.thread_block,
                                          params.max_grid_blocks)
    builder = KernelCostBuilder(
        config, f"{workload.name}/dpar-parent",
        block_size=params.thread_block, n_blocks=blocks,
        registers_per_thread=params.registers_per_thread,
        shared_mem_per_block=0 if launches_per_large else params.thread_block * 4,
    )
    add_outer_setup(builder, workload, n)
    if small.size:
        add_thread_mapped_inner(builder, workload, small, small,
                                analysis=analysis)
    if large.size:
        if launches_per_large:
            # each large lane marshals and enqueues one child grid
            spawn = np.zeros(n, dtype=np.int64)
            spawn[large] = 1
            builder.add_loop(
                spawn, insts_per_iter=config.device_launch_issue_cycles
            )
        else:
            flags = np.zeros(n, dtype=np.int64)
            flags[large] = 1
            builder.add_loop(flags, insts_per_iter=4.0)
            builder.add_shared_accesses(int(large.size))
    return builder


def _bulk_single_block_children(
    workload: NestedLoopWorkload,
    large: np.ndarray,
    config: DeviceConfig,
    params: TemplateParams,
    analysis=None,
) -> tuple[np.ndarray, WarpExecStats, list[MemoryTraffic], "object"]:
    """Vectorized per-child costs for one-iteration single-block grids.

    Computes, for every large iteration, the SM-cycles of the child grid
    that block-maps it (64-thread block striding over its inner loop) —
    all children at once, without instantiating per-child builders.
    Returns (block_cycles, warp stats, [load traffic, store traffic],
    atomic stats).
    """
    B = params.lb_block
    wpb = -(-B // config.warp_size)
    n_children = large.size
    trips = workload.subset_trips(large)

    # divergence: lane L runs ceil(max(f - L, 0) / B) strided iterations
    lanes = np.arange(B, dtype=np.int64)[None, :]
    per_lane = -(-(trips[:, None] - lanes).clip(min=0) // B)
    active = per_lane.sum(axis=1)
    issued = per_lane.reshape(n_children, wpb, config.warp_size).max(axis=2)
    stats = WarpExecStats(warp_size=config.warp_size)
    stats.add_counts(
        int(round(issued.sum() * workload.inner_insts)),
        int(round(active.sum() * workload.inner_insts)),
    )
    compute_slots = issued.sum(axis=1) * workload.inner_insts + workload.outer_insts

    # memory: exact coalescing per (child, chunk, warp) issue slot
    pair_idx, steps = workload.pairs_of(large)
    child = np.repeat(np.arange(n_children, dtype=np.int64), trips)
    chunk = steps // B
    warp_in_child = (steps % B) // config.warp_size
    max_chunk = int(chunk.max()) + 1 if chunk.size else 1
    group = (child * max_chunk + chunk) * wpb + warp_in_child
    tx_per_child = np.zeros(n_children, dtype=np.float64)
    load_traffic = MemoryTraffic(segment_bytes=config.mem_segment_bytes)
    store_traffic = MemoryTraffic(segment_bytes=config.mem_segment_bytes)
    for si, stream in enumerate(workload.streams):
        if analysis is not None:
            addr, segments = None, analysis.stream_segments(si)[pair_idx]
        else:
            addr, segments = stream.addresses[pair_idx], None
        tx = transaction_counts(child, group, addr, n_children,
                                agg_divisor=max_chunk * wpb,
                                segments=segments)
        tx_per_child += tx
        record = MemoryTraffic(
            requested_bytes=int(pair_idx.size) * stream.element_bytes,
            transactions=int(tx.sum()),
            segment_bytes=config.mem_segment_bytes,
        )
        if stream.kind == "load":
            load_traffic = load_traffic.merge(record)
        else:
            store_traffic = store_traffic.merge(record)

    atomic_cycles = np.zeros(n_children)
    atomic_stats = AtomicStats()
    if workload.atomic_targets is not None:
        targets = workload.atomic_targets[pair_idx]
        live = targets >= 0
        if np.any(live):
            atomic_cycles, atomic_stats = flat_atomic_cycles(
                child[live], group[live], targets[live], n_children, config,
            )

    # tiny grids: latency hiding only from concurrently resident siblings
    resident = resident_warps_estimate(
        config, B, 1,
        registers_per_thread=params.registers_per_thread,
        concurrent_grids=min(n_children, config.max_concurrent_kernels),
    )
    seg_cycles = effective_segment_cycles(config, resident)
    block_cycles = (
        compute_slots / config.warp_throughput_per_cycle
        + tx_per_child * seg_cycles
        + atomic_cycles
    )
    return block_cycles, stats, [load_traffic, store_traffic], atomic_stats


class DparNaiveTemplate(NestedLoopTemplate):
    """One single-block child grid per large iteration, per thread."""

    name = "dpar-naive"
    uses_dynamic_parallelism = True

    def specialize(self, workload: NestedLoopWorkload, analysis,
                   config: DeviceConfig, params: TemplateParams):
        require_device_support(config, self.name)
        small, large = analysis.partition(params.lb_threshold)
        graph = LaunchGraph()
        parent_builder = _parent_phase(
            workload, config, params, small, large, launches_per_large=True,
            analysis=analysis,
        )
        if large.size:
            block_cycles, child_stats, traffic, atomic_stats = (
                _bulk_single_block_children(workload, large, config, params,
                                            analysis=analysis)
            )
            # children's counters are absorbed into the parent record so
            # the per-child Launch objects stay lightweight
            parent_builder.counters.warp.merge(child_stats)
            parent_builder.counters.load_traffic = (
                parent_builder.counters.load_traffic.merge(traffic[0])
            )
            parent_builder.counters.store_traffic = (
                parent_builder.counters.store_traffic.merge(traffic[1])
            )
            parent_builder.counters.atomic.merge(atomic_stats)
            parent_builder.counters.device_launches += int(large.size)
        parent = graph.add(parent_builder.build())
        if large.size:
            owner_block = (large // params.thread_block).astype(np.int64)
            rank_in_block = _sequence_within(owner_block)
            wpb = -(-params.lb_block // config.warp_size)
            resident_hint = resident_warps_estimate(
                config, params.lb_block, 1,
                registers_per_thread=params.registers_per_thread,
                concurrent_grids=min(int(large.size),
                                     config.max_concurrent_kernels),
            )
            # A lone 2-warp block issues at wpb warps/cycle, not the SM's
            # full width: its standalone duration exceeds its SM-cycle work.
            floor_scale = config.warp_throughput_per_cycle / wpb
            for k in range(large.size):
                costs = KernelCosts(
                    block_cycles=np.array([block_cycles[k]]),
                    block_floor=np.array([block_cycles[k] * floor_scale]),
                )
                graph.add(Launch(
                    name=f"{workload.name}/dpar-child",
                    block_size=params.lb_block,
                    costs=costs,
                    registers_per_thread=params.registers_per_thread,
                    parent=parent,
                    parent_block=int(owner_block[k]),
                    device_stream=int(rank_in_block[k]) % params.streams_per_block,
                    resident_warps_hint=resident_hint,
                ))
        return graph, {"inline": small, "nested": large}


class DparOptTemplate(NestedLoopTemplate):
    """One aggregated child grid per parent block (Fig. 1(e))."""

    name = "dpar-opt"
    uses_dynamic_parallelism = True

    def specialize(self, workload: NestedLoopWorkload, analysis,
                   config: DeviceConfig, params: TemplateParams):
        require_device_support(config, self.name)
        small, large = analysis.partition(params.lb_threshold)
        graph = LaunchGraph()
        parent_builder = _parent_phase(
            workload, config, params, small, large, launches_per_large=False,
            analysis=analysis,
        )
        spawning_blocks = np.zeros(0, dtype=np.int64)
        buffered_counts = np.zeros(0, dtype=np.int64)
        owner_block = np.zeros(0, dtype=np.int64)
        if large.size:
            owner_block = (large // params.thread_block).astype(np.int64)
            spawning_blocks, buffered_counts = np.unique(
                owner_block, return_counts=True
            )
            # one launch per spawning block, charged to its lead thread
            spawn = np.zeros(workload.outer_size, dtype=np.int64)
            lead_threads = spawning_blocks * params.thread_block
            lead_threads = lead_threads[lead_threads < workload.outer_size]
            spawn[lead_threads] = 1
            parent_builder.add_loop(
                spawn, insts_per_iter=config.device_launch_issue_cycles
            )
        parent = graph.add(parent_builder.build())
        for b, count in zip(spawning_blocks.tolist(), buffered_counts.tolist()):
            members = large[owner_block == b]
            child = KernelCostBuilder(
                config,
                f"{workload.name}/dpar-opt-child",
                block_size=params.lb_block,
                n_blocks=int(count),
                registers_per_thread=params.registers_per_thread,
                concurrent_grids=min(int(spawning_blocks.size),
                                     config.max_concurrent_kernels),
            )
            add_outer_setup(child, workload, int(count), indirect=True)
            add_block_mapped_inner(
                child, workload, members,
                np.arange(members.size, dtype=np.int64),
                analysis=analysis,
            )
            graph.add(child.build(parent=parent, parent_block=int(b)))
        return graph, {"inline": small, "nested": large}
