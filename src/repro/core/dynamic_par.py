"""Dynamic-parallelism templates (Fig. 1(d)-(e)): dpar-naive and dpar-opt.

dpar-naive launches one nested (single-block) grid per large iteration,
straight from the owning *thread*; the flood of small grids pays grid-
management service + launch latency per child, children of one block
serialize in the block's NULL stream, and tiny grids cannot hide memory
latency — the three mechanisms behind its consistent losses in the paper.

dpar-opt delays large iterations into a per-block buffer and launches a
*single*, larger child grid per block (one block per buffered iteration):
far fewer, far bigger children, matching dbuf-shared's performance while
still using nested parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import NestedLoopTemplate
from repro.core.mapping import (
    _sequence_within,
    add_block_mapped_inner,
    add_outer_setup,
    add_thread_mapped_inner,
)
from repro.core.params import TemplateParams
from repro.core.workload import NestedLoopWorkload
from repro.gpusim.atomics import AtomicStats, flat_atomic_cycles
from repro.gpusim.coalesce import MemoryTraffic, transaction_counts
from repro.gpusim.config import DeviceConfig
from repro.gpusim.costmodel import (
    KernelCostBuilder,
    effective_segment_cycles,
    resident_warps_estimate,
)
from repro.gpusim.dynpar import require_device_support
from repro.gpusim.kernels import KernelCosts, Launch, LaunchGraph
from repro.gpusim.warps import WarpExecStats

__all__ = ["DparNaiveTemplate", "DparOptTemplate"]


def _parent_phase(
    workload: NestedLoopWorkload,
    config: DeviceConfig,
    params: TemplateParams,
    small: np.ndarray,
    large: np.ndarray,
    launches_per_large: bool,
    analysis=None,
) -> KernelCostBuilder:
    """Thread-mapped parent kernel: small inline, large spawn/buffer."""
    n = workload.outer_size
    blocks = NestedLoopTemplate._grid_for(n, params.thread_block,
                                          params.max_grid_blocks)
    builder = KernelCostBuilder(
        config, f"{workload.name}/dpar-parent",
        block_size=params.thread_block, n_blocks=blocks,
        registers_per_thread=params.registers_per_thread,
        shared_mem_per_block=0 if launches_per_large else params.thread_block * 4,
    )
    add_outer_setup(builder, workload, n)
    if small.size:
        add_thread_mapped_inner(builder, workload, small, small,
                                analysis=analysis)
    if large.size:
        if launches_per_large:
            # each large lane marshals and enqueues one child grid
            spawn = np.zeros(n, dtype=np.int64)
            spawn[large] = 1
            builder.add_loop(
                spawn, insts_per_iter=config.device_launch_issue_cycles
            )
        else:
            flags = np.zeros(n, dtype=np.int64)
            flags[large] = 1
            builder.add_loop(flags, insts_per_iter=4.0)
            builder.add_shared_accesses(int(large.size))
    return builder


def _bulk_single_block_children(
    workload: NestedLoopWorkload,
    large: np.ndarray,
    config: DeviceConfig,
    params: TemplateParams,
    analysis=None,
) -> tuple[np.ndarray, WarpExecStats, list[MemoryTraffic], "object"]:
    """Vectorized per-child costs for one-iteration single-block grids.

    Computes, for every large iteration, the SM-cycles of the child grid
    that block-maps it (64-thread block striding over its inner loop) —
    all children at once, without instantiating per-child builders.
    Returns (block_cycles, warp stats, [load traffic, store traffic],
    atomic stats).
    """
    B = params.lb_block
    wpb = -(-B // config.warp_size)
    n_children = large.size
    trips = workload.subset_trips(large)

    # divergence: lane L runs ceil(max(f - L, 0) / B) strided iterations
    lanes = np.arange(B, dtype=np.int64)[None, :]
    per_lane = -(-(trips[:, None] - lanes).clip(min=0) // B)
    active = per_lane.sum(axis=1)
    issued = per_lane.reshape(n_children, wpb, config.warp_size).max(axis=2)
    stats = WarpExecStats(warp_size=config.warp_size)
    stats.add_counts(
        int(round(issued.sum() * workload.inner_insts)),
        int(round(active.sum() * workload.inner_insts)),
    )
    compute_slots = issued.sum(axis=1) * workload.inner_insts + workload.outer_insts

    # memory: exact coalescing per (child, chunk, warp) issue slot
    pair_idx, steps = workload.pairs_of(large)
    child = np.repeat(np.arange(n_children, dtype=np.int64), trips)
    chunk = steps // B
    warp_in_child = (steps % B) // config.warp_size
    max_chunk = int(chunk.max()) + 1 if chunk.size else 1
    group = (child * max_chunk + chunk) * wpb + warp_in_child
    tx_per_child = np.zeros(n_children, dtype=np.float64)
    load_traffic = MemoryTraffic(segment_bytes=config.mem_segment_bytes)
    store_traffic = MemoryTraffic(segment_bytes=config.mem_segment_bytes)
    group_span = n_children * max_chunk * wpb
    for si, stream in enumerate(workload.streams):
        if analysis is not None:
            addr, segments = None, analysis.stream_segments(si)[pair_idx]
            spans = (group_span, analysis.stream_seg_span(si))
        else:
            addr, segments, spans = stream.addresses[pair_idx], None, None
        tx = transaction_counts(child, group, addr, n_children,
                                agg_divisor=max_chunk * wpb,
                                segments=segments, spans=spans)
        tx_per_child += tx
        record = MemoryTraffic(
            requested_bytes=int(pair_idx.size) * stream.element_bytes,
            transactions=int(tx.sum()),
            segment_bytes=config.mem_segment_bytes,
        )
        if stream.kind == "load":
            load_traffic = load_traffic.merge(record)
        else:
            store_traffic = store_traffic.merge(record)

    atomic_cycles = np.zeros(n_children)
    atomic_stats = AtomicStats()
    if workload.atomic_targets is not None:
        targets = workload.atomic_targets[pair_idx]
        live = targets >= 0
        if np.any(live):
            atomic_cycles, atomic_stats = flat_atomic_cycles(
                child[live], group[live], targets[live], n_children, config,
            )

    # tiny grids: latency hiding only from concurrently resident siblings
    resident = resident_warps_estimate(
        config, B, 1,
        registers_per_thread=params.registers_per_thread,
        concurrent_grids=min(n_children, config.max_concurrent_kernels),
    )
    seg_cycles = effective_segment_cycles(config, resident)
    block_cycles = (
        compute_slots / config.warp_throughput_per_cycle
        + tx_per_child * seg_cycles
        + atomic_cycles
    )
    return block_cycles, stats, [load_traffic, store_traffic], atomic_stats


def _bulk_opt_children(
    workload: NestedLoopWorkload,
    large: np.ndarray,
    spawning_blocks: np.ndarray,
    buffered_counts: np.ndarray,
    config: DeviceConfig,
    params: TemplateParams,
    parent: int,
    graph: LaunchGraph,
    analysis=None,
) -> None:
    """Build every dpar-opt child launch from one vectorized pass.

    Each child grid block-maps exactly one buffered large iteration (block
    ids are ``arange`` within the child), so the per-block divergence and
    coalescing math is identical for every row regardless of which child
    owns it.  This costs all rows at once — one ``pairs_of`` walk, one
    ``transaction_counts`` call per stream — and assembles each child's
    builder from slices, bit-identical to per-child
    :func:`~repro.core.mapping.add_block_mapped_inner` builds: transaction
    counts are integers, each per-warp array receives the same
    single-expression adds, and every counter reproduces the per-call
    int/round semantics of the serial path.

    ``large`` must be ascending (it is: partitions sort their ids), which
    makes the concatenation of the children's member lists equal ``large``
    itself — owner blocks ``large // thread_block`` are monotone.
    """
    B = params.lb_block
    ws = config.warp_size
    wpb = -(-B // ws)
    n_rows = large.size
    n_children = int(spawning_blocks.size)
    cg = min(n_children, config.max_concurrent_kernels)
    trips = workload.subset_trips(large)

    # per-(row, warp) divergence in closed form: lane L strides
    # ceil(max(f - L, 0) / B) iterations, non-increasing in L, so the warp
    # max is the first lane's value (lane w*ws, always < B for w < wpb);
    # and summed over all lanes each inner iteration lands on exactly one
    # lane, so the active-slot total per row is just its trip count
    first_lane = (np.arange(wpb, dtype=np.int64) * ws)[None, :]
    issued = np.clip((trips[:, None] - first_lane + B - 1) // B, 0, None)
    issued_flat = issued.reshape(n_rows * wpb)
    row_active = trips
    compute_flat = issued_flat * workload.inner_insts

    # exact coalescing for all rows at once; groups are the serial path's
    # (block, chunk, warp) issue slots under a globally injective packing
    pair_idx, steps = workload.pairs_of(large)
    mem_flat = np.zeros(n_rows * wpb, dtype=np.float64)
    stream_tx: list[np.ndarray] = []
    if pair_idx.size:
        row = np.repeat(np.arange(n_rows, dtype=np.int64), trips)
        chunk = steps // B
        warp_in_row = (steps % B) // ws
        max_chunk = int(chunk.max()) + 1
        agg = row * wpb + warp_in_row
        group = agg * max_chunk + chunk
        group_span = n_rows * wpb * max_chunk
        for si, stream in enumerate(workload.streams):
            if analysis is not None:
                addr, segments = None, analysis.stream_segments(si)[pair_idx]
                spans = (group_span, analysis.stream_seg_span(si))
            else:
                addr, segments, spans = stream.addresses[pair_idx], None, None
            tx = transaction_counts(agg, group, addr, n_rows * wpb,
                                    agg_divisor=max_chunk,
                                    segments=segments, spans=spans)
            stream_tx.append(tx)
            mem_flat += tx

    # per-child boundaries (rows, warps, pairs) and exact integer sums
    starts = np.zeros(n_children + 1, dtype=np.int64)
    np.cumsum(buffered_counts, out=starts[1:])
    warp_starts = starts * wpb
    trips_cum = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(trips, out=trips_cum[1:])
    issued_cum = np.zeros(n_rows * wpb + 1, dtype=np.int64)
    np.cumsum(issued_flat, out=issued_cum[1:])
    active_cum = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(row_active, out=active_cum[1:])
    tx_cums = []
    for tx in stream_tx:
        c = np.zeros(n_rows * wpb + 1, dtype=np.int64)
        np.cumsum(tx, out=c[1:])
        tx_cums.append(c)

    # the outer-setup effect depends only on the child's block count; the
    # few distinct counts are costed once through the real code path
    setup_cache: dict[int, tuple] = {}

    def setup_for(count: int):
        eff = setup_cache.get(count)
        if eff is None:
            probe = KernelCostBuilder(
                config, "setup", block_size=B, n_blocks=count,
                registers_per_thread=params.registers_per_thread,
                concurrent_grids=cg,
            )
            add_outer_setup(probe, workload, count, indirect=True)
            eff = (
                probe._arrays.compute_slots,
                probe._arrays.mem_transactions,
                probe.counters.warp.issued_steps,
                probe.counters.warp.active_slots,
                probe.counters.load_traffic,
                probe.counters.store_traffic,
            )
            setup_cache[count] = eff
        return eff

    insts = workload.inner_insts
    seg_bytes = config.mem_segment_bytes
    for ci, (b, count) in enumerate(
        zip(spawning_blocks.tolist(), buffered_counts.tolist())
    ):
        child = KernelCostBuilder(
            config,
            f"{workload.name}/dpar-opt-child",
            block_size=B,
            n_blocks=int(count),
            registers_per_thread=params.registers_per_thread,
            concurrent_grids=cg,
        )
        s_comp, s_mem, s_iss, s_act, s_load, s_store = setup_for(count)
        w0, w1 = int(warp_starts[ci]), int(warp_starts[ci + 1])
        r0, r1 = int(starts[ci]), int(starts[ci + 1])
        arrays = child._arrays
        arrays.compute_slots += s_comp
        arrays.mem_transactions += s_mem
        arrays.compute_slots += compute_flat[w0:w1]
        arrays.mem_transactions += mem_flat[w0:w1]
        counters = child.counters
        counters.warp.add_counts(s_iss, s_act)
        iss_c = int(issued_cum[w1] - issued_cum[w0])
        act_c = int(active_cum[r1] - active_cum[r0])
        counters.warp.add_counts(
            int(round(iss_c * insts)), int(round(act_c * insts))
        )
        load_req, load_tx = s_load.requested_bytes, s_load.transactions
        store_req, store_tx = s_store.requested_bytes, s_store.transactions
        pairs_c = int(trips_cum[r1] - trips_cum[r0])
        for si, stream in enumerate(workload.streams):
            tx_c = int(tx_cums[si][w1] - tx_cums[si][w0]) if stream_tx else 0
            req_c = pairs_c * stream.element_bytes
            if stream.kind == "load":
                load_req += req_c
                load_tx += tx_c
            else:
                store_req += req_c
                store_tx += tx_c
        if load_req or load_tx:
            counters.load_traffic = MemoryTraffic(load_req, load_tx, seg_bytes)
        if store_req or store_tx:
            counters.store_traffic = MemoryTraffic(store_req, store_tx,
                                                   seg_bytes)
        graph.add(child.build(parent=parent, parent_block=int(b)))


class DparNaiveTemplate(NestedLoopTemplate):
    """One single-block child grid per large iteration, per thread."""

    name = "dpar-naive"
    uses_dynamic_parallelism = True

    def specialize(self, workload: NestedLoopWorkload, analysis,
                   config: DeviceConfig, params: TemplateParams):
        require_device_support(config, self.name)
        small, large = analysis.partition(params.lb_threshold)
        graph = LaunchGraph()
        parent_builder = _parent_phase(
            workload, config, params, small, large, launches_per_large=True,
            analysis=analysis,
        )
        if large.size:
            block_cycles, child_stats, traffic, atomic_stats = (
                _bulk_single_block_children(workload, large, config, params,
                                            analysis=analysis)
            )
            # children's counters are absorbed into the parent record so
            # the per-child Launch objects stay lightweight
            parent_builder.counters.warp.merge(child_stats)
            parent_builder.counters.load_traffic = (
                parent_builder.counters.load_traffic.merge(traffic[0])
            )
            parent_builder.counters.store_traffic = (
                parent_builder.counters.store_traffic.merge(traffic[1])
            )
            parent_builder.counters.atomic.merge(atomic_stats)
            parent_builder.counters.device_launches += int(large.size)
        parent = graph.add(parent_builder.build())
        if large.size:
            owner_block = (large // params.thread_block).astype(np.int64)
            rank_in_block = _sequence_within(owner_block)
            wpb = -(-params.lb_block // config.warp_size)
            resident_hint = resident_warps_estimate(
                config, params.lb_block, 1,
                registers_per_thread=params.registers_per_thread,
                concurrent_grids=min(int(large.size),
                                     config.max_concurrent_kernels),
            )
            # A lone 2-warp block issues at wpb warps/cycle, not the SM's
            # full width: its standalone duration exceeds its SM-cycle work.
            floor_scale = config.warp_throughput_per_cycle / wpb
            for k in range(large.size):
                costs = KernelCosts(
                    block_cycles=np.array([block_cycles[k]]),
                    block_floor=np.array([block_cycles[k] * floor_scale]),
                )
                graph.add(Launch(
                    name=f"{workload.name}/dpar-child",
                    block_size=params.lb_block,
                    costs=costs,
                    registers_per_thread=params.registers_per_thread,
                    parent=parent,
                    parent_block=int(owner_block[k]),
                    device_stream=int(rank_in_block[k]) % params.streams_per_block,
                    resident_warps_hint=resident_hint,
                ))
        return graph, {"inline": small, "nested": large}


class DparOptTemplate(NestedLoopTemplate):
    """One aggregated child grid per parent block (Fig. 1(e))."""

    name = "dpar-opt"
    uses_dynamic_parallelism = True

    def specialize(self, workload: NestedLoopWorkload, analysis,
                   config: DeviceConfig, params: TemplateParams):
        require_device_support(config, self.name)
        small, large = analysis.partition(params.lb_threshold)
        graph = LaunchGraph()
        parent_builder = _parent_phase(
            workload, config, params, small, large, launches_per_large=False,
            analysis=analysis,
        )
        spawning_blocks = np.zeros(0, dtype=np.int64)
        buffered_counts = np.zeros(0, dtype=np.int64)
        owner_block = np.zeros(0, dtype=np.int64)
        if large.size:
            owner_block = (large // params.thread_block).astype(np.int64)
            spawning_blocks, buffered_counts = np.unique(
                owner_block, return_counts=True
            )
            # one launch per spawning block, charged to its lead thread
            spawn = np.zeros(workload.outer_size, dtype=np.int64)
            lead_threads = spawning_blocks * params.thread_block
            lead_threads = lead_threads[lead_threads < workload.outer_size]
            spawn[lead_threads] = 1
            parent_builder.add_loop(
                spawn, insts_per_iter=config.device_launch_issue_cycles
            )
        parent = graph.add(parent_builder.build())
        if spawning_blocks.size and workload.atomic_targets is None:
            # fast path: every child's rows costed in one vectorized pass
            _bulk_opt_children(
                workload, large, spawning_blocks, buffered_counts,
                config, params, parent, graph, analysis=analysis,
            )
        else:
            for b, count in zip(spawning_blocks.tolist(),
                                buffered_counts.tolist()):
                members = large[owner_block == b]
                child = KernelCostBuilder(
                    config,
                    f"{workload.name}/dpar-opt-child",
                    block_size=params.lb_block,
                    n_blocks=int(count),
                    registers_per_thread=params.registers_per_thread,
                    concurrent_grids=min(int(spawning_blocks.size),
                                         config.max_concurrent_kernels),
                )
                add_outer_setup(child, workload, int(count), indirect=True)
                add_block_mapped_inner(
                    child, workload, members,
                    np.arange(members.size, dtype=np.int64),
                    analysis=analysis,
                )
                graph.add(child.build(parent=parent, parent_block=int(b)))
        return graph, {"inline": small, "nested": large}
