"""Shared mapping machinery: from (outer -> hardware) assignments to costs.

Every nested-loop template is a composition of three mapping moves:

* **thread-mapped inner loops** — outer iteration ``i`` runs entirely on
  one thread; the thread loops ``f(i)`` times (warp divergence!);
* **block-mapped inner loops** — outer iteration ``i`` owns a block whose
  threads stride over the inner iterations (``lane, lane+B, ...``);
* **evenly-partitioned pair streams** — a concatenated stream of inner
  iterations split fairly across blocks (dbuf-global's second phase).

The functions here translate each move into the cost builder's language:
per-thread trip counts (divergence), exact (warp, step)-grouped
transactions (coalescing) and grouped atomic conflicts.  They are the only
place where the pair-trace encoding is interpreted, so every template
shares one implementation of the memory model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import PlanError
from repro.core.workload import NestedLoopWorkload
from repro.gpusim.atomics import AtomicStats, flat_atomic_cycles
from repro.gpusim.coalesce import (
    MemoryTraffic,
    contiguous_transactions,
    transaction_counts,
)
from repro.gpusim.costmodel import KernelCostBuilder

__all__ = [
    "add_outer_setup",
    "add_thread_mapped_inner",
    "add_block_mapped_inner",
    "add_partitioned_pairs",
    "phase_memo_stats",
    "clear_phase_memo",
]


# --------------------------------------------------------------- phase memo
#
# A parameter sweep re-costs the *same* (phase subset, grid) pair over and
# over: every template's small-row phase at lbTHRES=t with block size B
# issues exactly the same trace regardless of which template owns the large
# rows.  At bench scale half the mapping wall time is such exact repeats,
# so the three mapping moves below run through a content-keyed memo: the
# phase is costed once into a private builder and its accumulated effect —
# per-warp cost arrays plus the profiler-counter deltas — is replayed onto
# every later builder that asks for the same phase.
#
# Replay must be bit-identical across processes (a phase can be a memo hit
# in one worker and a miss in another), so the private-builder pass is the
# canonical path for hits *and* misses: each target array receives exactly
# one aggregated add either way, and every counter delta is an integer or
# a max, which merge associatively.

_PHASE_MEMO: dict = {}
_PHASE_MEMO_MAX = 256
_phase_memo_stats = {"hits": 0, "misses": 0}


@dataclass
class _PhaseEffect:
    """One mapping move's accumulated builder mutations, replayable."""

    compute: np.ndarray  # per-warp compute slots
    mem: np.ndarray  # per-warp transactions
    atomic: np.ndarray  # per-warp atomic cycles
    issued: int
    active: int
    load_bytes: int
    load_tx: int
    store_bytes: int
    store_tx: int
    shared: int
    atomic_stats: AtomicStats | None


def _phase_key(tag, builder, workload, analysis, arrays, flags) -> tuple | None:
    """Content key of one mapping move; None when the workload has no
    memoized fingerprint path (never the case for repo workloads)."""
    fingerprint = getattr(workload, "fingerprint", None)
    if fingerprint is None:
        return None
    h = hashlib.blake2b(digest_size=16)
    for arr in arrays:
        if arr is None:
            h.update(b"|None")
        else:
            h.update(np.ascontiguousarray(np.asarray(arr, dtype=np.int64)).tobytes())
        h.update(b"|")
    return (
        tag,
        fingerprint(),
        builder.config.fingerprint(),
        builder.block_size,
        builder.n_blocks,
        flags,
        h.hexdigest(),
    )


def _run_phase(builder: KernelCostBuilder, key, body) -> None:
    """Cost one phase through the memo: ``body(b)`` runs the mapping move
    against a builder ``b``; its effect lands on ``builder``."""
    effect = _PHASE_MEMO.get(key) if key is not None else None
    if effect is None:
        _phase_memo_stats["misses"] += 1
        private = KernelCostBuilder(
            builder.config, "phase", builder.block_size, builder.n_blocks
        )
        body(private)
        counters = private.counters
        stats = counters.atomic
        effect = _PhaseEffect(
            compute=private._arrays.compute_slots,
            mem=private._arrays.mem_transactions,
            atomic=private._arrays.atomic_cycles,
            issued=counters.warp.issued_steps,
            active=counters.warp.active_slots,
            load_bytes=counters.load_traffic.requested_bytes,
            load_tx=counters.load_traffic.transactions,
            store_bytes=counters.store_traffic.requested_bytes,
            store_tx=counters.store_traffic.transactions,
            shared=counters.shared_accesses,
            atomic_stats=(
                AtomicStats(
                    stats.n_atomics,
                    stats.max_address_multiplicity,
                    stats.hot_serialization_cycles,
                )
                if stats.n_atomics
                or stats.max_address_multiplicity
                or stats.hot_serialization_cycles
                else None
            ),
        )
        for arr in (effect.compute, effect.mem, effect.atomic):
            arr.setflags(write=False)
        if key is not None:
            if len(_PHASE_MEMO) >= _PHASE_MEMO_MAX:
                _PHASE_MEMO.pop(next(iter(_PHASE_MEMO)))
            _PHASE_MEMO[key] = effect
    else:
        _phase_memo_stats["hits"] += 1
        if obs.enabled():
            obs.add_counter("plan.phase_memo_hits")
    arrays = builder._arrays
    arrays.compute_slots += effect.compute
    arrays.mem_transactions += effect.mem
    arrays.atomic_cycles += effect.atomic
    counters = builder.counters
    if effect.issued:
        counters.warp.add_counts(effect.issued, effect.active)
    segment_bytes = builder.config.mem_segment_bytes
    if effect.load_bytes or effect.load_tx:
        counters.load_traffic = counters.load_traffic.merge(
            MemoryTraffic(effect.load_bytes, effect.load_tx, segment_bytes)
        )
    if effect.store_bytes or effect.store_tx:
        counters.store_traffic = counters.store_traffic.merge(
            MemoryTraffic(effect.store_bytes, effect.store_tx, segment_bytes)
        )
    if effect.shared:
        counters.shared_accesses += effect.shared
    if effect.atomic_stats is not None:
        counters.atomic.merge(effect.atomic_stats)


def phase_memo_stats() -> dict[str, int]:
    """Copy of the phase-memo hit/miss counters."""
    return dict(_phase_memo_stats)


def clear_phase_memo(reset_stats: bool = False) -> None:
    """Drop memoized phase effects (optionally also the counters)."""
    _PHASE_MEMO.clear()
    if reset_stats:
        for k in _phase_memo_stats:
            _phase_memo_stats[k] = 0


def _apply_streams(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    pair_idx: np.ndarray,
    warp_ids: np.ndarray,
    group_ids: np.ndarray,
    coalesce_stores: bool = False,
    group_divisor: int | None = None,
    analysis=None,
) -> None:
    """Cost every access stream + atomics of the selected pairs.

    ``group_divisor`` is the per-warp slot count when groups are encoded as
    ``warp * n_slots + slot``; it unlocks the value-sort fast path of
    :func:`transaction_counts`.  When a
    :class:`~repro.core.analysis.WorkloadAnalysis` is supplied, the
    per-stream memory-segment ids come precomputed from it instead of
    being re-derived from raw addresses on every parameter point.
    """
    n = pair_idx.size
    if n == 0:
        return
    #: trusted group-id bound: groups are ``warp * n_slots + slot``
    group_span = (
        builder.n_warps * group_divisor if group_divisor is not None else None
    )
    for si, stream in enumerate(workload.streams):
        segments = None
        spans = None
        if coalesce_stores and stream.kind == "store" and stream.staged_in_shared:
            # Staged through shared memory and written back coalesced: the
            # global traffic becomes contiguous in pair order.
            addr = pair_idx * stream.element_bytes
            builder.add_shared_accesses(2 * n)  # stage in + flush out
        elif analysis is not None:
            addr = None
            segments = analysis.stream_segments(si)[pair_idx]
            if group_span is not None:
                spans = (group_span, analysis.stream_seg_span(si))
        else:
            addr = stream.addresses[pair_idx]
        tx = transaction_counts(warp_ids, group_ids, addr, builder.n_warps,
                                agg_divisor=group_divisor, segments=segments,
                                spans=spans)
        builder.add_traffic(tx, n * stream.element_bytes, stream.kind)
    if workload.atomic_targets is not None:
        targets = workload.atomic_targets[pair_idx]
        live = targets >= 0
        if np.any(live):
            cycles, stats = flat_atomic_cycles(
                warp_ids[live], group_ids[live], targets[live],
                builder.n_warps, builder.config,
            )
            builder.add_atomic_cycles(cycles, stats)


def add_outer_setup(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    n_outer: int,
    indirect: bool = False,
) -> None:
    """Per-outer-iteration setup: instructions + coalesced offset loads.

    ``indirect`` adds one extra scattered load per iteration (queue- or
    buffer-driven phases first fetch the iteration id they own).
    """
    if n_outer <= 0:
        return
    insts = workload.outer_insts + (2.0 if indirect else 0.0)
    builder.add_uniform(min(n_outer, builder.n_threads), insts=insts)
    tx = int(
        contiguous_transactions(
            n_outer,
            element_bytes=workload.outer_load_bytes,
            lanes_per_warp=builder.config.warp_size,
            segment_bytes=builder.config.mem_segment_bytes,
        ).sum()
    )
    per_warp = np.zeros(builder.n_warps)
    used_warps = max(1, -(-n_outer // builder.config.warp_size))
    used_warps = min(used_warps, builder.n_warps)
    per_warp[:used_warps] = tx / used_warps
    extra = n_outer if indirect else 0
    if extra:
        # scattered 4-byte id fetches: approximately one segment each
        per_warp[:used_warps] += extra / used_warps
    builder.add_traffic(
        per_warp, n_outer * workload.outer_load_bytes + extra * 4, "load"
    )
    if workload.outer_store_bytes:
        store_tx = int(
            contiguous_transactions(
                n_outer,
                element_bytes=workload.outer_store_bytes,
                lanes_per_warp=builder.config.warp_size,
                segment_bytes=builder.config.mem_segment_bytes,
            ).sum()
        )
        store_per_warp = np.zeros(builder.n_warps)
        store_per_warp[:used_warps] = store_tx / used_warps
        builder.add_traffic(
            store_per_warp, n_outer * workload.outer_store_bytes, "store"
        )


def add_thread_mapped_inner(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    outer_ids: np.ndarray,
    thread_ids: np.ndarray,
    trips: np.ndarray | None = None,
    analysis=None,
) -> None:
    """Inner loops run one-outer-per-thread (Fig. 1(a) baseline mapping).

    ``outer_ids[k]`` is executed by linear thread ``thread_ids[k]`` of the
    builder's grid; ``trips`` optionally caps the iterations executed in
    this phase.
    """
    outer_ids = np.asarray(outer_ids, dtype=np.int64)
    thread_ids = np.asarray(thread_ids, dtype=np.int64)
    if outer_ids.shape != thread_ids.shape:
        raise PlanError("outer_ids and thread_ids must align")
    if outer_ids.size == 0:
        return
    sorted_threads = np.sort(thread_ids)
    if np.any(sorted_threads[1:] == sorted_threads[:-1]):
        raise PlanError("a thread cannot own two outer iterations in one phase")
    eff_trips = workload.subset_trips(outer_ids) if trips is None else np.asarray(trips, np.int64)

    def body(b: KernelCostBuilder) -> None:
        per_thread = np.zeros(b.n_threads, dtype=np.int64)
        per_thread[thread_ids] = eff_trips
        b.add_loop(per_thread, insts_per_iter=workload.inner_insts)

        pair_idx, steps = workload.pairs_of(outer_ids, eff_trips)
        if pair_idx.size == 0:
            return
        pair_threads = np.repeat(thread_ids, eff_trips)
        warp_ids = b.warp_of_thread(pair_threads)
        max_step = int(steps.max()) + 1
        group_ids = warp_ids * max_step + steps
        _apply_streams(b, workload, pair_idx, warp_ids, group_ids,
                       group_divisor=max_step, analysis=analysis)

    key = _phase_key("thread", builder, workload, analysis,
                     (outer_ids, thread_ids, eff_trips), ())
    _run_phase(builder, key, body)


def add_block_mapped_inner(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    outer_ids: np.ndarray,
    block_ids: np.ndarray,
    coalesce_stores: bool = False,
    analysis=None,
) -> None:
    """Inner loops run one-outer-per-block: threads stride over f(i).

    ``outer_ids[k]`` is executed by block ``block_ids[k]``; inner iteration
    ``j`` lands on thread ``j % B`` at loop step ``j // B``.  Multiple
    outer iterations may share a block (dbuf-shared's per-block buffer) —
    they are then processed sequentially by that block.
    """
    outer_ids = np.asarray(outer_ids, dtype=np.int64)
    block_ids = np.asarray(block_ids, dtype=np.int64)
    if outer_ids.shape != block_ids.shape:
        raise PlanError("outer_ids and block_ids must align")
    if outer_ids.size == 0:
        return
    if block_ids.size and (block_ids.min() < 0 or block_ids.max() >= builder.n_blocks):
        raise PlanError("block_ids out of range for the builder's grid")

    def body(b: KernelCostBuilder) -> None:
        B = b.block_size
        trips = workload.subset_trips(outer_ids)

        # Per-thread divergence: lane L of block blk runs ceil((f - L) / B)
        # iterations of each outer it hosts; accumulate over hosted outers.
        lanes = np.arange(B, dtype=np.int64)[None, :]
        lane_trips = np.clip((trips[:, None] - lanes + B - 1) // B, 0, None)
        flat_threads = (block_ids[:, None] * B + lanes).ravel()
        per_thread = np.bincount(
            flat_threads, weights=lane_trips.ravel(), minlength=b.n_threads
        ).astype(np.int64)
        b.add_loop(per_thread, insts_per_iter=workload.inner_insts)

        pair_idx, steps = workload.pairs_of(outer_ids)
        if pair_idx.size == 0:
            return
        pair_block = np.repeat(block_ids, trips)
        lane = steps % B
        chunk = steps // B
        pair_threads = pair_block * B + lane
        warp_ids = b.warp_of_thread(pair_threads)
        # Sequential outers within a block get distinct issue slots: include
        # the position of the outer in its block's list.
        outer_seq_in_block = _sequence_within(block_ids)
        pair_seq = np.repeat(outer_seq_in_block, trips)
        max_chunk = int(chunk.max()) + 1
        max_seq = int(pair_seq.max()) + 1
        group_ids = (warp_ids * max_seq + pair_seq) * max_chunk + chunk
        _apply_streams(b, workload, pair_idx, warp_ids, group_ids,
                       coalesce_stores=coalesce_stores,
                       group_divisor=max_seq * max_chunk, analysis=analysis)

    key = _phase_key("block", builder, workload, analysis,
                     (outer_ids, block_ids), (bool(coalesce_stores),))
    _run_phase(builder, key, body)


def add_partitioned_pairs(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    outer_ids: np.ndarray,
    coalesce_stores: bool = False,
    analysis=None,
) -> None:
    """The buffered pair stream split evenly across the builder's blocks.

    dbuf-global's second phase: the delayed buffer lives in global memory,
    so its total inner work can be repartitioned fairly — each block takes
    a contiguous chunk of the concatenated pair stream regardless of which
    outer iteration the pairs belong to.
    """
    outer_ids = np.asarray(outer_ids, dtype=np.int64)
    if outer_ids.size == 0:
        return

    def body(b: KernelCostBuilder) -> None:
        pair_idx, _ = workload.pairs_of(outer_ids)
        P = pair_idx.size
        if P == 0:
            return
        G = b.n_blocks
        B = b.block_size
        chunk_size = -(-P // G)
        pos = np.arange(P, dtype=np.int64)
        block = pos // chunk_size
        within = pos % chunk_size
        lane = within % B
        step = within // B
        per_thread = np.bincount(block * B + lane, minlength=b.n_threads)
        b.add_loop(per_thread, insts_per_iter=workload.inner_insts + 1.0)

        pair_threads = block * B + lane
        warp_ids = b.warp_of_thread(pair_threads)
        max_step = int(step.max()) + 1
        group_ids = warp_ids * max_step + step
        _apply_streams(b, workload, pair_idx, warp_ids, group_ids,
                       coalesce_stores=coalesce_stores,
                       group_divisor=max_step, analysis=analysis)

    key = _phase_key("pairs", builder, workload, analysis,
                     (outer_ids,), (bool(coalesce_stores),))
    _run_phase(builder, key, body)


def _sequence_within(ids: np.ndarray) -> np.ndarray:
    """Occurrence index of each element within its id group.

    ``_sequence_within([5, 5, 2, 5, 2]) == [0, 1, 0, 2, 1]``.
    """
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    new_group = np.ones(ids.size, dtype=bool)
    new_group[1:] = sorted_ids[1:] != sorted_ids[:-1]
    group_start = np.maximum.accumulate(
        np.where(new_group, np.arange(ids.size), 0)
    )
    seq_sorted = np.arange(ids.size) - group_start
    out = np.empty(ids.size, dtype=np.int64)
    out[order] = seq_sorted
    return out
