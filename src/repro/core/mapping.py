"""Shared mapping machinery: from (outer -> hardware) assignments to costs.

Every nested-loop template is a composition of three mapping moves:

* **thread-mapped inner loops** — outer iteration ``i`` runs entirely on
  one thread; the thread loops ``f(i)`` times (warp divergence!);
* **block-mapped inner loops** — outer iteration ``i`` owns a block whose
  threads stride over the inner iterations (``lane, lane+B, ...``);
* **evenly-partitioned pair streams** — a concatenated stream of inner
  iterations split fairly across blocks (dbuf-global's second phase).

The functions here translate each move into the cost builder's language:
per-thread trip counts (divergence), exact (warp, step)-grouped
transactions (coalescing) and grouped atomic conflicts.  They are the only
place where the pair-trace encoding is interpreted, so every template
shares one implementation of the memory model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError
from repro.core.workload import NestedLoopWorkload
from repro.gpusim.atomics import flat_atomic_cycles
from repro.gpusim.coalesce import contiguous_transactions, transaction_counts
from repro.gpusim.costmodel import KernelCostBuilder

__all__ = [
    "add_outer_setup",
    "add_thread_mapped_inner",
    "add_block_mapped_inner",
    "add_partitioned_pairs",
]


def _apply_streams(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    pair_idx: np.ndarray,
    warp_ids: np.ndarray,
    group_ids: np.ndarray,
    coalesce_stores: bool = False,
    group_divisor: int | None = None,
    analysis=None,
) -> None:
    """Cost every access stream + atomics of the selected pairs.

    ``group_divisor`` is the per-warp slot count when groups are encoded as
    ``warp * n_slots + slot``; it unlocks the value-sort fast path of
    :func:`transaction_counts`.  When a
    :class:`~repro.core.analysis.WorkloadAnalysis` is supplied, the
    per-stream memory-segment ids come precomputed from it instead of
    being re-derived from raw addresses on every parameter point.
    """
    n = pair_idx.size
    if n == 0:
        return
    for si, stream in enumerate(workload.streams):
        segments = None
        if coalesce_stores and stream.kind == "store" and stream.staged_in_shared:
            # Staged through shared memory and written back coalesced: the
            # global traffic becomes contiguous in pair order.
            addr = pair_idx * stream.element_bytes
            builder.add_shared_accesses(2 * n)  # stage in + flush out
        elif analysis is not None:
            addr = None
            segments = analysis.stream_segments(si)[pair_idx]
        else:
            addr = stream.addresses[pair_idx]
        tx = transaction_counts(warp_ids, group_ids, addr, builder.n_warps,
                                agg_divisor=group_divisor, segments=segments)
        builder.add_traffic(tx, n * stream.element_bytes, stream.kind)
    if workload.atomic_targets is not None:
        targets = workload.atomic_targets[pair_idx]
        live = targets >= 0
        if np.any(live):
            cycles, stats = flat_atomic_cycles(
                warp_ids[live], group_ids[live], targets[live],
                builder.n_warps, builder.config,
            )
            builder.add_atomic_cycles(cycles, stats)


def add_outer_setup(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    n_outer: int,
    indirect: bool = False,
) -> None:
    """Per-outer-iteration setup: instructions + coalesced offset loads.

    ``indirect`` adds one extra scattered load per iteration (queue- or
    buffer-driven phases first fetch the iteration id they own).
    """
    if n_outer <= 0:
        return
    insts = workload.outer_insts + (2.0 if indirect else 0.0)
    builder.add_uniform(min(n_outer, builder.n_threads), insts=insts)
    tx = int(
        contiguous_transactions(
            n_outer,
            element_bytes=workload.outer_load_bytes,
            lanes_per_warp=builder.config.warp_size,
            segment_bytes=builder.config.mem_segment_bytes,
        ).sum()
    )
    per_warp = np.zeros(builder.n_warps)
    used_warps = max(1, -(-n_outer // builder.config.warp_size))
    used_warps = min(used_warps, builder.n_warps)
    per_warp[:used_warps] = tx / used_warps
    extra = n_outer if indirect else 0
    if extra:
        # scattered 4-byte id fetches: approximately one segment each
        per_warp[:used_warps] += extra / used_warps
    builder.add_traffic(
        per_warp, n_outer * workload.outer_load_bytes + extra * 4, "load"
    )
    if workload.outer_store_bytes:
        store_tx = int(
            contiguous_transactions(
                n_outer,
                element_bytes=workload.outer_store_bytes,
                lanes_per_warp=builder.config.warp_size,
                segment_bytes=builder.config.mem_segment_bytes,
            ).sum()
        )
        store_per_warp = np.zeros(builder.n_warps)
        store_per_warp[:used_warps] = store_tx / used_warps
        builder.add_traffic(
            store_per_warp, n_outer * workload.outer_store_bytes, "store"
        )


def add_thread_mapped_inner(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    outer_ids: np.ndarray,
    thread_ids: np.ndarray,
    trips: np.ndarray | None = None,
    analysis=None,
) -> None:
    """Inner loops run one-outer-per-thread (Fig. 1(a) baseline mapping).

    ``outer_ids[k]`` is executed by linear thread ``thread_ids[k]`` of the
    builder's grid; ``trips`` optionally caps the iterations executed in
    this phase.
    """
    outer_ids = np.asarray(outer_ids, dtype=np.int64)
    thread_ids = np.asarray(thread_ids, dtype=np.int64)
    if outer_ids.shape != thread_ids.shape:
        raise PlanError("outer_ids and thread_ids must align")
    if outer_ids.size == 0:
        return
    sorted_threads = np.sort(thread_ids)
    if np.any(sorted_threads[1:] == sorted_threads[:-1]):
        raise PlanError("a thread cannot own two outer iterations in one phase")
    eff_trips = workload.subset_trips(outer_ids) if trips is None else np.asarray(trips, np.int64)

    per_thread = np.zeros(builder.n_threads, dtype=np.int64)
    per_thread[thread_ids] = eff_trips
    builder.add_loop(per_thread, insts_per_iter=workload.inner_insts)

    pair_idx, steps = workload.pairs_of(outer_ids, eff_trips)
    if pair_idx.size == 0:
        return
    pair_threads = np.repeat(thread_ids, eff_trips)
    warp_ids = builder.warp_of_thread(pair_threads)
    max_step = int(steps.max()) + 1
    group_ids = warp_ids * max_step + steps
    _apply_streams(builder, workload, pair_idx, warp_ids, group_ids,
                   group_divisor=max_step, analysis=analysis)


def add_block_mapped_inner(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    outer_ids: np.ndarray,
    block_ids: np.ndarray,
    coalesce_stores: bool = False,
    analysis=None,
) -> None:
    """Inner loops run one-outer-per-block: threads stride over f(i).

    ``outer_ids[k]`` is executed by block ``block_ids[k]``; inner iteration
    ``j`` lands on thread ``j % B`` at loop step ``j // B``.  Multiple
    outer iterations may share a block (dbuf-shared's per-block buffer) —
    they are then processed sequentially by that block.
    """
    outer_ids = np.asarray(outer_ids, dtype=np.int64)
    block_ids = np.asarray(block_ids, dtype=np.int64)
    if outer_ids.shape != block_ids.shape:
        raise PlanError("outer_ids and block_ids must align")
    if outer_ids.size == 0:
        return
    if block_ids.size and (block_ids.min() < 0 or block_ids.max() >= builder.n_blocks):
        raise PlanError("block_ids out of range for the builder's grid")
    B = builder.block_size
    trips = workload.subset_trips(outer_ids)

    # Per-thread divergence: lane L of block b runs ceil((f - L) / B)
    # iterations of each outer it hosts; accumulate over hosted outers.
    lanes = np.arange(B, dtype=np.int64)[None, :]
    lane_trips = np.clip((trips[:, None] - lanes + B - 1) // B, 0, None)
    flat_threads = (block_ids[:, None] * B + lanes).ravel()
    per_thread = np.bincount(
        flat_threads, weights=lane_trips.ravel(), minlength=builder.n_threads
    ).astype(np.int64)
    builder.add_loop(per_thread, insts_per_iter=workload.inner_insts)

    pair_idx, steps = workload.pairs_of(outer_ids)
    if pair_idx.size == 0:
        return
    pair_block = np.repeat(block_ids, trips)
    lane = steps % B
    chunk = steps // B
    pair_threads = pair_block * B + lane
    warp_ids = builder.warp_of_thread(pair_threads)
    # Sequential outers within a block get distinct issue slots: include
    # the position of the outer in its block's list.
    outer_seq_in_block = _sequence_within(block_ids)
    pair_seq = np.repeat(outer_seq_in_block, trips)
    max_chunk = int(chunk.max()) + 1
    max_seq = int(pair_seq.max()) + 1
    group_ids = (warp_ids * max_seq + pair_seq) * max_chunk + chunk
    _apply_streams(builder, workload, pair_idx, warp_ids, group_ids,
                   coalesce_stores=coalesce_stores,
                   group_divisor=max_seq * max_chunk, analysis=analysis)


def add_partitioned_pairs(
    builder: KernelCostBuilder,
    workload: NestedLoopWorkload,
    outer_ids: np.ndarray,
    coalesce_stores: bool = False,
    analysis=None,
) -> None:
    """The buffered pair stream split evenly across the builder's blocks.

    dbuf-global's second phase: the delayed buffer lives in global memory,
    so its total inner work can be repartitioned fairly — each block takes
    a contiguous chunk of the concatenated pair stream regardless of which
    outer iteration the pairs belong to.
    """
    outer_ids = np.asarray(outer_ids, dtype=np.int64)
    if outer_ids.size == 0:
        return
    pair_idx, _ = workload.pairs_of(outer_ids)
    P = pair_idx.size
    if P == 0:
        return
    G = builder.n_blocks
    B = builder.block_size
    chunk_size = -(-P // G)
    pos = np.arange(P, dtype=np.int64)
    block = pos // chunk_size
    within = pos % chunk_size
    lane = within % B
    step = within // B
    per_thread = np.bincount(block * B + lane, minlength=builder.n_threads)
    builder.add_loop(per_thread, insts_per_iter=workload.inner_insts + 1.0)

    pair_threads = block * B + lane
    warp_ids = builder.warp_of_thread(pair_threads)
    max_step = int(step.max()) + 1
    group_ids = warp_ids * max_step + step
    _apply_streams(builder, workload, pair_idx, warp_ids, group_ids,
                   coalesce_stores=coalesce_stores,
                   group_divisor=max_step, analysis=analysis)


def _sequence_within(ids: np.ndarray) -> np.ndarray:
    """Occurrence index of each element within its id group.

    ``_sequence_within([5, 5, 2, 5, 2]) == [0, 1, 0, 2, 1]``.
    """
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    new_group = np.ones(ids.size, dtype=bool)
    new_group[1:] = sorted_ids[1:] != sorted_ids[:-1]
    group_start = np.maximum.accumulate(
        np.where(new_group, np.arange(ids.size), 0)
    )
    seq_sorted = np.arange(ids.size) - group_start
    out = np.empty(ids.size, dtype=np.int64)
    out[order] = seq_sorted
    return out
