"""Workload-invariant analysis, computed once per workload fingerprint.

Every nested-loop template schedules the *same* iteration-space facts —
trip-count statistics, the sorted-degree order behind every ``lbTHRES``
partition, per-stream memory-segment ids — and every tree template walks
the same structural arrays (degrees, sibling ranks, ancestor hop chains).
This module hoists those facts out of the per-``(template, params)`` build
path into a :class:`WorkloadAnalysis` / :class:`TreeAnalysis` artifact
keyed on the workload fingerprint alone, so a parameter sweep over N
points computes them once and the cheap ``specialize`` stage assembles the
remaining launch graph N times.

Artifacts are cached twice: in a process-wide in-memory map, and (when a
cache directory is configured) in the ``analysis`` tier of the disk-backed
:mod:`~repro.core.artifactcache`, where bench ``--jobs`` workers and
service pool processes share them.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.artifactcache import get_artifact_cache
from repro.core.mutation import TRACE_SEGMENT_BYTES, splice
from repro.errors import WorkloadError

__all__ = [
    "WorkloadAnalysis",
    "TreeAnalysis",
    "get_analysis",
    "get_tree_analysis",
    "analysis_stats",
    "clear_analysis_cache",
]

#: segment size used by the pair-trace coalescing model (see
#: ``core.mapping._apply_streams`` — Kepler L1-cached accesses); shared
#: with the mutation layer, which precomputes inserted pairs' segment ids
_TRACE_SEGMENT_BYTES = TRACE_SEGMENT_BYTES

#: apply_delta bails to a from-scratch rebuild when a delta touches more
#: than this fraction of the rows or pairs — beyond it the O(delta · log n)
#: splices stop beating the O(n log n) rebuild
REBUILD_FRACTION = 0.25

#: delta-chain hops walked before giving up on lineage resolution
_MAX_CHAIN = 32

#: chains at least this long re-anchor the resolved analysis into the
#: disk ``analysis`` tier (chain compaction: future walks stay short)
_COMPACT_AFTER = 4

#: shared empty index array for insert-only splice calls
_NO_DELETES = np.empty(0, dtype=np.int64)


class WorkloadAnalysis:
    """Template-independent facts about one :class:`NestedLoopWorkload`.

    Everything here is a pure function of the workload trace, so instances
    are keyed on the workload fingerprint and shared by every template and
    every ``(block size, lbTHRES)`` point.  Threshold partitions and
    per-stream segment ids are memoized on the instance, so they also ride
    along through the disk cache.
    """

    def __init__(self, fingerprint: str, trip_counts: np.ndarray,
                 stream_segments: list[np.ndarray]) -> None:
        self.fingerprint = fingerprint
        self.outer_size = int(trip_counts.size)
        self.n_pairs = int(trip_counts.sum())
        #: stable ascending-trip order of the outer iterations
        self.order = np.argsort(trip_counts, kind="stable")
        self.sorted_trips = trip_counts[self.order]
        #: trip-count histogram: distinct trip values and their frequencies
        self.trip_values, self.trip_freqs = np.unique(
            trip_counts, return_counts=True
        )
        #: per-stream global-memory segment ids (addresses // 128), pair order
        self._segments = stream_segments
        self._partitions: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._trip_cumsum: np.ndarray | None = None
        self._seg_spans: dict[int, int] = {}

    def trip_summary(self) -> tuple[int, int, int, int]:
        """``(count, total, lo, hi)`` of the inner loop — the trip-count
        metadata the parallelization IR carries (see :mod:`repro.ir`)."""
        lo = int(self.sorted_trips[0]) if self.outer_size else 0
        hi = int(self.sorted_trips[-1]) if self.outer_size else 0
        return (self.outer_size, self.n_pairs, lo, hi)

    def split_counts(self, threshold: int) -> tuple[int, int, int, int]:
        """``(n_small, n_large, pairs_small, pairs_large)`` of the lbTHRES
        partition at ``threshold`` — the sizes without the id arrays.

        Derived from the precomputed sorted order (one binary search plus
        a memoized prefix sum), so the IR promotion pass can weigh a
        threshold without materializing :meth:`partition`'s index arrays.
        Consistent with :meth:`partition`: large iff ``f(i) > threshold``.
        """
        # getattr: instances unpickled from a pre-IR disk cache lack the slot
        if getattr(self, "_trip_cumsum", None) is None:
            self._trip_cumsum = np.concatenate(
                ([0], np.cumsum(self.sorted_trips))
            )
        k = int(np.searchsorted(self.sorted_trips, int(threshold), side="right"))
        pairs_small = int(self._trip_cumsum[k])
        return (k, self.outer_size - k, pairs_small, self.n_pairs - pairs_small)

    @classmethod
    def from_workload(cls, workload) -> "WorkloadAnalysis":
        """Analyze a workload (the expensive, once-per-fingerprint path)."""
        segments = [
            stream.addresses // _TRACE_SEGMENT_BYTES
            for stream in workload.streams
        ]
        return cls(workload.fingerprint(), workload.trip_counts, segments)

    def partition(self, threshold: int) -> tuple[np.ndarray, np.ndarray]:
        """``(small, large)`` outer ids — large iff ``f(i) > threshold``.

        Identical to :func:`~repro.core.dual_queue.split_by_threshold`
        (both ascending id order), but derived from the precomputed sorted
        order: one binary search plus two subset sorts instead of two
        full-array comparisons per candidate threshold.  Memoized per
        threshold — exactly the values an autotune sweep revisits.
        """
        threshold = int(threshold)
        cached = self._partitions.get(threshold)
        if cached is None:
            k = int(np.searchsorted(self.sorted_trips, threshold, side="right"))
            cached = (np.sort(self.order[:k]), np.sort(self.order[k:]))
            self._partitions[threshold] = cached
        return cached

    def stream_segments(self, stream_index: int) -> np.ndarray:
        """Precomputed segment ids of one access stream (pair order)."""
        return self._segments[stream_index]

    def stream_seg_span(self, stream_index: int) -> int:
        """Segment-id span (max + 1) of one stream, memoized.

        Every subset of the stream stays below this bound, so the mapping
        layer can hand it to :func:`~repro.gpusim.coalesce.transaction_counts`
        as a trusted span instead of re-scanning the subset per parameter
        point.
        """
        # getattr: instances unpickled from an older disk cache lack the slot
        spans = getattr(self, "_seg_spans", None)
        if spans is None:
            spans = self._seg_spans = {}
        span = spans.get(stream_index)
        if span is None:
            segments = self._segments[stream_index]
            span = int(segments.max()) + 1 if segments.size else 1
            spans[stream_index] = span
        return span

    def apply_delta(self, delta) -> "WorkloadAnalysis | None":
        """Derive the child analysis from a
        :class:`~repro.core.mutation.MutationDelta`, without rebuilding.

        Returns a *new* instance (``self`` may be cached and shared —
        it is never mutated), or ``None`` when the delta touches more
        than :data:`REBUILD_FRACTION` of the rows or pairs, in which case
        the caller should rebuild from scratch (the ``delta_fallbacks``
        counter).  Every derived fact is updated so the result is
        bit-identical to ``from_workload`` on the mutated trace:

        * trip histogram — signed merge of decrements (old trips of
          changed rows) and increments (new trips of changed + added
          rows), keeping only positive frequencies;
        * sorted-degree order — a stable argsort equals sorting by
          ``(trip, id)``, so changed entries are masked out and all
          changed/added entries re-inserted at their ``(trip, id)``
          positions via binary search;
        * memoized lbTHRES partitions — per memoized threshold, changed
          ids are masked out of both sides and re-inserted (with the
          added ids) on the side their new trip selects, ascending;
        * per-stream segment ids — the same ``(deleted, inserted)``
          pair-splice the workload commit ran over its address arrays.
        """
        if delta.parent_fingerprint != self.fingerprint:
            raise WorkloadError(
                "delta parent fingerprint does not match this analysis "
                f"({delta.parent_fingerprint[:8]}… vs {self.fingerprint[:8]}…)"
            )
        rows_frac, pairs_frac = delta.touch_fractions(self.n_pairs)
        if max(rows_frac, pairs_frac) > REBUILD_FRACTION:
            return None

        changed = delta.changed
        ins_ids = np.concatenate([changed, delta.added])
        ins_trips = np.concatenate([delta.changed_new, delta.added_trips])

        # ids are dense (< outer_before), so membership tests are O(1)
        # lookups into a per-delta flag array instead of np.isin sorts
        changed_flag = np.zeros(int(delta.outer_before), dtype=bool)
        changed_flag[changed] = True

        # ---- sorted-degree order: mask out changed, re-insert by (trip, id)
        if changed.size:
            keep = np.flatnonzero(~changed_flag[self.order])
            keep_order = self.order[keep]
            keep_trips = self.sorted_trips[keep]
        else:
            keep_order = self.order.copy()
            keep_trips = self.sorted_trips.copy()
        if ins_ids.size:
            lex = np.lexsort((ins_ids, ins_trips))
            sorted_ids = ins_ids[lex]
            sorted_ins_trips = ins_trips[lex]
            max_trip = int(max(keep_trips.max(initial=0),
                               sorted_ins_trips.max(initial=0)))
            if max_trip < (1 << 31) and delta.outer_after < (1 << 31):
                # one vectorized search over the combined (trip, id) key
                keep_keys = (keep_trips << 31) | keep_order
                ins_keys = (sorted_ins_trips << 31) | sorted_ids
                positions = np.searchsorted(keep_keys, ins_keys)
            else:  # keys would overflow int64: per-entry two-level search
                positions = np.empty(sorted_ids.size, dtype=np.int64)
                for j in range(sorted_ids.size):
                    trip = sorted_ins_trips[j]
                    lo = int(np.searchsorted(keep_trips, trip, side="left"))
                    hi = int(np.searchsorted(keep_trips, trip, side="right"))
                    positions[j] = lo + int(
                        np.searchsorted(keep_order[lo:hi], sorted_ids[j])
                    )
            new_order = splice(keep_order, _NO_DELETES, positions, sorted_ids)
            new_sorted = splice(keep_trips, _NO_DELETES, positions,
                                sorted_ins_trips)
        else:
            new_order, new_sorted = keep_order, keep_trips

        # ---- trip histogram: signed merge, keep positive frequencies
        values = [self.trip_values]
        counts = [self.trip_freqs]
        if changed.size:
            dec_v, dec_c = np.unique(delta.changed_old, return_counts=True)
            values.append(dec_v)
            counts.append(-dec_c)
        if ins_ids.size:
            inc_v, inc_c = np.unique(ins_trips, return_counts=True)
            values.append(inc_v)
            counts.append(inc_c)
        all_values = np.concatenate(values)
        all_counts = np.concatenate(counts).astype(np.int64)
        uniq, inverse = np.unique(all_values, return_inverse=True)
        freqs = np.zeros(uniq.size, dtype=np.int64)
        np.add.at(freqs, inverse, all_counts)
        positive = freqs > 0

        child = WorkloadAnalysis.__new__(WorkloadAnalysis)
        child.fingerprint = delta.fingerprint
        child.outer_size = int(delta.outer_after)
        child.n_pairs = self.n_pairs - delta.n_deleted + delta.n_inserted
        child.order = new_order
        child.sorted_trips = new_sorted
        child.trip_values = uniq[positive]
        child.trip_freqs = freqs[positive]
        child._segments = [
            splice(seg, delta.deleted_pairs, delta.insert_positions,
                   delta.insert_segments[k])
            for k, seg in enumerate(self._segments)
        ]
        child._partitions = {}
        for threshold, (small, large) in self._partitions.items():
            if changed.size:
                small = small[~changed_flag[small]]
                large = large[~changed_flag[large]]
            if ins_ids.size:
                goes_small = ins_trips <= threshold
                small_ids = np.sort(ins_ids[goes_small])
                large_ids = np.sort(ins_ids[~goes_small])
                if small_ids.size:
                    small = splice(small, _NO_DELETES,
                                   np.searchsorted(small, small_ids),
                                   small_ids)
                if large_ids.size:
                    large = splice(large, _NO_DELETES,
                                   np.searchsorted(large, large_ids),
                                   large_ids)
            child._partitions[threshold] = (small, large)
        child._trip_cumsum = None
        child._seg_spans = {}
        return child


class TreeAnalysis:
    """Template-independent structure of one :class:`RecursiveTreeWorkload`.

    Covers what all three tree templates re-derive per build: out-degrees,
    the internal-node set and its nested-launch fan-out (rec-naive),
    per-node sibling ranks and child-degree sums (rec-hier), and the full
    ancestor hop chain the flat template's atomic model walks.
    """

    def __init__(self, fingerprint: str, tree) -> None:
        self.fingerprint = fingerprint
        n = tree.n_nodes
        self.n_nodes = n
        self.degrees = tree.out_degrees
        self.internal = np.flatnonzero(self.degrees > 0)
        #: number of internal children of each node (rec-naive spawn count)
        child_internal = np.zeros(n, dtype=np.int64)
        if self.internal.size:
            non_root = self.internal[self.internal != 0]
            np.add.at(child_internal, tree.parents[non_root], 1)
        self.spawns = child_internal[self.internal]
        #: rank of each node among its siblings (child-slice position)
        self.sibling_rank = np.zeros(n, dtype=np.int64)
        if self.internal.size:
            ranks = np.concatenate([
                np.arange(deg, dtype=np.int64)
                for deg in self.degrees[self.degrees > 0].tolist()
            ])
            self.sibling_rank[tree.children] = ranks
        #: sum of the children's degrees (grandchild count) per node
        self.child_deg_sum = np.zeros(n, dtype=np.int64)
        if n > 1:
            np.add.at(self.child_deg_sum, tree.parents[1:], self.degrees[1:])
        needs = np.flatnonzero(self.child_deg_sum > 0)
        if 0 not in needs:
            needs = np.union1d(needs, np.array([0]))
        #: nodes owning a rec-hier launch (have grandchildren, plus root)
        self.needs_launch = needs
        # ancestor-chain walk: hop k of node v touches its k-th ancestor
        hop_nodes: list[np.ndarray] = []
        hop_ancestors: list[np.ndarray] = []
        hop_ids: list[np.ndarray] = []
        current = tree.parents.copy()
        hop = 0
        alive = np.flatnonzero(current >= 0)
        while alive.size:
            hop_nodes.append(alive)
            hop_ancestors.append(current[alive])
            hop_ids.append(np.full(alive.size, hop, dtype=np.int64))
            nxt = np.full(n, -1, dtype=np.int64)
            nxt[alive] = tree.parents[current[alive]]
            current = nxt
            alive = np.flatnonzero(current >= 0)
            hop += 1
        if hop_nodes:
            self.hop_nodes = np.concatenate(hop_nodes)
            self.hop_ancestors = np.concatenate(hop_ancestors)
            self.hop_ids = np.concatenate(hop_ids)
            self.ancestor_counts = np.bincount(self.hop_ancestors, minlength=n)
        else:
            self.hop_nodes = np.zeros(0, dtype=np.int64)
            self.hop_ancestors = np.zeros(0, dtype=np.int64)
            self.hop_ids = np.zeros(0, dtype=np.int64)
            self.ancestor_counts = np.zeros(n, dtype=np.int64)
        #: segment ids of the 8-byte parent-pointer loads along the chain
        self.hop_segments = (self.hop_ancestors * 8) // _TRACE_SEGMENT_BYTES

    @classmethod
    def from_workload(cls, workload) -> "TreeAnalysis":
        """Analyze a tree workload (once per fingerprint)."""
        return cls(workload.fingerprint(), workload.tree)

    def structure_summary(self) -> dict[str, int]:
        """Plain-int structural facts for the parallelization IR build.

        ``children``: instances/total/lo/hi of the per-internal-node child
        loop (rec-naive's launch unit); ``grandchildren``: the same for
        the per-launch-owner grandchild loop (rec-hier's launch unit).
        """
        internal_deg = self.degrees[self.internal]
        launch_deg = self.child_deg_sum[self.needs_launch]
        return {
            "n_nodes": int(self.n_nodes),
            "n_internal": int(self.internal.size),
            "children_total": int(internal_deg.sum()),
            "children_lo": int(internal_deg.min()) if internal_deg.size else 0,
            "children_hi": int(internal_deg.max()) if internal_deg.size else 0,
            "n_launch_owners": int(self.needs_launch.size),
            "grandchildren_total": int(launch_deg.sum()),
            "grandchildren_lo": int(launch_deg.min()) if launch_deg.size else 0,
            "grandchildren_hi": int(launch_deg.max()) if launch_deg.size else 0,
        }


#: in-memory analysis store: fingerprint -> analysis artifact
_memory: dict[str, object] = {}
_stats = {"hits": 0, "misses": 0, "disk_hits": 0,
          "incremental_hits": 0, "delta_fallbacks": 0}
#: keep the in-memory map bounded; analyses are a few arrays each
_MAX_ENTRIES = 256


def _memoize(fingerprint: str, analysis: object) -> None:
    if len(_memory) >= _MAX_ENTRIES:
        _memory.pop(next(iter(_memory)))
    _memory[fingerprint] = analysis


def _resolve_incremental(workload, fingerprint: str, disk):
    """Nearest-ancestor resolution over the mutation lineage.

    Walks the delta chain child → parent (the workload's in-object
    ``lineage`` first, then the disk ``lineage`` tier) until it reaches a
    fingerprint whose analysis is already known (memory or disk), then
    replays the deltas forward with :meth:`WorkloadAnalysis.apply_delta`.
    Returns ``None`` when no ancestor is reachable within ``_MAX_CHAIN``
    hops or a delta exceeds the rebuild threshold — the caller falls back
    to a from-scratch build.
    """
    local = {
        delta.fingerprint: delta
        for delta in getattr(workload, "lineage", None) or ()
    }
    chain = []
    ancestor = None
    current = fingerprint
    while len(chain) < _MAX_CHAIN:
        delta = local.get(current)
        if delta is None and disk is not None:
            delta = disk.get("lineage", current)
        if delta is None or delta.fingerprint != current:
            break
        chain.append(delta)
        current = delta.parent_fingerprint
        ancestor = _memory.get(current)
        if ancestor is None and disk is not None:
            ancestor = disk.get("analysis", ("nested", current))
        if ancestor is not None:
            break
    if ancestor is None or not isinstance(ancestor, WorkloadAnalysis):
        if chain:
            _stats["delta_fallbacks"] += 1
            if obs.enabled():
                obs.add_counter("analysis.delta_fallbacks")
        return None
    analysis = ancestor
    with obs.span("analysis.apply_delta", hops=len(chain),
                  workload=getattr(workload, "name", "?")):
        for delta in reversed(chain):
            analysis = analysis.apply_delta(delta)
            if analysis is None:
                _stats["delta_fallbacks"] += 1
                if obs.enabled():
                    obs.add_counter("analysis.delta_fallbacks")
                return None
            _stats["incremental_hits"] += 1
            if obs.enabled():
                obs.add_counter("analysis.incremental_hits")
            # intermediate fingerprints are live snapshot versions in the
            # serving layer — memoize the whole replayed prefix
            _memoize(delta.fingerprint, analysis)
    if disk is not None and len(chain) >= _COMPACT_AFTER:
        # chain compaction: re-anchor a full artifact so future walks
        # (and other processes) stop after one hop
        disk.put("analysis", ("nested", fingerprint), analysis)
    return analysis


def _get(workload, kind: str, factory) -> object:
    fingerprint = workload.fingerprint()
    cached = _memory.get(fingerprint)
    if cached is not None:
        _stats["hits"] += 1
        if obs.enabled():
            obs.add_counter("analysis_cache.hits")
        return cached
    _stats["misses"] += 1
    if obs.enabled():
        obs.add_counter("analysis_cache.misses")
    disk = get_artifact_cache()
    disk_key = (kind, fingerprint)
    analysis = disk.get("analysis", disk_key) if disk is not None else None
    if analysis is not None:
        _stats["disk_hits"] += 1
    if analysis is None and kind == "nested":
        analysis = _resolve_incremental(workload, fingerprint, disk)
    if analysis is None:
        with obs.span("analysis.build", kind=kind,
                      workload=getattr(workload, "name", "?")):
            analysis = factory(workload)
        if disk is not None:
            disk.put("analysis", disk_key, analysis)
    _memoize(fingerprint, analysis)
    return analysis


def get_analysis(workload) -> WorkloadAnalysis:
    """The (cached) analysis artifact of a nested-loop workload."""
    return _get(workload, "nested", WorkloadAnalysis.from_workload)


def get_tree_analysis(workload) -> TreeAnalysis:
    """The (cached) analysis artifact of a recursive tree workload."""
    return _get(workload, "tree", TreeAnalysis.from_workload)


def analysis_stats() -> dict[str, int]:
    """Copy of the in-memory analysis-cache counters."""
    return dict(_stats)


def clear_analysis_cache(reset_stats: bool = False) -> None:
    """Drop cached analyses (optionally also the counters)."""
    _memory.clear()
    if reset_stats:
        for k in _stats:
            _stats[k] = 0
