"""Dual-queue template (Fig. 1(b)).

Outer iterations are split into two queues by ``lbTHRES``: the small-work
queue is processed thread-mapped (little divergence left, since every
surviving inner loop is short) and the large-work queue block-mapped.  The
split itself costs a queue-construction kernel whose counter atomics grow
with the dataset — the overhead that makes dual-queue lose to the delayed
buffers on large inputs (paper §III.B, "Results on BC, PageRank and
SpMV").
"""

from __future__ import annotations

import numpy as np

from repro.core.base import NestedLoopTemplate
from repro.core.mapping import (
    add_block_mapped_inner,
    add_outer_setup,
    add_thread_mapped_inner,
)
from repro.core.params import TemplateParams
from repro.core.workload import NestedLoopWorkload
from repro.gpusim.coalesce import contiguous_transactions
from repro.gpusim.config import DeviceConfig
from repro.gpusim.costmodel import KernelCostBuilder
from repro.gpusim.kernels import LaunchGraph

__all__ = ["DualQueueTemplate", "split_by_threshold"]


def split_by_threshold(
    trip_counts: np.ndarray, threshold: int
) -> tuple[np.ndarray, np.ndarray]:
    """(small, large) outer ids: large iff f(i) > threshold."""
    trip_counts = np.asarray(trip_counts)
    large = np.flatnonzero(trip_counts > threshold)
    small = np.flatnonzero(trip_counts <= threshold)
    return small, large


class DualQueueTemplate(NestedLoopTemplate):
    """Two queues, two kernels, plus the queue-construction cost."""

    name = "dual-queue"

    def specialize(self, workload: NestedLoopWorkload, analysis,
                   config: DeviceConfig, params: TemplateParams):
        n = workload.outer_size
        small, large = analysis.partition(params.lb_threshold)
        graph = LaunchGraph()

        # --- queue construction kernel (thread-mapped over all iterations)
        blocks = self._grid_for(n, params.thread_block, params.max_grid_blocks)
        qb = KernelCostBuilder(
            config, f"{workload.name}/dq-build",
            block_size=params.thread_block, n_blocks=blocks,
            registers_per_thread=params.registers_per_thread,
        )
        qb.add_uniform(n, insts=6.0)  # read f(i), compare, pick queue
        # queue entry stores are coalesced-ish per queue
        store_tx = int(contiguous_transactions(n).sum())
        per_warp = np.zeros(qb.n_warps)
        used = min(qb.n_warps, max(1, -(-n // config.warp_size)))
        per_warp[:used] = store_tx / used
        qb.add_traffic(per_warp, n * 4, "store")
        # two global tail counters, hit once per iteration: hot addresses
        qb.add_hot_address_tail(np.array([small.size, large.size]))
        graph.add(qb.build())

        # --- small queue: thread-mapped
        schedule: dict[str, np.ndarray] = {}
        if small.size:
            sb_blocks = self._grid_for(small.size, params.thread_block,
                                       params.max_grid_blocks)
            sb = KernelCostBuilder(
                config, f"{workload.name}/dq-small",
                block_size=params.thread_block, n_blocks=sb_blocks,
                registers_per_thread=params.registers_per_thread,
            )
            add_outer_setup(sb, workload, small.size, indirect=True)
            add_thread_mapped_inner(
                sb, workload, small,
                np.arange(small.size, dtype=np.int64),
                analysis=analysis,
            )
            graph.add(sb.build())
        schedule["small-queue"] = small

        # --- large queue: block-mapped
        if large.size:
            lb = KernelCostBuilder(
                config, f"{workload.name}/dq-large",
                block_size=params.lb_block, n_blocks=large.size,
                registers_per_thread=params.registers_per_thread,
            )
            add_outer_setup(lb, workload, large.size, indirect=True)
            add_block_mapped_inner(
                lb, workload, large,
                np.arange(large.size, dtype=np.int64),
                analysis=analysis,
            )
            graph.add(lb.build())
        schedule["large-queue"] = large
        return graph, schedule
