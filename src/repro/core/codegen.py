"""CUDA code generation for the parallelization templates.

The paper's framing is explicitly compiler-centric: "our parallelization
techniques can be incorporated in compilers, thus freeing the programmer
from the need to worry about the mapping of work to the hardware and to
understand the complex semantics of GPU dynamic parallelism" — the
programmer writes only the simple nested loop of Fig. 1(a) (or the
recursive function of Fig. 3(a)), and the compiler emits the template.

This module performs that emission: given a loop-nest description, it
generates compilable-style CUDA C for any of the seven nested-loop
templates (and the three recursive tree templates), with the same phase
structure, thresholds and stream semantics the simulator models.  The
generated text is what a template-emitting compiler pass would produce;
tests assert its structural properties (kernel counts, `<<<>>>` launches,
shared-memory buffers, atomicAdd appearances).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import TemplateParams
from repro.errors import PlanError

__all__ = ["LoopNestSpec", "generate_cuda", "SUPPORTED_TEMPLATES"]

SUPPORTED_TEMPLATES = (
    "baseline", "block-mapped", "dual-queue", "dbuf-global", "dbuf-shared",
    "dpar-naive", "dpar-opt",
)


@dataclass
class LoopNestSpec:
    """The Fig. 1(a) source loop a compiler front-end would hand over.

    ``body`` is the inner-statement text using ``i`` (outer index) and
    ``j`` (inner index); ``trip_count_expr`` gives f(i) in terms of the
    row-offset arrays, as in CSR traversals.
    """

    name: str = "kernel"
    outer_size_expr: str = "n"
    trip_count_expr: str = "row_offsets[i + 1] - row_offsets[i]"
    body: str = "process(i, j);"
    args: list[str] = field(default_factory=lambda: [
        "const int *row_offsets", "int n",
    ])

    def arg_list(self) -> str:
        """The C parameter list."""
        return ", ".join(self.args)

    def arg_names(self) -> str:
        """Just the argument names (for nested call forwarding)."""
        names = []
        for arg in self.args:
            names.append(arg.split()[-1].lstrip("*&"))
        return ", ".join(names)


def _inner_loop(spec: LoopNestSpec, indent: str, index: str = "j",
                start: str = "0", stride: str = "1",
                bound: str = "f_i") -> str:
    if stride == "1":
        head = f"for (int {index} = {start}; {index} < {bound}; ++{index})"
    else:
        head = (f"for (int {index} = {start}; {index} < {bound}; "
                f"{index} += {stride})")
    return f"{indent}{head} {{\n{indent}    {spec.body}\n{indent}}}\n"


def _baseline(spec: LoopNestSpec, params: TemplateParams) -> str:
    return f"""\
// baseline: thread-mapped outer loop (Fig. 1(a)), no load balancing
__global__ void {spec.name}_thread({spec.arg_list()}) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= {spec.outer_size_expr}) return;
    int f_i = {spec.trip_count_expr};
{_inner_loop(spec, "    ")}\
}}

void launch_{spec.name}({spec.arg_list()}) {{
    int grid = ({spec.outer_size_expr} + {params.thread_block} - 1) / {params.thread_block};
    {spec.name}_thread<<<grid, {params.thread_block}>>>({spec.arg_names()});
}}
"""


def _block_mapped(spec: LoopNestSpec, params: TemplateParams) -> str:
    return f"""\
// block-mapped: one outer iteration per thread-block
__global__ void {spec.name}_block({spec.arg_list()}) {{
    int i = blockIdx.x;
    if (i >= {spec.outer_size_expr}) return;
    int f_i = {spec.trip_count_expr};
{_inner_loop(spec, "    ", start="threadIdx.x", stride="blockDim.x")}\
}}

void launch_{spec.name}({spec.arg_list()}) {{
    {spec.name}_block<<<{spec.outer_size_expr}, {params.lb_block}>>>({spec.arg_names()});
}}
"""


def _dual_queue(spec: LoopNestSpec, params: TemplateParams) -> str:
    return f"""\
// dual-queue (Fig. 1(b)): split by lbTHRES={params.lb_threshold}, then
// process the small queue thread-mapped and the large queue block-mapped
__global__ void {spec.name}_build_queues({spec.arg_list()},
        int *small_q, int *small_tail, int *large_q, int *large_tail) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= {spec.outer_size_expr}) return;
    int f_i = {spec.trip_count_expr};
    if (f_i > {params.lb_threshold})
        large_q[atomicAdd(large_tail, 1)] = i;
    else
        small_q[atomicAdd(small_tail, 1)] = i;
}}

__global__ void {spec.name}_small({spec.arg_list()}, const int *small_q, int n_small) {{
    int k = blockIdx.x * blockDim.x + threadIdx.x;
    if (k >= n_small) return;
    int i = small_q[k];
    int f_i = {spec.trip_count_expr};
{_inner_loop(spec, "    ")}\
}}

__global__ void {spec.name}_large({spec.arg_list()}, const int *large_q, int n_large) {{
    int i = large_q[blockIdx.x];
    int f_i = {spec.trip_count_expr};
{_inner_loop(spec, "    ", start="threadIdx.x", stride="blockDim.x")}\
}}

void launch_{spec.name}({spec.arg_list()}) {{
    // 1. build queues; 2. thread-mapped small; 3. block-mapped large
    int grid = ({spec.outer_size_expr} + {params.thread_block} - 1) / {params.thread_block};
    {spec.name}_build_queues<<<grid, {params.thread_block}>>>({spec.arg_names()},
        d_small_q, d_small_tail, d_large_q, d_large_tail);
    {spec.name}_small<<<grid, {params.thread_block}>>>({spec.arg_names()}, d_small_q, h_small);
    {spec.name}_large<<<h_large, {params.lb_block}>>>({spec.arg_names()}, d_large_q, h_large);
}}
"""


def _dbuf_global(spec: LoopNestSpec, params: TemplateParams) -> str:
    return f"""\
// dbuf-global (Fig. 1(c)): delay large iterations into a global buffer;
// a second kernel repartitions the buffered work fairly across blocks
__global__ void {spec.name}_phase1({spec.arg_list()}, int *dbuf, int *dbuf_tail) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= {spec.outer_size_expr}) return;
    int f_i = {spec.trip_count_expr};
    if (f_i > {params.lb_threshold}) {{
        dbuf[atomicAdd(dbuf_tail, 1)] = i;   // delay
        return;
    }}
{_inner_loop(spec, "    ")}\
}}

__global__ void {spec.name}_phase2({spec.arg_list()}, const int *dbuf, int n_buf) {{
    // fair repartition: blocks grab buffered iterations round-robin
    for (int k = blockIdx.x; k < n_buf; k += gridDim.x) {{
        int i = dbuf[k];
        int f_i = {spec.trip_count_expr};
{_inner_loop(spec, "        ", start="threadIdx.x", stride="blockDim.x")}\
    }}
}}

void launch_{spec.name}({spec.arg_list()}) {{
    int grid = ({spec.outer_size_expr} + {params.thread_block} - 1) / {params.thread_block};
    {spec.name}_phase1<<<grid, {params.thread_block}>>>({spec.arg_names()}, d_dbuf, d_tail);
    {spec.name}_phase2<<<NUM_SM * {params.lb_block}, {params.lb_block}>>>({spec.arg_names()}, d_dbuf, h_tail);
}}
"""


def _dbuf_shared(spec: LoopNestSpec, params: TemplateParams) -> str:
    return f"""\
// dbuf-shared (Fig. 1(c)): the delayed buffer lives in shared memory;
// a single kernel processes it in an in-block second phase
__global__ void {spec.name}_dbuf_shared({spec.arg_list()}) {{
    __shared__ int sbuf[{params.thread_block}];
    __shared__ int stail;
    if (threadIdx.x == 0) stail = 0;
    __syncthreads();

    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < {spec.outer_size_expr}) {{
        int f_i = {spec.trip_count_expr};
        if (f_i > {params.lb_threshold}) {{
            sbuf[atomicAdd(&stail, 1)] = i;   // delay into shared memory
        }} else {{
{_inner_loop(spec, "            ")}\
        }}
    }}
    __syncthreads();

    // in-block phase 2: the whole block strides over each buffered loop
    for (int k = 0; k < stail; ++k) {{
        int i = sbuf[k];
        int f_i = {spec.trip_count_expr};
{_inner_loop(spec, "        ", start="threadIdx.x", stride="blockDim.x")}\
    }}
}}

void launch_{spec.name}({spec.arg_list()}) {{
    int grid = ({spec.outer_size_expr} + {params.thread_block} - 1) / {params.thread_block};
    {spec.name}_dbuf_shared<<<grid, {params.thread_block}>>>({spec.arg_names()});
}}
"""


def _dpar_naive(spec: LoopNestSpec, params: TemplateParams) -> str:
    return f"""\
// dpar-naive (Fig. 1(d)): every thread owning a large iteration launches
// a single-block nested grid for it (requires CC >= 3.5)
__global__ void {spec.name}_child({spec.arg_list()}, int i) {{
    int f_i = {spec.trip_count_expr};
{_inner_loop(spec, "    ", start="threadIdx.x", stride="blockDim.x")}\
}}

__global__ void {spec.name}_parent({spec.arg_list()}) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= {spec.outer_size_expr}) return;
    int f_i = {spec.trip_count_expr};
    if (f_i > {params.lb_threshold}) {{
        {spec.name}_child<<<1, {params.lb_block}>>>({spec.arg_names()}, i);
        return;
    }}
{_inner_loop(spec, "    ")}\
}}

void launch_{spec.name}({spec.arg_list()}) {{
    int grid = ({spec.outer_size_expr} + {params.thread_block} - 1) / {params.thread_block};
    {spec.name}_parent<<<grid, {params.thread_block}>>>({spec.arg_names()});
}}
"""


def _dpar_opt(spec: LoopNestSpec, params: TemplateParams) -> str:
    return f"""\
// dpar-opt (Fig. 1(e)): large iterations buffered per block; ONE nested
// launch per block aggregates them (fewer, larger child grids)
__global__ void {spec.name}_child({spec.arg_list()}, const int *buf, int n_buf) {{
    int i = buf[blockIdx.x];
    int f_i = {spec.trip_count_expr};
{_inner_loop(spec, "    ", start="threadIdx.x", stride="blockDim.x")}\
}}

__global__ void {spec.name}_parent({spec.arg_list()}, int *gbuf) {{
    __shared__ int sbuf[{params.thread_block}];
    __shared__ int stail;
    if (threadIdx.x == 0) stail = 0;
    __syncthreads();

    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < {spec.outer_size_expr}) {{
        int f_i = {spec.trip_count_expr};
        if (f_i > {params.lb_threshold}) {{
            sbuf[atomicAdd(&stail, 1)] = i;
        }} else {{
{_inner_loop(spec, "            ")}\
        }}
    }}
    __syncthreads();

    if (threadIdx.x == 0 && stail > 0) {{
        int *block_buf = gbuf + blockIdx.x * blockDim.x;
        for (int k = 0; k < stail; ++k) block_buf[k] = sbuf[k];
        {spec.name}_child<<<stail, {params.lb_block}>>>({spec.arg_names()}, block_buf, stail);
    }}
}}

void launch_{spec.name}({spec.arg_list()}) {{
    int grid = ({spec.outer_size_expr} + {params.thread_block} - 1) / {params.thread_block};
    {spec.name}_parent<<<grid, {params.thread_block}>>>({spec.arg_names()}, d_gbuf);
}}
"""


_GENERATORS = {
    "baseline": _baseline,
    "block-mapped": _block_mapped,
    "dual-queue": _dual_queue,
    "dbuf-global": _dbuf_global,
    "dbuf-shared": _dbuf_shared,
    "dpar-naive": _dpar_naive,
    "dpar-opt": _dpar_opt,
}


def generate_cuda(
    spec: LoopNestSpec,
    template: str,
    params: TemplateParams | None = None,
) -> str:
    """Emit CUDA C for ``spec`` parallelized with ``template``.

    This is the code a template-emitting compiler pass would produce from
    the programmer's plain nested loop.
    """
    params = params or TemplateParams()
    try:
        generator = _GENERATORS[template]
    except KeyError:
        known = ", ".join(SUPPORTED_TEMPLATES)
        raise PlanError(
            f"no code generator for template {template!r}; known: {known}"
        ) from None
    header = (
        f"// Generated by repro.core.codegen — template: {template}\n"
        f"// lbTHRES={params.lb_threshold}, thread block="
        f"{params.thread_block}, lb block={params.lb_block}\n\n"
    )
    return header + generator(spec, params)
