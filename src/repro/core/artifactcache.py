"""Disk-backed artifact cache shared across processes.

The in-memory plan and analysis caches die with their process, so every
bench ``--jobs`` worker and every service pool process re-derives the same
workload analyses, plans and (deterministic) execution results.  This
module persists those artifacts under a configurable cache directory in
three tiers:

* ``analysis`` — :class:`~repro.core.analysis.WorkloadAnalysis` /
  ``TreeAnalysis`` artifacts, keyed on the workload fingerprint alone;
* ``plan`` — built ``(LaunchGraph, schedule)`` plans (bare graphs for tree
  templates), keyed on the full plan key;
* ``run`` — :class:`~repro.gpusim.executor.ExecutionResult` objects keyed
  on ``(plan key, engine)``.  The simulator is deterministic, so a result
  is a pure function of its key; the run tier is bypassed whenever a
  caller asks for timelines or tracing is on (those need a live run);
* ``select`` — :class:`~repro.ir.select.Selection` records of the
  ``template="auto"`` lowering, keyed on ``(workload fingerprint, device
  fingerprint, pass-config key, params, engine)``;
* ``lineage`` — :class:`~repro.core.mutation.MutationDelta` records of
  committed workload mutations, keyed on the *child* fingerprint.  Each
  record names its parent fingerprint, so a warm process holding only the
  mutated workload can walk the chain back to the nearest ancestor with a
  cached analysis and replay the deltas incrementally
  (:meth:`WorkloadAnalysis.apply_delta
  <repro.core.analysis.WorkloadAnalysis.apply_delta>`) instead of
  rebuilding from scratch.  Chains are compacted: after a few delta hops
  the resolved analysis is re-anchored into the ``analysis`` tier, which
  bounds future walks (see ``analysis._COMPACT_AFTER``).

Entries are pickles named by a blake2b digest of the key's ``repr`` plus a
format version.  Writes are atomic (temp file + ``os.replace``) so
concurrent workers never observe a torn entry; reads are
corruption-tolerant — any unreadable entry counts as a miss (and bumps the
``corrupt`` counter), never raises.  Keys must therefore be repr-stable
across processes: fingerprint strings, names and numbers, not live
objects.

Disk usage is bounded: the cache evicts least-recently-used entries
(mtime order — hits refresh an entry's mtime) whenever the total size
exceeds ``max_bytes`` (default 1 GiB, overridable per instance or via the
``REPRO_CACHE_MAX_BYTES`` environment variable; ``0`` disables the cap).
Eviction is a plain atomic ``unlink``: a concurrent reader that already
opened the file keeps reading its snapshot, one that races the unlink
sees a miss and rebuilds — exactly the corruption-degradation contract
reads already have.

Configuration is process-wide: :func:`configure_artifact_cache` sets (or
disables) the cache, and setting it also exports ``REPRO_CACHE_DIR`` so
pool workers spawned afterwards inherit the same directory;
:func:`get_artifact_cache` lazily picks that variable up in processes that
were never configured explicitly.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from repro import obs
from repro.errors import ConfigError

__all__ = [
    "ArtifactCache",
    "TIERS",
    "configure_artifact_cache",
    "get_artifact_cache",
]

#: cache tiers, in pipeline order
TIERS = ("analysis", "lineage", "select", "plan", "run")

#: bump to invalidate every existing cache entry on a format change
_FORMAT_VERSION = "v1"

#: environment variable carrying the cache dir into pool workers
ENV_VAR = "REPRO_CACHE_DIR"

#: environment variable overriding the default size cap (bytes; 0 = off)
SIZE_ENV_VAR = "REPRO_CACHE_MAX_BYTES"

#: default disk budget when neither the constructor nor the environment
#: says otherwise
DEFAULT_MAX_BYTES = 1 << 30  # 1 GiB

#: puts between full directory rescans (concurrent writers drift the
#: incrementally-tracked total; a periodic rescan re-anchors it)
_RESCAN_EVERY = 64


def _default_max_bytes() -> int:
    raw = os.environ.get(SIZE_ENV_VAR)
    if raw is None:
        return DEFAULT_MAX_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MAX_BYTES


class ArtifactCache:
    """Pickle store under ``cache_dir`` with per-tier hit/miss counters.

    ``max_bytes`` bounds total disk usage (LRU eviction by mtime; 0 means
    unbounded).  ``None`` defers to ``REPRO_CACHE_MAX_BYTES`` or the
    1 GiB default.
    """

    def __init__(self, cache_dir: str | Path,
                 max_bytes: int | None = None) -> None:
        self.cache_dir = Path(cache_dir)
        self.max_bytes = _default_max_bytes() if max_bytes is None else max(0, int(max_bytes))
        self.stats: dict[str, dict[str, int]] = {
            tier: {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0,
                   "evictions": 0}
            for tier in TIERS
        }
        #: incrementally-tracked total size; None = not yet scanned
        self._size_bytes: int | None = None
        self._puts_since_scan = 0

    def _path(self, tier: str, key: object) -> Path:
        if tier not in TIERS:
            raise ConfigError(f"unknown cache tier {tier!r}; known: {TIERS}")
        digest = hashlib.blake2b(
            f"{_FORMAT_VERSION}|{key!r}".encode(), digest_size=16
        ).hexdigest()
        return self.cache_dir / tier / f"{digest}.pkl"

    def get(self, tier: str, key: object) -> object | None:
        """The cached artifact, or None.  Never raises on bad entries."""
        path = self._path(tier, key)
        stats = self.stats[tier]
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            stats["misses"] += 1
            if obs.enabled():
                obs.add_counter(f"artifact_cache.{tier}.misses")
            return None
        except Exception:
            # torn/corrupted/alien entry: degrade to a miss, never crash
            stats["corrupt"] += 1
            stats["misses"] += 1
            if obs.enabled():
                obs.add_counter(f"artifact_cache.{tier}.corrupt")
                obs.add_counter(f"artifact_cache.{tier}.misses")
            return None
        stats["hits"] += 1
        if obs.enabled():
            obs.add_counter(f"artifact_cache.{tier}.hits")
        try:
            # refresh recency so LRU eviction spares hot entries
            os.utime(path)
        except OSError:
            pass
        return value

    def put(self, tier: str, key: object, value: object) -> None:
        """Store an artifact atomically; I/O failures are swallowed
        (a full or read-only disk degrades the cache, not the run)."""
        path = self._path(tier, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                replaced = path.stat().st_size
            except OSError:
                replaced = 0
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                written = os.stat(tmp).st_size
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            return
        self.stats[tier]["writes"] += 1
        if obs.enabled():
            obs.add_counter(f"artifact_cache.{tier}.writes")
        if self.max_bytes:
            self._account_and_evict(written - replaced)

    # -------------------------------------------------------- size bounding
    def _scan_entries(self) -> list[tuple[float, int, str, "Path"]]:
        """All cache entries as ``(mtime, size, tier, path)`` tuples."""
        entries = []
        for tier in TIERS:
            tier_dir = self.cache_dir / tier
            try:
                with os.scandir(tier_dir) as it:
                    for entry in it:
                        if not entry.name.endswith(".pkl"):
                            continue
                        try:
                            st = entry.stat()
                        except OSError:
                            continue  # raced an eviction/cleanup
                        entries.append(
                            (st.st_mtime, st.st_size, tier, Path(entry.path))
                        )
            except OSError:
                continue
        return entries

    def _account_and_evict(self, delta: int) -> None:
        """Track total size incrementally; evict LRU entries over the cap.

        Eviction is a plain ``os.unlink`` per entry: atomic, and safe
        against concurrent readers — an open file keeps serving its
        reader, a read racing the unlink degrades to a miss.
        """
        self._puts_since_scan += 1
        if self._size_bytes is None or self._puts_since_scan >= _RESCAN_EVERY:
            self._size_bytes = sum(e[1] for e in self._scan_entries())
            self._puts_since_scan = 0
        else:
            self._size_bytes += delta
        if self._size_bytes <= self.max_bytes:
            return
        entries = sorted(self._scan_entries())  # oldest mtime first
        total = sum(e[1] for e in entries)
        for _, size, tier, path in entries:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue  # already gone (another process evicted it)
            total -= size
            self.stats[tier]["evictions"] += 1
            if obs.enabled():
                obs.add_counter(f"artifact_cache.{tier}.evictions")
        self._size_bytes = total
        self._puts_since_scan = 0

    def snapshot(self) -> dict:
        """Per-tier counters plus totals (``--profile`` / BENCH records)."""
        total = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0,
                 "evictions": 0}
        tiers = {}
        for tier in TIERS:
            tiers[tier] = dict(self.stats[tier])
            for k in total:
                total[k] += self.stats[tier][k]
        return {"cache_dir": str(self.cache_dir), "max_bytes": self.max_bytes,
                "tiers": tiers, **total}


#: process-wide cache instance; ``False`` = not yet configured (allows the
#: REPRO_CACHE_DIR fallback), ``None`` = explicitly disabled
_cache: ArtifactCache | None | bool = False


def configure_artifact_cache(
    cache_dir: str | Path | None,
    max_bytes: int | None = None,
) -> ArtifactCache | None:
    """Set the process-wide disk cache (None disables it).

    Enabling also exports ``REPRO_CACHE_DIR`` so worker processes forked or
    spawned afterwards share the same directory without explicit plumbing.
    ``max_bytes`` caps disk usage (None defers to ``REPRO_CACHE_MAX_BYTES``
    or the 1 GiB default; 0 disables the cap).
    """
    global _cache
    if cache_dir is None:
        _cache = None
        os.environ.pop(ENV_VAR, None)
        return None
    _cache = ArtifactCache(cache_dir, max_bytes=max_bytes)
    os.environ[ENV_VAR] = str(_cache.cache_dir)
    return _cache


def get_artifact_cache() -> ArtifactCache | None:
    """The process-wide disk cache, or None when disabled.

    Unconfigured processes adopt ``REPRO_CACHE_DIR`` from the environment
    (how bench and service pool workers find the shared directory).
    """
    global _cache
    if _cache is False:
        env = os.environ.get(ENV_VAR)
        _cache = ArtifactCache(env) if env else None
    return _cache
