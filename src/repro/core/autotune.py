"""Template + threshold auto-tuning.

The paper frames the templates as compiler-emitted code variants and notes
that "the optimal load balancing threshold will depend on the underlying
dataset and algorithm".  This module performs the selection a compiler
runtime would: sweep (template, lbTHRES) on the simulated device and keep
the fastest combination.  Templates requiring dynamic parallelism are
skipped automatically on devices without it.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.analysis import analysis_stats, get_analysis
from repro.core.base import TemplateRun
from repro.core.params import TemplateParams
from repro.core.registry import LOAD_BALANCING_TEMPLATES, resolve
from repro.core.workload import NestedLoopWorkload
from repro.errors import PlanError
from repro.gpusim.config import DeviceConfig, supports_dynamic_parallelism

__all__ = ["autotune", "best_run", "sweep"]

#: default lbTHRES candidates (the paper's sweep, warp size upward)
DEFAULT_THRESHOLDS = (32, 64, 128, 256)


def sweep(
    workload: NestedLoopWorkload,
    config: DeviceConfig,
    templates: Iterable[str] = LOAD_BALANCING_TEMPLATES,
    thresholds: Iterable[int] = DEFAULT_THRESHOLDS,
    base_params: TemplateParams | None = None,
) -> list[TemplateRun]:
    """Run every (template, threshold) combination; returns all runs.

    The workload analysis is fetched once up front, so every candidate
    build is a pure specialize stage against the same cached
    :class:`~repro.core.analysis.WorkloadAnalysis` artifact.
    """
    base_params = base_params or TemplateParams()
    get_analysis(workload)  # prime the analysis cache for all candidates
    runs: list[TemplateRun] = []
    for name in templates:
        template = resolve(name, kind="nested-loop")
        if (template.uses_dynamic_parallelism
                and not supports_dynamic_parallelism(config)):
            continue
        for lbt in thresholds:
            params = base_params.replace(lb_threshold=int(lbt))
            runs.append(template.run(workload, config, params))
    if not runs:
        raise PlanError(
            "no (template, threshold) combination is runnable on "
            f"{config.name}"
        )
    return runs


def best_run(runs: Iterable[TemplateRun]) -> TemplateRun:
    """The fastest run, with deterministic tie-breaking.

    Ties on ``time_ms`` (bit-equal simulated times do occur — e.g. two
    thresholds both above every trip count produce identical plans) are
    broken on ``(template name, lb_threshold)``, so repeated sweeps — and
    sweeps fed the same candidates in a different order — pick the same
    winner.
    """
    def key(run: TemplateRun):
        lbt = run.params.lb_threshold if run.params is not None else 0
        return (run.time_ms, run.template, lbt)

    runs = list(runs)
    if not runs:
        raise PlanError("best_run() needs at least one run")
    return min(runs, key=key)


def autotune(
    workload: NestedLoopWorkload,
    config: DeviceConfig,
    templates: Iterable[str] = LOAD_BALANCING_TEMPLATES,
    thresholds: Iterable[int] = DEFAULT_THRESHOLDS,
    base_params: TemplateParams | None = None,
) -> TemplateRun:
    """The fastest (template, threshold) combination for a workload.

    Tie-breaking is deterministic (see :func:`best_run`).  The winning run
    carries a ``tuning_report`` attribute summarizing the sweep: candidate
    count and the analysis-cache hit/miss counters accumulated while the
    sweep specialized every candidate against one shared analysis.
    """
    before = analysis_stats()
    runs = sweep(workload, config, templates, thresholds, base_params)
    winner = best_run(runs)
    after = analysis_stats()
    winner.tuning_report = {
        "candidates": len(runs),
        "analysis_cache": {
            k: after[k] - before[k] for k in after
        },
    }
    return winner
