"""Template + threshold auto-tuning.

The paper frames the templates as compiler-emitted code variants and notes
that "the optimal load balancing threshold will depend on the underlying
dataset and algorithm".  This module performs the selection a compiler
runtime would: sweep (template, lbTHRES) on the simulated device and keep
the fastest combination.  Templates requiring dynamic parallelism are
skipped automatically on devices without it.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.base import TemplateRun
from repro.core.params import TemplateParams
from repro.core.registry import LOAD_BALANCING_TEMPLATES, resolve
from repro.core.workload import NestedLoopWorkload
from repro.errors import PlanError
from repro.gpusim.config import DeviceConfig, supports_dynamic_parallelism

__all__ = ["autotune", "sweep"]

#: default lbTHRES candidates (the paper's sweep, warp size upward)
DEFAULT_THRESHOLDS = (32, 64, 128, 256)


def sweep(
    workload: NestedLoopWorkload,
    config: DeviceConfig,
    templates: Iterable[str] = LOAD_BALANCING_TEMPLATES,
    thresholds: Iterable[int] = DEFAULT_THRESHOLDS,
    base_params: TemplateParams | None = None,
) -> list[TemplateRun]:
    """Run every (template, threshold) combination; returns all runs."""
    base_params = base_params or TemplateParams()
    runs: list[TemplateRun] = []
    for name in templates:
        template = resolve(name, kind="nested-loop")
        if (template.uses_dynamic_parallelism
                and not supports_dynamic_parallelism(config)):
            continue
        for lbt in thresholds:
            params = base_params.replace(lb_threshold=int(lbt))
            runs.append(template.run(workload, config, params))
    if not runs:
        raise PlanError(
            "no (template, threshold) combination is runnable on "
            f"{config.name}"
        )
    return runs


def autotune(
    workload: NestedLoopWorkload,
    config: DeviceConfig,
    templates: Iterable[str] = LOAD_BALANCING_TEMPLATES,
    thresholds: Iterable[int] = DEFAULT_THRESHOLDS,
    base_params: TemplateParams | None = None,
) -> TemplateRun:
    """The fastest (template, threshold) combination for a workload."""
    runs = sweep(workload, config, templates, thresholds, base_params)
    return min(runs, key=lambda run: run.time_ms)
