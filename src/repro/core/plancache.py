"""Content-addressed cache of built template plans.

Building a plan — the :class:`~repro.gpusim.kernels.LaunchGraph` plus the
phase schedule a template derives for one workload — is the dominant cost
of the harness: a block-size sweep rebuilds megabyte-scale traces dozens of
times, and iterative artifact regeneration rebuilds the *same* plans on
every pass.  This module caches plans under a content hash of everything a
build depends on:

    (workload fingerprint, template name, plan-relevant params, device)

Workload fingerprints are blake2b digests of the trace arrays (see
``NestedLoopWorkload.fingerprint`` / ``RecursiveTreeWorkload.fingerprint``),
so two structurally identical workloads hit the same entry regardless of
object identity.  Templates declare which :class:`TemplateParams` fields
their plans actually read via ``PLAN_RELEVANT_PARAMS`` — a template whose
plan ignores ``lb_threshold`` keeps hitting the cache while a sweep varies
it.

Cached plans are shared, not copied: treat a :class:`LaunchGraph` obtained
through the cache as read-only (the executor and profiler already do).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "CacheStats",
    "PlanCache",
    "default_cache",
    "fingerprint_of",
    "set_plan_cache_enabled",
]


def fingerprint_of(workload) -> str:
    """Content fingerprint of any workload the templates accept.

    Thin dispatch over the workload's own (memoized) ``fingerprint()`` —
    the identity the plan cache and the serving layer's micro-batcher both
    key on.  Raises :class:`ConfigError` for objects with no fingerprint.
    """
    fingerprint = getattr(workload, "fingerprint", None)
    if fingerprint is None:
        raise ConfigError(
            f"{type(workload).__name__} has no fingerprint(); expected a "
            "NestedLoopWorkload or RecursiveTreeWorkload"
        )
    return fingerprint()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from the cache (0.0 with no probes)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        """Counters as a plain dict (for --profile output and BENCH json)."""
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4)}


class PlanCache:
    """LRU mapping from plan keys to built (graph, schedule) pairs.

    Keys are opaque hashable tuples assembled by the template ``run()``
    wrappers; the cache itself only provides bounded LRU storage plus
    counters.  ``maxsize`` bounds entries, not bytes — plans of paper-scale
    workloads run single-digit megabytes, so the default of 128 stays well
    under a gigabyte while covering a full sweep.
    """

    def __init__(self, maxsize: int = 128, enabled: bool = True) -> None:
        if maxsize <= 0:
            raise ConfigError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.enabled = enabled
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> object | None:
        """Return the cached plan for ``key``, or None (counts a miss)."""
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: tuple, plan: object) -> None:
        """Store a plan, evicting the least recently used entry if full."""
        if not self.enabled:
            return
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def keys(self) -> list[tuple]:
        """Stored keys, least recently used first (eviction order)."""
        return list(self._entries)

    def snapshot(self) -> dict:
        """Occupancy + counters as a plain dict (``service.stats()``,
        ``--profile`` output, BENCH json records)."""
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "enabled": self.enabled,
            **self.stats.snapshot(),
        }

    def clear(self, reset_stats: bool = False) -> None:
        """Drop all entries (optionally also the counters)."""
        self._entries.clear()
        if reset_stats:
            self.stats = CacheStats()


#: process-wide cache used by the template ``run()`` wrappers
_default = PlanCache()


def default_cache() -> PlanCache:
    """The process-wide plan cache."""
    return _default


def set_plan_cache_enabled(enabled: bool) -> None:
    """Toggle the process-wide cache (``--no-plan-cache`` style switches).

    Disabling drops stored entries **and** the hit/miss counters, so a
    subsequent re-enable starts genuinely cold: benchmark runs rely on
    the empty cache for a clean seed-path measurement, and ``--profile``
    / BENCH output relies on the zeroed counters — a "cold" cache must
    not report a nonzero hit rate inherited from before the toggle.
    """
    _default.enabled = enabled
    if not enabled:
        _default.clear(reset_stats=True)
