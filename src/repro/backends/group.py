"""Multi-device backend: shard workloads across N simulated devices.

:class:`DeviceGroup` owns N :class:`~repro.backends.sim.SimBackend`
members (identical device configs) and supports two modes of use:

* **Graph routing** (:meth:`DeviceGroup.submit`) — one launch graph goes
  to the least-loaded member, where load is the simulated busy time it
  has accumulated plus its in-flight submissions.  This is how the
  serving layer spreads independent batches over devices.
* **Sharded runs** (:func:`run_sharded`) — one workload is split by the
  planner in :mod:`repro.core.sharding`, each shard builds and executes
  its own plan on its member device (concurrently, on a thread pool —
  the simulator releases no locks but each shard run is pure Python +
  NumPy, so threads mainly overlap the per-shard executor passes), and
  the per-device results merge into one combined
  :class:`GroupExecutionResult` whose components stay inspectable.

Merge semantics mirror real concurrent devices: simulated time is the
**max** over members (they run in parallel), busy cycles / launch counts
/ profiler counters are **sums**, and the merged launch graph is the
concatenation of the shard graphs (parent links and stream ids offset
per shard) so profiling and inspection tools keep working unchanged.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.backends.base import Backend, BackendCapabilities, capabilities_of
from repro.backends.sim import SimBackend
from repro.errors import ConfigError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import ExecutionResult
from repro.gpusim.kernels import HOST, LaunchGraph, ProfileCounters

__all__ = ["DeviceGroup", "GroupExecutionResult", "run_sharded"]


@dataclass
class GroupExecutionResult(ExecutionResult):
    """Merged outcome of a multi-device run; per-device parts attached.

    Aggregate fields follow concurrent-execution semantics — ``cycles`` /
    ``time_ms`` are the slowest member (the group finishes when the last
    device does), ``sm_busy_cycles`` / ``sm_count`` / launch counts sum —
    so ``sm_utilization`` reads as busy cycles over the whole group's
    cycle budget for the run's duration.
    """

    #: per-member :class:`ExecutionResult`, indexed by device
    per_device: list[ExecutionResult] = field(default_factory=list)
    #: chunks executed on a non-home device (work-stealing runs only)
    steals: int = 0

    @property
    def n_devices(self) -> int:
        """Members that executed a shard."""
        return len(self.per_device)


class DeviceGroup(Backend):
    """N identical simulated devices behind one backend."""

    name = "group"

    def __init__(
        self,
        device: DeviceConfig = KEPLER_K20,
        n_devices: int = 2,
        *,
        engine: str | None = None,
        record_timeline: bool = False,
        steal_chunks: int = 0,
    ) -> None:
        if n_devices < 1:
            raise ConfigError(
                f"a DeviceGroup needs at least 1 device, got {n_devices}"
            )
        if steal_chunks < 0:
            raise ConfigError(
                f"steal_chunks cannot be negative, got {steal_chunks}"
            )
        self.members = [
            SimBackend(device, engine=engine,
                       record_timeline=record_timeline, device_index=i)
            for i in range(n_devices)
        ]
        self._capabilities = capabilities_of(device, devices=n_devices)
        self._lock = threading.Lock()
        self._inflight = [0] * n_devices
        #: work-stealing granularity of :func:`run_sharded`: 0 keeps the
        #: classic one-shard-per-device static split; K > 0 over-shards
        #: into ``n_devices * K`` chunks and lets idle devices steal
        #: unstarted chunks from stragglers (see docs/serving.md)
        self.steal_chunks = steal_chunks
        #: chunks that ran on a non-home device in sharded runs
        self.steals = 0
        #: complete() calls that would have driven an in-flight counter
        #: negative — a double release.  The counter is clamped so load
        #: routing survives, but the underflow is counted (and asserted
        #: zero in the multi-device smoke) instead of silently masked.
        self.release_underflows = 0

    @property
    def device(self) -> DeviceConfig:
        return self.members[0].device

    @property
    def capabilities(self) -> BackendCapabilities:
        return self._capabilities

    @property
    def engine(self) -> str | None:
        return self.members[0].engine

    @property
    def record_timeline(self) -> bool:
        return self.members[0].record_timeline

    # ------------------------------------------------------------- routing
    def least_loaded(self) -> int:
        """Member index with the least accumulated + in-flight load."""
        with self._lock:
            return self._pick_locked()

    def _pick_locked(self) -> int:
        avg = (sum(m.busy_ms for m in self.members)
               / len(self.members)) or 1.0
        best, best_load = 0, float("inf")
        for i, member in enumerate(self.members):
            load = member.busy_ms + self._inflight[i] * avg
            if load < best_load:
                best, best_load = i, load
        return best

    def acquire(self) -> int:
        """Reserve the least-loaded member for an external execution.

        The serving layer routes pool batches here: the batch runs in a
        worker process (the member's executor never sees the graph), so
        the reservation tracks expected load until :meth:`complete`.
        """
        with self._lock:
            i = self._pick_locked()
            self._inflight[i] += 1
            return i

    def complete(self, index: int, busy_ms: float = 0.0) -> None:
        """Release a reservation, crediting the simulated time it ran.

        A release without a matching :meth:`acquire` (a double release)
        is a caller bug: the counter stays clamped at zero so routing
        keeps working, but the underflow is counted on
        ``release_underflows`` and the ``device.release_underflow`` obs
        counter rather than silently masked.
        """
        with self._lock:
            if self._inflight[index] <= 0:
                self.release_underflows += 1
                obs.add_counter("device.release_underflow")
                obs.instant("device.release_underflow", device=index)
            else:
                self._inflight[index] -= 1
            self.members[index].busy_ms += busy_ms

    # ------------------------------------------------------- elasticity
    def add_member(self) -> int:
        """Grow the group by one device; returns the new member's index.

        The autoscaling path of the serving tier: a new idle member
        immediately attracts routing (least-loaded picks it first).
        """
        with self._lock:
            index = len(self.members)
            first = self.members[0]
            self.members.append(
                SimBackend(first.device, engine=first.engine,
                           record_timeline=first.record_timeline,
                           device_index=index)
            )
            self._inflight.append(0)
            self._capabilities = capabilities_of(
                first.device, devices=len(self.members)
            )
            return index

    def remove_member(self) -> bool:
        """Shrink the group by its last member, only when that member is
        idle (no in-flight reservations); returns whether it shrank.

        Only the *last* member is ever removed so indices handed out by
        :meth:`acquire` stay valid — a device with reservations can never
        disappear underneath a ``complete()``.
        """
        with self._lock:
            if len(self.members) <= 1 or self._inflight[-1] != 0:
                return False
            self.members.pop()
            self._inflight.pop()
            self._capabilities = capabilities_of(
                self.members[0].device, devices=len(self.members)
            )
            return True

    def submit(self, graph: LaunchGraph) -> ExecutionResult:
        """Execute one graph on the least-loaded member."""
        with self._lock:
            i = self._pick_locked()
            self._inflight[i] += 1
        try:
            return self.members[i].submit(graph)
        finally:
            with self._lock:
                self._inflight[i] -= 1

    def submit_many(self, graphs: list[LaunchGraph]) -> list[ExecutionResult]:
        """Spread a batch over members, fusing each member's share.

        Graphs are dealt greedily: each graph goes to the member that is
        least loaded *including the graphs already dealt this batch*, then
        every member executes its share as one fused pass.  Results come
        back in input order; each graph's result is bit-identical to a
        standalone :meth:`submit` on that member.
        """
        if not graphs:
            return []
        with self._lock:
            avg = (sum(m.busy_ms for m in self.members)
                   / len(self.members)) or 1.0
            load = [
                m.busy_ms + self._inflight[i] * avg
                for i, m in enumerate(self.members)
            ]
            shares: list[list[int]] = [[] for _ in self.members]
            for pos in range(len(graphs)):
                i = min(range(len(self.members)), key=lambda j: (load[j], j))
                shares[i].append(pos)
                load[i] += avg
                self._inflight[i] += 1
        results: list[ExecutionResult | None] = [None] * len(graphs)
        try:
            for i, share in enumerate(shares):
                if not share:
                    continue
                member_results = self.members[i].submit_many(
                    [graphs[pos] for pos in share]
                )
                for pos, result in zip(share, member_results):
                    results[pos] = result
        finally:
            with self._lock:
                for i, share in enumerate(shares):
                    self._inflight[i] -= len(share)
        return results

    def snapshot(self) -> dict:
        """Per-device load counters (for service/bench stats)."""
        with self._lock:
            return {
                "devices": len(self.members),
                "steal_chunks": self.steal_chunks,
                "steals": self.steals,
                "release_underflows": self.release_underflows,
                "per_device": [
                    {
                        "index": i,
                        "busy_ms": m.busy_ms,
                        "submissions": m.submissions,
                        "inflight": self._inflight[i],
                    }
                    for i, m in enumerate(self.members)
                ],
            }


# ------------------------------------------------------------------ merging

def _merge_graphs(graphs: list[LaunchGraph]) -> LaunchGraph:
    """Concatenate shard graphs, keeping parent links and streams disjoint.

    The merged graph exists for inspection and profiling (occupancy
    weighting, launch listings) — it is never re-executed, the per-shard
    results already are the execution.
    """
    merged = LaunchGraph()
    base = 0
    stream_base = 0
    for graph in graphs:
        max_stream = 0
        for launch in graph.launches:
            if launch.parent == HOST:
                max_stream = max(max_stream, launch.stream)
                merged.add(replace(launch, stream=launch.stream + stream_base))
            else:
                merged.add(replace(launch, parent=launch.parent + base))
        base += len(graph.launches)
        stream_base += max_stream + 1
    return merged


def _merge_results(results: list[ExecutionResult]) -> GroupExecutionResult:
    """Fold per-device results into group (concurrent-devices) totals."""
    counters = ProfileCounters()
    for r in results:
        counters.merge(r.counters)
    records = []
    for r in results:
        records.extend(r.records)
    return GroupExecutionResult(
        cycles=max(r.cycles for r in results),
        time_ms=max(r.time_ms for r in results),
        counters=counters,
        sm_busy_cycles=sum(r.sm_busy_cycles for r in results),
        sm_count=sum(r.sm_count for r in results),
        n_launches=sum(r.n_launches for r in results),
        n_device_launches=sum(r.n_device_launches for r in results),
        pool_overflows=sum(r.pool_overflows for r in results),
        records=records,
        per_device=list(results),
    )


def _merge_serial(results: list[ExecutionResult]) -> ExecutionResult:
    """Fold chunk results that ran back-to-back on *one* device.

    The serial dual of :func:`_merge_results`: time and cycles **sum**
    (the device ran the chunks one after another), ``sm_count`` stays the
    single device's SM count.
    """
    counters = ProfileCounters()
    records = []
    for r in results:
        counters.merge(r.counters)
        records.extend(r.records)
    return ExecutionResult(
        cycles=sum(r.cycles for r in results),
        time_ms=sum(r.time_ms for r in results),
        counters=counters,
        sm_busy_cycles=sum(r.sm_busy_cycles for r in results),
        sm_count=results[0].sm_count,
        n_launches=sum(r.n_launches for r in results),
        n_device_launches=sum(r.n_device_launches for r in results),
        pool_overflows=sum(r.pool_overflows for r in results),
        records=records,
    )


def _steal_schedule(shards, runs, n: int):
    """Deterministic greedy work-stealing schedule over measured chunks.

    Chunks are dealt round-robin to home devices; the simulation then
    replays list scheduling — the earliest-finishing device takes its own
    next chunk, or, when its own list is empty, *steals the tail chunk*
    of the device with the most unstarted work left.  Identical member
    devices make a chunk's simulated time placement-independent, so the
    schedule can be computed exactly from the measured per-chunk times.

    Returns ``(assigned, clock, steals)``: per-device chunk lists, the
    per-device finish times, and how many chunks ran away from home.
    """
    from collections import deque

    own = [deque() for _ in range(n)]
    for shard, run in zip(shards, runs):
        own[shard.index % n].append((shard, run))
    remaining = [
        sum(run.result.time_ms for _, run in queue) for queue in own
    ]
    assigned = [[] for _ in range(n)]
    clock = [0.0] * n
    steals = 0
    for _ in range(len(shards)):
        device = min(range(n), key=lambda i: (clock[i], i))
        if own[device]:
            shard, run = own[device].popleft()
            home = device
        else:
            home = max(
                (i for i in range(n) if own[i]),
                key=lambda i: (remaining[i], -i),
            )
            shard, run = own[home].pop()
            steals += 1
        remaining[home] -= run.result.time_ms
        assigned[device].append((shard, run))
        clock[device] += run.result.time_ms
    return assigned, clock, steals


def _run_stolen(template, workload, group: DeviceGroup,
                config: DeviceConfig, shards, runs):
    """Merge over-sharded chunk runs under a work-stealing schedule."""
    from repro.core.base import TemplateRun, check_schedule
    from repro.gpusim.profiler import profile

    n = len(group.members)
    assigned, clock, steals = _steal_schedule(shards, runs, n)
    group.steals += steals
    obs.add_counter("device.steals", steals)
    per_device = []
    for device, chunk_runs in enumerate(assigned):
        if not chunk_runs:
            continue
        serial = _merge_serial([run.result for _, run in chunk_runs])
        per_device.append(serial)
        member = group.members[device]
        member.busy_ms += serial.time_ms
        member.submissions += len(chunk_runs)
        for shard, _ in chunk_runs:
            if shard.kind == "nested-loop":
                obs.add_counter(f"device.{device}.outer", shard.n_members)
                obs.add_counter(f"device.{device}.pairs",
                                shard.workload.n_pairs)
            else:
                obs.add_counter(f"device.{device}.nodes", shard.n_members)
    result = _merge_results(per_device)
    result.steals = steals
    graph = _merge_graphs([r.graph for r in runs])
    if shards[0].kind == "nested-loop":
        schedule = _merge_schedules(shards, runs)
        check_schedule(schedule, workload.outer_size)
    else:
        schedule = {"nodes": np.arange(workload.tree.n_nodes)}
    metrics = profile(graph, result, config)
    return TemplateRun(
        template=template.name,
        workload=workload.name,
        graph=graph,
        result=result,
        metrics=metrics,
        schedule=schedule,
        params=runs[0].params,
        device_runs=runs,
    )


def _merge_schedules(shards, runs) -> dict[str, np.ndarray]:
    """Map shard-local schedules back to original outer-iteration ids."""
    merged: dict[str, list[np.ndarray]] = {}
    for shard, run in zip(shards, runs):
        for phase, local_ids in run.schedule.items():
            local_ids = np.asarray(local_ids, dtype=np.int64)
            merged.setdefault(phase, []).append(shard.members[local_ids])
    return {
        phase: np.sort(np.concatenate(parts))
        for phase, parts in merged.items()
    }


def run_sharded(template, workload, group: DeviceGroup,
                config: DeviceConfig, params):
    """Run one workload sharded across a device group; merge the results.

    Each shard goes through the full single-device ``template.run`` path
    on its member backend — plan cache, disk artifact cache and run tier
    all apply per shard (shard fingerprints keep their keys disjoint from
    whole-workload keys).  Returns a merged
    :class:`~repro.core.base.TemplateRun` with ``device_runs`` holding
    the per-shard runs, or ``None`` when the workload cannot shard
    (caller falls back to single-device execution).
    """
    from repro.core.base import check_schedule
    from repro.core.sharding import shard_workload
    from repro.gpusim.profiler import profile

    n = len(group.members)
    if group.steal_chunks > 0 and n > 1:
        # work-stealing mode: over-shard into n*K chunks so a straggler
        # device's unstarted chunks can migrate to idle devices.  Chunk
        # timing is placement-independent (identical members), so chunks
        # execute concurrently on scratch backends and the steal schedule
        # is replayed deterministically from the measured times.
        chunks = shard_workload(workload, n * group.steal_chunks)
        if chunks is not None and len(chunks) > n:

            def run_chunk(shard):
                scratch = SimBackend(group.device, engine=group.engine)
                with obs.span("device.chunk", chunk=shard.index,
                              template=template.name,
                              workload=shard.workload.name):
                    return template.run(shard.workload, config, params,
                                        executor=scratch)

            with ThreadPoolExecutor(max_workers=n) as pool:
                chunk_runs = list(pool.map(run_chunk, chunks))
            return _run_stolen(template, workload, group, config,
                               chunks, chunk_runs)

    shards = shard_workload(workload, n)
    if shards is None:
        return None

    def run_one(shard):
        member = group.members[shard.index]
        with obs.span("device.run", device=shard.index,
                      template=template.name, workload=shard.workload.name):
            run = template.run(shard.workload, config, params,
                               executor=member)
        if shard.kind == "nested-loop":
            obs.add_counter(f"device.{shard.index}.outer", shard.n_members)
            obs.add_counter(f"device.{shard.index}.pairs",
                            shard.workload.n_pairs)
        else:
            obs.add_counter(f"device.{shard.index}.nodes", shard.n_members)
        return run

    if len(shards) == 1:
        runs = [run_one(shards[0])]
    else:
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            runs = list(pool.map(run_one, shards))

    result = _merge_results([r.result for r in runs])
    graph = _merge_graphs([r.graph for r in runs])
    if shards[0].kind == "nested-loop":
        schedule = _merge_schedules(shards, runs)
        check_schedule(schedule, workload.outer_size)
    else:
        schedule = {"nodes": np.arange(workload.tree.n_nodes)}
    metrics = profile(graph, result, config)
    from repro.core.base import TemplateRun

    return TemplateRun(
        template=template.name,
        workload=workload.name,
        graph=graph,
        result=result,
        metrics=metrics,
        schedule=schedule,
        params=runs[0].params,
        device_runs=runs,
    )
