"""The backend protocol: where launch graphs go to execute.

A :class:`Backend` is the seam between the template layer (which decides
*how* an irregular loop or recursion maps onto kernels) and the execution
substrate (which decides *what it costs to run them*).  Templates build a
:class:`~repro.gpusim.kernels.LaunchGraph`; backends accept one through
:meth:`Backend.submit` and return an
:class:`~repro.gpusim.executor.ExecutionResult`.

Separating the two follows the same decomposition Atos and the GPU
load-balancing programming-model literature make: scheduling policy
(templates) above, workload partitioning and device placement (backends)
below.  Three backends ship:

* :class:`~repro.backends.sim.SimBackend` — one simulated device; wraps
  the existing :class:`~repro.gpusim.executor.GpuExecutor` so every
  pre-backend behavior (engines, timelines, caches) is preserved
  bit-for-bit.
* :class:`~repro.backends.group.DeviceGroup` — N simulated devices;
  shards whole workloads across members (template runs) and routes
  individual graphs to the least-loaded member (serving batches).
* :class:`~repro.queue.backend.QueueBackend` — one simulated device
  running the Atos-style persistent-worker task-queue model instead of
  bulk-synchronous launches (``capabilities.persistent_queue``; see
  ``docs/taskqueue.md``).

Capabilities are advertised, not probed: :class:`BackendCapabilities`
carries the flags a template or scheduler needs before committing a plan
— dynamic-parallelism support and the shared-memory budget per block —
plus the device count a group exposes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.gpusim.config import DeviceConfig, supports_dynamic_parallelism
from repro.gpusim.executor import ExecutionResult
from repro.gpusim.kernels import LaunchGraph

__all__ = ["Backend", "BackendCapabilities", "capabilities_of"]


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do, declared up front.

    Templates that require a capability (nested launches, a shared-memory
    staging buffer) can check here before building a plan instead of
    failing inside the executor.
    """

    #: whether nested (device-side) kernel launches are supported
    dynamic_parallelism: bool
    #: shared-memory budget one block may allocate (bytes)
    shared_mem_per_block: int
    #: simulated devices behind this backend (1 for a single device)
    devices: int = 1
    #: whether execution is persistent-worker task queues instead of
    #: bulk-synchronous launches (see ``repro.queue``); queue backends
    #: cannot honor templates that need launch-wide barrier semantics
    persistent_queue: bool = False

    def supports(self, template) -> bool:
        """Whether ``template`` can run here (its declared needs are met)."""
        if (getattr(template, "uses_dynamic_parallelism", False)
                and not self.dynamic_parallelism):
            return False
        if (self.persistent_queue
                and not getattr(template, "queue_compatible", True)):
            return False
        return True


def capabilities_of(config: DeviceConfig, devices: int = 1) -> BackendCapabilities:
    """Capability flags of (a group of) devices described by ``config``."""
    return BackendCapabilities(
        dynamic_parallelism=supports_dynamic_parallelism(config),
        shared_mem_per_block=config.shared_mem_per_block,
        devices=devices,
    )


class Backend(ABC):
    """Executes launch graphs; the template->execution seam.

    Implementations expose the attributes the template ``run()`` wrappers
    key their caches on — ``device``, ``engine``, ``record_timeline`` —
    so swapping the backend never silently changes a cache key.
    """

    #: backend identifier (used in fingerprints and reprs)
    name: str = "abstract"

    @property
    @abstractmethod
    def device(self) -> DeviceConfig:
        """The (member) device configuration this backend simulates."""

    @property
    @abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Declared capability flags (dynamic parallelism, smem, devices)."""

    @property
    def engine(self) -> str | None:
        """Forced executor engine, or None for the process default."""
        return None

    @property
    def record_timeline(self) -> bool:
        """Whether submitted runs keep per-launch timing records."""
        return False

    @property
    def run_cache_tag(self) -> str | None:
        """Extra disk ``run``-tier key component, or None for the classic
        layout.

        The BSP backends return None so pre-queue run keys stay
        byte-identical; execution models whose results differ from the
        plain simulator (the queue backend) return a repr-stable tag.
        """
        return None

    @property
    def n_devices(self) -> int:
        """Devices behind this backend (shorthand for capabilities)."""
        return self.capabilities.devices

    @abstractmethod
    def submit(self, graph: LaunchGraph) -> ExecutionResult:
        """Execute one launch graph and return its timing + counters."""

    def submit_many(self, graphs: list[LaunchGraph]) -> list[ExecutionResult]:
        """Execute a batch of launch graphs; results align with ``graphs``.

        The default runs each graph through :meth:`submit` sequentially.
        Backends that can amortize work across a batch (one fused event
        loop, one device pass) override this — results must stay
        bit-identical to the sequential path.
        """
        return [self.submit(graph) for graph in graphs]

    def fingerprint(self) -> str:
        """Repr-stable identity for cache keys incorporating the backend.

        Single-device backends intentionally fingerprint as the bare
        device so plan/run cache keys are unchanged from the pre-backend
        layout (``devices=1`` stays bit-for-bit compatible).
        """
        device_fp = self.device.fingerprint()
        if self.n_devices == 1:
            return device_fp
        return f"{device_fp}x{self.n_devices}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name} "
                f"device={self.device.name!r} devices={self.n_devices}>")
