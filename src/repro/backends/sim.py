"""Single simulated device: :class:`GpuExecutor` behind the backend seam.

:class:`SimBackend` is a thin adapter — it owns (or wraps) one
:class:`~repro.gpusim.executor.GpuExecutor` and forwards :meth:`submit`
to it.  Its job is fidelity: everything the template layer used to read
off the executor (engine, ``record_timeline``, the device config) is
exposed unchanged, so plan/run cache keys and results for ``devices=1``
are bit-for-bit identical to the pre-backend code path.

When the backend is a member of a :class:`~repro.backends.group.DeviceGroup`
it carries a ``device_index`` and stamps per-device obs counters
(``device.<i>.launches`` / ``device.<i>.busy_cycles``) on every submit;
standalone backends leave the obs stream untouched.
"""

from __future__ import annotations

from repro import obs
from repro.backends.base import Backend, BackendCapabilities, capabilities_of
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import ExecutionResult, GpuExecutor
from repro.gpusim.kernels import LaunchGraph

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """One simulated device; wraps a :class:`GpuExecutor`.

    Parameters
    ----------
    device:
        device configuration to simulate (default Kepler K20).
    engine:
        executor engine override, or ``None`` for the process default.
    record_timeline:
        keep per-launch timing records on every submit.
    executor:
        an existing executor to wrap instead of constructing one — used
        by the template layer to preserve caller-supplied executors
        exactly (their engine/timeline flags decide the cache keys).
    device_index:
        position within a :class:`DeviceGroup`, or ``None`` when
        standalone.  Indexed backends emit ``device.<i>.*`` obs counters.
    """

    name = "sim"

    def __init__(
        self,
        device: DeviceConfig = KEPLER_K20,
        *,
        engine: str | None = None,
        record_timeline: bool = False,
        executor: GpuExecutor | None = None,
        device_index: int | None = None,
    ) -> None:
        if executor is not None:
            self.executor = executor
        else:
            self.executor = GpuExecutor(
                device, record_timeline=record_timeline, engine=engine
            )
        self.device_index = device_index
        self._capabilities = capabilities_of(self.executor.config)
        #: simulated busy time submitted through this backend (ms) — the
        #: load signal a DeviceGroup routes on
        self.busy_ms = 0.0
        #: graphs submitted through this backend
        self.submissions = 0

    @classmethod
    def from_executor(cls, executor: GpuExecutor,
                      device_index: int | None = None) -> "SimBackend":
        """Wrap an existing executor without changing any of its state."""
        return cls(executor.config, executor=executor,
                   device_index=device_index)

    @property
    def device(self) -> DeviceConfig:
        return self.executor.config

    @property
    def capabilities(self) -> BackendCapabilities:
        return self._capabilities

    @property
    def engine(self) -> str | None:
        return self.executor.engine

    @property
    def record_timeline(self) -> bool:
        return self.executor.record_timeline

    def submit(self, graph: LaunchGraph) -> ExecutionResult:
        result = self.executor.run(graph)
        self._account(result)
        return result

    def submit_many(self, graphs: list[LaunchGraph]) -> list[ExecutionResult]:
        """Execute ``graphs`` as one fused executor pass (bit-exact)."""
        results = self.executor.run_many(graphs)
        for result in results:
            self._account(result)
        return results

    def _account(self, result: ExecutionResult) -> None:
        self.busy_ms += result.time_ms
        self.submissions += 1
        if self.device_index is not None:
            i = self.device_index
            obs.add_counter(f"device.{i}.launches", result.n_launches)
            obs.add_counter(f"device.{i}.busy_cycles", result.sm_busy_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        idx = "" if self.device_index is None else f" index={self.device_index}"
        return (f"<SimBackend device={self.device.name!r}"
                f" engine={self.engine!r}{idx}>")
