"""``repro.backends`` — execution backends behind the template layer.

The template ``run()`` wrappers, the apps, the service and the bench
runner all obtain their execution substrate here instead of constructing
:class:`~repro.gpusim.executor.GpuExecutor` objects inline.  That one
seam is what multi-device execution threads through: set the process
default to N devices (:func:`set_default_devices`, driven by
``repro.run(..., devices=N)`` and ``python -m repro.bench --devices N``)
and every template run in the process shards across a
:class:`~repro.backends.group.DeviceGroup`; leave it at 1 and everything
behaves — bit for bit, cache keys included — exactly as the
executor-inline code did.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendCapabilities, capabilities_of
from repro.backends.group import DeviceGroup, GroupExecutionResult, run_sharded
from repro.backends.sim import SimBackend
from repro.errors import ConfigError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import GpuExecutor

__all__ = [
    "Backend",
    "BackendCapabilities",
    "DeviceGroup",
    "GroupExecutionResult",
    "SimBackend",
    "backend_for",
    "capabilities_of",
    "coerce_backend",
    "get_default_devices",
    "run_sharded",
    "set_default_devices",
]

_default_devices = 1

#: memoized device groups, keyed on (device fingerprint, n, engine) —
#: groups are stateful (load counters), so reusing one per topology keeps
#: least-loaded routing meaningful across runs in the same process
_groups: dict[tuple, DeviceGroup] = {}


def set_default_devices(n: int) -> None:
    """Select the device count used when no backend/executor is passed.

    The multi-device analogue of
    :func:`~repro.gpusim.executor.set_default_engine`: the bench runner's
    ``--devices`` flag routes through here so every template run in a
    worker process (apps, experiments) shards the same way.
    """
    global _default_devices
    if n < 1:
        raise ConfigError(f"device count must be >= 1, got {n}")
    _default_devices = int(n)


def get_default_devices() -> int:
    """The device count currently used by default (1 unless overridden)."""
    return _default_devices


def backend_for(
    config: DeviceConfig = KEPLER_K20,
    devices: int | None = None,
    *,
    engine: str | None = None,
    record_timeline: bool = False,
) -> Backend:
    """A backend for ``devices`` copies of ``config`` (default topology).

    One device returns a fresh :class:`SimBackend` (stateless, like the
    inline executors it replaces); more return the process's memoized
    :class:`DeviceGroup` for that topology.
    """
    n = _default_devices if devices is None else devices
    if n < 1:
        raise ConfigError(f"device count must be >= 1, got {n}")
    if n == 1:
        return SimBackend(config, engine=engine,
                          record_timeline=record_timeline)
    if record_timeline:
        return DeviceGroup(config, n, engine=engine, record_timeline=True)
    key = (config.fingerprint(), n, engine)
    group = _groups.get(key)
    if group is None:
        group = DeviceGroup(config, n, engine=engine)
        if len(_groups) >= 32:
            _groups.pop(next(iter(_groups)))
        _groups[key] = group
    return group


def coerce_backend(
    backend: Backend | None,
    executor,
    config: DeviceConfig,
) -> Backend:
    """Resolve what a template run executes on.

    Precedence: an explicit ``backend``; then ``executor`` (a legacy
    :class:`GpuExecutor` — wrapped without touching its engine/timeline
    flags, so caller-supplied executors keep their exact semantics and
    cache keys — or already a backend); else the process default
    topology for ``config``.
    """
    if backend is not None:
        if not isinstance(backend, Backend):
            raise ConfigError(
                f"backend must be a repro.backends.Backend, "
                f"got {type(backend).__name__}"
            )
        return backend
    if executor is not None:
        if isinstance(executor, Backend):
            return executor
        if isinstance(executor, GpuExecutor):
            return SimBackend.from_executor(executor)
        raise ConfigError(
            f"executor must be a GpuExecutor or Backend, "
            f"got {type(executor).__name__}"
        )
    return backend_for(config)
