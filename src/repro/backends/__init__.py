"""``repro.backends`` — execution backends behind the template layer.

The template ``run()`` wrappers, the apps, the service and the bench
runner all obtain their execution substrate here instead of constructing
:class:`~repro.gpusim.executor.GpuExecutor` objects inline.  That one
seam is what multi-device execution threads through: set the process
default to N devices (:func:`set_default_devices`, driven by
``repro.run(..., devices=N)`` and ``python -m repro.bench --devices N``)
and every template run in the process shards across a
:class:`~repro.backends.group.DeviceGroup`; leave it at 1 and everything
behaves — bit for bit, cache keys included — exactly as the
executor-inline code did.

The same seam selects the *execution model*: ``backend_for("queue")`` (or
:func:`set_default_backend`, driven by ``repro.run(..., backend="queue")``
and ``--backend queue``) returns the Atos-style persistent task-queue
backend (:mod:`repro.queue`) instead of the bulk-synchronous simulator.
Templates that need launch-wide barrier semantics
(``queue_compatible = False``) are routed back to a BSP backend by
:func:`effective_backend` — capability-aware fallback, counted on the
``queue.fallbacks`` obs counter.
"""

from __future__ import annotations

from repro import obs
from repro.backends.base import Backend, BackendCapabilities, capabilities_of
from repro.backends.group import DeviceGroup, GroupExecutionResult, run_sharded
from repro.backends.sim import SimBackend
from repro.errors import ConfigError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import GpuExecutor

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendCapabilities",
    "DeviceGroup",
    "GroupExecutionResult",
    "SimBackend",
    "backend_for",
    "capabilities_of",
    "coerce_backend",
    "effective_backend",
    "get_default_backend",
    "get_default_devices",
    "resolve_backend",
    "run_sharded",
    "set_default_backend",
    "set_default_devices",
]

#: execution models a backend kind string may name
BACKENDS = ("sim", "queue")

_default_devices = 1
_default_backend = "sim"

#: memoized device groups, keyed on (device fingerprint, n, engine) —
#: groups are stateful (load counters), so reusing one per topology keeps
#: least-loaded routing meaningful across runs in the same process
_groups: dict[tuple, DeviceGroup] = {}


def resolve_backend(kind: str | None, *, error=ConfigError) -> str | None:
    """Validate a backend kind; returns it unchanged (None passes through).

    The backend analogue of
    :func:`~repro.gpusim.executor.resolve_engine`: one shared check with
    one message, so the facade, the service and the bench runner reject
    unknown backends identically.
    """
    if kind is not None and kind not in BACKENDS:
        raise error(f"unknown backend {kind!r}; known: {', '.join(BACKENDS)}")
    return kind


def set_default_backend(kind: str) -> None:
    """Select the execution model used when no backend is passed.

    Mirrors :func:`set_default_devices`: the bench runner's ``--backend``
    flag routes through here so every template run in a worker process
    executes on the same model.
    """
    global _default_backend
    resolve_backend(kind)
    _default_backend = kind


def get_default_backend() -> str:
    """The backend kind currently used by default (``"sim"`` unless set)."""
    return _default_backend


def set_default_devices(n: int) -> None:
    """Select the device count used when no backend/executor is passed.

    The multi-device analogue of
    :func:`~repro.gpusim.executor.set_default_engine`: the bench runner's
    ``--devices`` flag routes through here so every template run in a
    worker process (apps, experiments) shards the same way.
    """
    global _default_devices
    if n < 1:
        raise ConfigError(f"device count must be >= 1, got {n}")
    _default_devices = int(n)


def get_default_devices() -> int:
    """The device count currently used by default (1 unless overridden)."""
    return _default_devices


def backend_for(
    config: DeviceConfig | str = KEPLER_K20,
    devices: int | None = None,
    *,
    engine: str | None = None,
    record_timeline: bool = False,
    kind: str | None = None,
    steal_chunks: int = 0,
) -> Backend:
    """A backend for ``devices`` copies of ``config`` (default topology).

    ``kind`` selects the execution model (``"sim"`` or ``"queue"``;
    defaults to the process default).  As a shorthand the kind may be
    passed positionally in place of the config — ``backend_for("queue")``
    — which uses the default device.

    One sim device returns a fresh :class:`SimBackend` (stateless, like
    the inline executors it replaces); more return the process's memoized
    :class:`DeviceGroup` for that topology.  ``steal_chunks`` selects the
    group's work-stealing granularity for sharded runs (0 — the default —
    keeps the classic static one-shard-per-device split) and is part of
    the memo key, so static and stealing groups never alias.  The queue
    model is single-device: asking for a queue backend over several
    devices is an error rather than a silently different topology.
    """
    if isinstance(config, str):
        if kind is not None:
            raise ConfigError("backend kind given twice")
        kind, config = config, KEPLER_K20
    kind = resolve_backend(kind) or _default_backend
    n = _default_devices if devices is None else devices
    if n < 1:
        raise ConfigError(f"device count must be >= 1, got {n}")
    if kind == "queue":
        if n > 1:
            raise ConfigError(
                f"the queue backend is single-device (per-device queues); "
                f"got devices={n}"
            )
        from repro.queue.backend import QueueBackend

        return QueueBackend(config, engine=engine)
    if n == 1:
        return SimBackend(config, engine=engine,
                          record_timeline=record_timeline)
    if record_timeline:
        return DeviceGroup(config, n, engine=engine, record_timeline=True,
                           steal_chunks=steal_chunks)
    key = (config.fingerprint(), n, engine, steal_chunks)
    group = _groups.get(key)
    if group is None:
        group = DeviceGroup(config, n, engine=engine,
                            steal_chunks=steal_chunks)
        if len(_groups) >= 32:
            _groups.pop(next(iter(_groups)))
        _groups[key] = group
    return group


def coerce_backend(
    backend: Backend | None,
    executor,
    config: DeviceConfig,
) -> Backend:
    """Resolve what a template run executes on.

    Precedence: an explicit ``backend``; then ``executor`` (a legacy
    :class:`GpuExecutor` — wrapped without touching its engine/timeline
    flags, so caller-supplied executors keep their exact semantics and
    cache keys — or already a backend); else the process default
    topology for ``config``.
    """
    if backend is not None:
        if not isinstance(backend, Backend):
            raise ConfigError(
                f"backend must be a repro.backends.Backend, "
                f"got {type(backend).__name__}"
            )
        return backend
    if executor is not None:
        if isinstance(executor, Backend):
            return executor
        if isinstance(executor, GpuExecutor):
            return SimBackend.from_executor(executor)
        raise ConfigError(
            f"executor must be a GpuExecutor or Backend, "
            f"got {type(executor).__name__}"
        )
    return backend_for(config)


def effective_backend(backend: Backend, template) -> Backend:
    """Capability-aware routing: fall back to BSP when the queue can't run
    ``template``.

    Queue-incompatible templates (``queue_compatible = False``, e.g. the
    shared-memory delayed buffer, whose staging depends on launch-wide
    two-phase barrier semantics) execute on a plain :class:`SimBackend`
    over the same device and engine.  Every fallback bumps the
    ``queue.fallbacks`` obs counter so routing decisions stay observable.
    Non-queue capability gaps (dynamic parallelism) keep their existing
    loud failure inside the template build.
    """
    caps = backend.capabilities
    if not caps.persistent_queue or caps.supports(template):
        return backend
    if obs.enabled():
        obs.add_counter("queue.fallbacks")
        obs.instant("queue.fallback", template=template.name)
    return SimBackend(backend.device, engine=backend.engine)
