"""Chrome-trace export and validation.

The exported object follows the Trace Event Format's JSON-object form
(``{"traceEvents": [...]}``), loadable in ``chrome://tracing`` and
Perfetto.  Two process tracks appear:

* the real process(es) — harness wall-clock spans, one thread row per
  recording thread (event loop, ``asyncio.to_thread`` workers, bench
  pool workers);
* a synthetic **simulated-device** process (:data:`SIM_PID`) — per-kernel
  execution on the simulated GPU clock, host-launch and device-launch
  (dynamic parallelism) rows separated.

Wall-clock timestamps are microseconds since the tracer epoch; simulated
timestamps are microseconds of *simulated* time since launch-graph start.
The tracks share one viewer but not one clock — compare durations within
a track, not across tracks.
"""

from __future__ import annotations

import json

__all__ = [
    "SIM_PID",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: synthetic pid carrying the simulated-device track (real pids are
#: process ids, far below this)
SIM_PID = 1_000_000_000


def chrome_trace(tracer) -> dict:
    """Render a :class:`~repro.obs.tracer.Tracer` as a Chrome trace."""
    payload = tracer.export_events()
    events: list[dict] = []
    tid_ids: dict[tuple[int, str], int] = {}

    def tid_for(pid: int, name: str) -> int:
        key = (pid, name)
        tid = tid_ids.get(key)
        if tid is None:
            tid = len(tid_ids) + 1
            tid_ids[key] = tid
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": name},
            })
        return tid

    pids_seen: set[int] = set()
    for ev in payload["events"]:
        pid = ev["pid"]
        if pid not in pids_seen:
            pids_seen.add(pid)
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"harness (pid {pid})"},
            })
        args = dict(ev["args"])
        if ev.get("parent"):
            args["parent"] = ev["parent"]
        out = {
            "name": ev["name"],
            "ph": ev["ph"],
            "cat": "harness",
            "ts": round(ev["ts_us"], 3),
            "pid": pid,
            "tid": tid_for(pid, ev["tid"]),
            "args": args,
        }
        if ev["ph"] == "X":
            out["dur"] = round(ev["dur_us"], 3)
        else:
            out["s"] = "t"  # thread-scoped instant
        events.append(out)

    if payload["sim_events"]:
        events.append({
            "ph": "M", "name": "process_name", "pid": SIM_PID, "tid": 0,
            "args": {"name": "simulated-device"},
        })
    for ev in payload["sim_events"]:
        events.append({
            "name": ev["name"],
            "ph": "X",
            "cat": "sim",
            "ts": round(ev["ts_us"], 3),
            "dur": round(ev["dur_us"], 3),
            "pid": SIM_PID,
            "tid": tid_for(SIM_PID, f"sim:{ev['track']}"),
            "args": dict(ev["args"]),
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "counters": payload["counters"],
        },
    }


def validate_chrome_trace(trace: dict, required_names: tuple = ()) -> int:
    """Schema-check a Chrome trace; returns the non-metadata event count.

    Raises :class:`ValueError` naming the first problem: wrong top-level
    shape, a malformed event (missing/ill-typed ``name``/``ph``/``ts``,
    an ``X`` event without a non-negative numeric ``dur``), or a required
    span name with no recorded event.
    """
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    seen: set[str] = set()
    count = 0
    for i, ev in enumerate(trace["traceEvents"]):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        name, ph = ev.get("name"), ev.get("ph")
        if not isinstance(name, str) or not name:
            raise ValueError(f"traceEvents[{i}] has no name")
        if ph not in ("X", "i", "M", "C", "B", "E"):
            raise ValueError(f"traceEvents[{i}] ({name}) has bad ph {ph!r}")
        if ph == "M":
            continue
        count += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            raise ValueError(f"traceEvents[{i}] ({name}) has no numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{i}] ({name}) X event needs dur >= 0"
                )
        seen.add(name)
    missing = [n for n in required_names if n not in seen]
    if missing:
        raise ValueError(
            f"trace has no events named: {', '.join(missing)} "
            f"(names present: {', '.join(sorted(seen)) or 'none'})"
        )
    if count == 0:
        raise ValueError("trace contains no events (only metadata)")
    return count


def write_chrome_trace(tracer, path) -> dict:
    """Export, validate and write the trace JSON; returns the trace."""
    trace = chrome_trace(tracer)
    validate_chrome_trace(trace)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace
