"""``repro.obs`` — unified tracing and observability layer.

Every layer of the stack instruments itself through this module's
process-wide facade::

    from repro import obs

    with obs.span("plan.build", template="dbuf-shared", workload=wl.name):
        ...                       # timed when tracing is on, free when off

Tracing is **off by default** and zero-cost when off: ``span()`` returns
a shared no-op context manager after a single flag check, and no event,
counter or lock is touched.  Turn it on around a region of interest::

    obs.reset()
    obs.set_enabled(True)
    run = repro.run(workload, "dbuf-shared")
    print(obs.summary()["wall_ms"])          # per-span-name aggregates
    obs.write_chrome_trace("trace.json")     # chrome://tracing / Perfetto
    obs.set_enabled(False)

The bench runner exposes the same thing as ``python -m repro.bench fig4
--trace trace.json``; the serving layer folds ``obs.summary()`` into
``service.stats()["obs"]`` while tracing is enabled.  See
``docs/observability.md`` for the span catalogue and how to read the
paper's overhead breakdowns out of a trace.

Instrumented span names (the stable catalogue):

====================  ====================================================
``plan.build``        template ``build()`` + schedule validation (cache miss)
``plan.cache_hit``    instant: plan served from the plan cache
``analysis.build``    one workload-analysis computation (analysis-cache miss)
``ir.build``          parallelization-IR construction from a workload
``ir.pass.promote``   threshold-promotion pass over the IR
``ir.pass.consolidate``  launch-consolidation pass over the IR
``ir.select``         auto-select lowering (includes candidate race runs;
                      ``ir.select.cache_hit`` instant on a cached decision)
``gpusim.execute``    one executor pass over a launch graph
``gpusim.profile``    metric extraction from an executed graph
``service.coalesce``  micro-batcher grouping one collection window
``service.batch``     one batch dispatch (retries + degradation included)
``service.execute``   one execution attempt (inline call or pool round-trip)
``service.degrade``   the non-nested fallback run after retries failed
``service.request``   one request, admission to response
``service.reject``    instant: admission rejection
``bench.unit``        one bench-runner work unit (experiment or variant)
``device.run``        one shard's template run on one device of a
                      multi-device group (tagged ``device=<i>``)
``queue.execute``     one persistent-queue execution (tagged with the
                      task count; see ``docs/taskqueue.md``)
====================  ====================================================

Per-kernel simulated-device events (named after their launches) land on
a separate ``simulated-device`` track with simulated-clock timestamps.

Counters (also in ``summary()["counters"]``): ``plan_cache.hits`` /
``plan_cache.misses``, ``analysis_cache.hits`` / ``analysis_cache.misses``,
``ir.decisions.<pass>`` (rewrite decisions per IR pass),
``ir.select_cache.hits`` / ``ir.select_cache.misses`` and
``ir.select.race_candidates`` (auto-select audit trail), and — when a
disk cache directory is configured —
``artifact_cache.<tier>.{hits,misses,writes,corrupt,evictions}`` for each
of the ``analysis`` / ``select`` / ``plan`` / ``run`` tiers (see
``docs/performance.md``).  Multi-device runs add per-device counters
under ``device.<i>.*``: ``launches`` / ``busy_cycles`` on every graph a
device executes, plus per-shard work totals — ``outer`` / ``pairs`` for
nested-loop shards, ``nodes`` for tree shards — which sum exactly to the
single-device workload totals (the multi-device equivalence invariant).
Queue-backend runs add ``queue.tasks`` / ``queue.cancelled`` (task graph
composition), ``queue.steals`` / ``queue.polls`` (scheduler activity),
``queue.depth`` (max queue depth), ``queue.termination_wait`` /
``queue.worker_busy_cycles`` (cycles idle workers spent waiting for the
quiescence check vs total busy cycles) and ``queue.fallbacks`` (batches
routed back to BSP because the template is not queue-compatible).
Counters merge additively across processes via ``mark()`` /
``export_events()`` / ``merge_events()``.
"""

from __future__ import annotations

from repro.obs.export import (
    SIM_PID,
    chrome_trace as _chrome_trace,
    validate_chrome_trace,
    write_chrome_trace as _write_chrome_trace,
)
from repro.obs.tracer import NOOP_SPAN, SpanHandle, Tracer

__all__ = [
    "NOOP_SPAN",
    "SIM_PID",
    "SpanHandle",
    "Tracer",
    "add_counter",
    "chrome_trace",
    "complete",
    "current_stack",
    "emit_launch_records",
    "enabled",
    "export_events",
    "get_tracer",
    "instant",
    "mark",
    "merge_events",
    "reset",
    "set_enabled",
    "sim_complete",
    "span",
    "summary",
    "validate_chrome_trace",
    "write_chrome_trace",
]

_enabled = False
_tracer = Tracer()


def enabled() -> bool:
    """Whether tracing is currently recording."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Turn tracing on or off (does not drop already-recorded events)."""
    global _enabled
    _enabled = bool(flag)


def reset() -> None:
    """Drop all recorded events/counters and re-zero the trace clock."""
    _tracer.reset()


def get_tracer() -> Tracer:
    """The process-wide tracer behind the module facade."""
    return _tracer


# ---------------------------------------------------------------- recording
def span(name: str, **tags):
    """A context manager timing one wall-clock span (no-op when off)."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, tags)


def instant(name: str, **tags) -> None:
    """Record a point-in-time marker (no-op when off)."""
    if _enabled:
        _tracer.instant(name, **tags)


def complete(name: str, start_s: float, dur_s: float, **tags) -> None:
    """Record an already-measured span from tracer-clock values.

    For lifecycles that cannot wrap a ``with`` block (a request measured
    from admission in one task to completion in another).
    """
    if _enabled:
        _tracer.complete(name, start_s, dur_s, **tags)


def sim_complete(name: str, start_ms: float, dur_ms: float,
                 track: str = "device", **tags) -> None:
    """Record one simulated-timeline event (no-op when off)."""
    if _enabled:
        _tracer.sim_complete(name, start_ms, dur_ms, track=track, **tags)


def add_counter(name: str, value: int = 1) -> None:
    """Accumulate a named counter (no-op when off)."""
    if _enabled:
        _tracer.add_counter(name, value)


def current_stack() -> tuple:
    """Open span names in the calling task/thread (empty when off)."""
    return _tracer.current_stack() if _enabled else ()


def emit_launch_records(records, config) -> None:
    """Emit executor launch records as simulated-device trace events.

    ``records`` are :class:`~repro.gpusim.executor.LaunchRecord` objects;
    ``config`` anything with ``cycles_to_ms``.  Host and device (dynamic
    parallelism) launches land on separate tracks so child-launch
    overhead reads directly off the trace.
    """
    if not _enabled or not records:
        return
    to_ms = config.cycles_to_ms
    for rec in records:
        _tracer.sim_complete(
            rec.name,
            start_ms=to_ms(rec.start_cycles),
            dur_ms=to_ms(rec.duration_cycles),
            track="device-launches" if rec.device else "host-launches",
            n_blocks=rec.n_blocks,
        )


# ------------------------------------------------------------------ reading
def summary() -> dict:
    """Aggregated per-span-name timings, sim aggregates and counters."""
    return _tracer.summary()


def mark() -> tuple:
    """Watermark for :func:`export_events` deltas (events + counters)."""
    return _tracer.mark()


def export_events(since: tuple = (0, 0)) -> dict:
    """Picklable events-since-watermark payload (cross-process merge)."""
    return _tracer.export_events(since)


def merge_events(payload: dict | None) -> None:
    """Fold an :func:`export_events` payload from another process in."""
    _tracer.merge_events(payload)


def chrome_trace() -> dict:
    """The recorded events as a Chrome-trace object."""
    return _chrome_trace(_tracer)


def write_chrome_trace(path) -> dict:
    """Export, validate and write the Chrome trace; returns the object."""
    return _write_chrome_trace(_tracer, path)
