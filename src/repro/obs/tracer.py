"""The span tracer: wall-clock spans, simulated-timeline events, counters.

One :class:`Tracer` collects everything a traced run produces:

* **wall-clock spans** — ``with tracer.span("plan.build", template=...)``
  around harness work (plan builds, executor passes, pool round-trips,
  request lifecycles).  Nesting is tracked per task/thread through a
  :mod:`contextvars` stack, so concurrent asyncio tasks and worker
  threads each see their own ancestry.
* **simulated-timeline events** — per-kernel/per-phase timings on the
  *simulated* device clock (milliseconds since launch-graph start),
  emitted by the executor from its launch records.  They live on their
  own track so a Chrome trace shows the paper's breakdowns (queue
  construction, child-launch overhead, delayed-buffer second phase) next
  to the harness costs.
* **counters** — monotonically accumulated named integers (plan-cache
  hits, rejects, ...).

Recording is thread-safe (the service records from the event loop, its
worker threads and ``snapshot()`` callers concurrently).  Event lists are
bounded — aggregates keep counting after the cap so summaries stay exact
while the trace file stays openable.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time

__all__ = ["NOOP_SPAN", "SpanHandle", "Tracer"]

#: per-task/thread stack of open span names (ancestry for nesting)
_stack: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_obs_stack", default=()
)


class _NoopSpan:
    """The do-nothing context manager handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


#: singleton returned by ``obs.span`` when tracing is disabled — callers
#: pay one flag check and no allocation beyond the kwargs dict
NOOP_SPAN = _NoopSpan()


class SpanHandle:
    """One open wall-clock span (a context manager)."""

    __slots__ = ("_tracer", "name", "args", "_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "SpanHandle":
        self._token = _stack.set(_stack.get() + (self.name,))
        self._start = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer.clock()
        _stack.reset(self._token)
        enclosing = _stack.get()
        if exc_type is not None:
            self.args = {**self.args, "error": exc_type.__name__}
        self._tracer.complete(
            self.name,
            self._start,
            end - self._start,
            parent=enclosing[-1] if enclosing else None,
            **self.args,
        )
        return False


class Tracer:
    """Collects spans, simulated events and counters for one process."""

    def __init__(
        self,
        clock=time.perf_counter,
        max_events: int = 200_000,
        max_sim_events: int = 50_000,
    ) -> None:
        self.clock = clock
        self.max_events = max_events
        self.max_sim_events = max_sim_events
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Drop every recorded event, aggregate and counter."""
        with getattr(self, "_lock", threading.Lock()):
            self.epoch = self.clock()
            self.events: list[dict] = []
            self.sim_events: list[dict] = []
            self.counters: dict[str, int] = {}
            self.dropped = 0
            self.sim_dropped = 0
            #: span name -> [count, total_seconds, max_seconds]
            self._wall: dict[str, list] = {}
            #: event name -> [count, total_ms, max_ms] on the simulated clock
            self._sim: dict[str, list] = {}

    # ------------------------------------------------------------ recording
    def span(self, name: str, args: dict | None = None) -> SpanHandle:
        """An open span; use as ``with tracer.span("name", {...}):``."""
        return SpanHandle(self, name, args or {})

    def current_stack(self) -> tuple:
        """Names of the spans open in the calling task/thread."""
        return _stack.get()

    def complete(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        parent: str | None = None,
        **args,
    ) -> None:
        """Record a finished wall-clock span (clock values, seconds)."""
        tid = threading.current_thread().name
        with self._lock:
            agg = self._wall.setdefault(name, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += dur_s
            agg[2] = max(agg[2], dur_s)
            if len(self.events) >= self.max_events:
                self.dropped += 1
                return
            self.events.append({
                "name": name,
                "ph": "X",
                "ts_us": (start_s - self.epoch) * 1e6,
                "dur_us": dur_s * 1e6,
                "pid": os.getpid(),
                "tid": tid,
                "parent": parent,
                "args": args,
            })

    def instant(self, name: str, **args) -> None:
        """Record a point-in-time marker (a Chrome ``i`` event)."""
        now = self.clock()
        tid = threading.current_thread().name
        stack = _stack.get()
        with self._lock:
            agg = self._wall.setdefault(name, [0, 0.0, 0.0])
            agg[0] += 1
            if len(self.events) >= self.max_events:
                self.dropped += 1
                return
            self.events.append({
                "name": name,
                "ph": "i",
                "ts_us": (now - self.epoch) * 1e6,
                "dur_us": 0.0,
                "pid": os.getpid(),
                "tid": tid,
                "parent": stack[-1] if stack else None,
                "args": args,
            })

    def sim_complete(
        self, name: str, start_ms: float, dur_ms: float,
        track: str = "device", **args,
    ) -> None:
        """Record one simulated-timeline event (milliseconds of sim time)."""
        with self._lock:
            agg = self._sim.setdefault(name, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += dur_ms
            agg[2] = max(agg[2], dur_ms)
            if len(self.sim_events) >= self.max_sim_events:
                self.sim_dropped += 1
                return
            self.sim_events.append({
                "name": name,
                "ph": "X",
                "ts_us": start_ms * 1e3,
                "dur_us": dur_ms * 1e3,
                "track": track,
                "args": args,
            })

    def add_counter(self, name: str, value: int = 1) -> None:
        """Accumulate a named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    # -------------------------------------------------------------- reading
    def mark(self) -> tuple:
        """Watermark for :meth:`export_events` deltas.

        Includes a counters snapshot as a third element, so a later
        ``export_events(mark)`` can emit counter *deltas* that merge
        additively across processes.  Two-element marks from older callers
        keep working (their exports carry absolute counter values).
        """
        with self._lock:
            return (len(self.events), len(self.sim_events),
                    dict(self.counters))

    def export_events(self, since: tuple = (0, 0)) -> dict:
        """Picklable event payload (for cross-process merging).

        With a 3-element ``since`` mark, the ``counters`` entry holds the
        per-counter increments since the mark; otherwise it holds the
        absolute values (legacy behavior, which :meth:`merge_events` folds
        in additively all the same).
        """
        with self._lock:
            if len(since) > 2:
                base = since[2]
                counters = {
                    name: value - base.get(name, 0)
                    for name, value in self.counters.items()
                    if value != base.get(name, 0)
                }
            else:
                counters = dict(self.counters)
            return {
                "events": list(self.events[since[0]:]),
                "sim_events": list(self.sim_events[since[1]:]),
                "counters": counters,
            }

    def merge_events(self, payload: dict | None) -> None:
        """Fold an :meth:`export_events` payload from another process in.

        Wall/sim aggregates are recomputed from the imported events, and
        counters are folded additively — a worker's cache-hit counts show
        up in the merged summary.  A worker that overflowed its event cap
        contributes slightly undercounted aggregates — the cap is logged
        via ``dropped``.
        """
        if not payload:
            return
        with self._lock:
            for name, value in payload.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for ev in payload.get("events", ()):
                agg = self._wall.setdefault(ev["name"], [0, 0.0, 0.0])
                agg[0] += 1
                agg[1] += ev["dur_us"] / 1e6
                agg[2] = max(agg[2], ev["dur_us"] / 1e6)
                if len(self.events) >= self.max_events:
                    self.dropped += 1
                    continue
                self.events.append(ev)
            for ev in payload.get("sim_events", ()):
                agg = self._sim.setdefault(ev["name"], [0, 0.0, 0.0])
                agg[0] += 1
                agg[1] += ev["dur_us"] / 1e3
                agg[2] = max(agg[2], ev["dur_us"] / 1e3)
                if len(self.sim_events) >= self.max_sim_events:
                    self.sim_dropped += 1
                    continue
                self.sim_events.append(ev)

    def summary(self) -> dict:
        """Aggregated per-span-name timings plus counters.

        ``wall_ms`` aggregates harness spans (wall clock), ``sim_ms``
        aggregates simulated-device events (simulated clock) — the two
        are deliberately separate sections so milliseconds never mix
        across clocks.
        """
        with self._lock:
            return {
                "wall_ms": {
                    name: {
                        "count": agg[0],
                        "total_ms": round(agg[1] * 1e3, 3),
                        "max_ms": round(agg[2] * 1e3, 3),
                    }
                    for name, agg in sorted(self._wall.items())
                },
                "sim_ms": {
                    name: {
                        "count": agg[0],
                        "total_ms": round(agg[1], 4),
                        "max_ms": round(agg[2], 4),
                    }
                    for name, agg in sorted(self._sim.items())
                },
                "counters": dict(sorted(self.counters.items())),
                "events": len(self.events),
                "sim_events": len(self.sim_events),
                "dropped": self.dropped + self.sim_dropped,
            }
