"""CUDA-occupancy-calculator equivalent.

The paper selects kernel configurations with the CUDA occupancy calculator
("we use 192 threads per block, equaling the number of cores per streaming
multiprocessor on Kepler GPUs").  This module reproduces that calculation:
given a block size, per-thread register use and per-block shared memory, it
reports how many blocks of the kernel can be resident on one SM, and the
resulting occupancy (resident warps / max warps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigError
from repro.gpusim.config import DeviceConfig

__all__ = ["OccupancyResult", "occupancy", "best_block_size"]


def _round_up(value: int, granularity: int) -> int:
    """Round ``value`` up to a multiple of ``granularity``."""
    return ((value + granularity - 1) // granularity) * granularity


@dataclass(frozen=True)
class OccupancyResult:
    """Residency of one kernel configuration on one SM."""

    block_size: int
    warps_per_block: int
    blocks_per_sm: int
    #: which resource bounds ``blocks_per_sm`` ("blocks", "warps",
    #: "registers", "shared_mem")
    limiter: str
    registers_per_thread: int
    shared_mem_per_block: int

    @property
    def warps_per_sm(self) -> int:
        """Resident warps on one SM."""
        return self.blocks_per_sm * self.warps_per_block

    @property
    def threads_per_sm(self) -> int:
        """Resident threads on one SM."""
        return self.blocks_per_sm * self.block_size

    def occupancy(self, config: DeviceConfig) -> float:
        """Fraction of the SM's warp slots occupied (0.0 - 1.0)."""
        return self.warps_per_sm / config.max_warps_per_sm


def occupancy(
    config: DeviceConfig,
    block_size: int,
    registers_per_thread: int = 24,
    shared_mem_per_block: int = 0,
) -> OccupancyResult:
    """Compute SM residency for a kernel configuration.

    Parameters mirror the CUDA occupancy calculator inputs.  The paper's
    applications "have a low register and shared memory utilization", so the
    default of 24 registers/thread and no shared memory reproduces its
    finding that large blocks (192 threads) are optimal for thread-mapped
    kernels.

    Results are memoized per ``(device, block size, registers, shared mem)``
    key: launch graphs re-query the same few footprints millions of times
    over a sweep, and both :class:`OccupancyResult` and
    :class:`~repro.gpusim.config.DeviceConfig` are immutable, so sharing the
    result objects is safe.

    Raises :class:`ConfigError` if the configuration can never be resident
    (block too large, too much shared memory, too many registers).
    """
    return _occupancy_impl(
        config, block_size, registers_per_thread, shared_mem_per_block
    )


@lru_cache(maxsize=4096)
def _occupancy_impl(
    config: DeviceConfig,
    block_size: int,
    registers_per_thread: int,
    shared_mem_per_block: int,
) -> OccupancyResult:
    if block_size <= 0:
        raise ConfigError(f"block_size must be positive, got {block_size}")
    if block_size > config.max_threads_per_block:
        raise ConfigError(
            f"block_size {block_size} exceeds device limit "
            f"{config.max_threads_per_block}"
        )
    if registers_per_thread < 0 or registers_per_thread > config.max_registers_per_thread:
        raise ConfigError(
            f"registers_per_thread {registers_per_thread} out of range "
            f"[0, {config.max_registers_per_thread}]"
        )
    if shared_mem_per_block < 0:
        raise ConfigError("shared_mem_per_block cannot be negative")
    if shared_mem_per_block > config.shared_mem_per_block:
        raise ConfigError(
            f"shared_mem_per_block {shared_mem_per_block} exceeds device limit "
            f"{config.shared_mem_per_block}"
        )

    warps_per_block = math.ceil(block_size / config.warp_size)

    limits: dict[str, int] = {}
    limits["blocks"] = config.max_blocks_per_sm
    limits["warps"] = min(
        config.max_warps_per_sm // warps_per_block,
        config.max_threads_per_sm // block_size,
    )
    if registers_per_thread > 0:
        regs_per_block = _round_up(
            registers_per_thread * warps_per_block * config.warp_size,
            config.register_alloc_granularity,
        )
        limits["registers"] = config.registers_per_sm // regs_per_block
    if shared_mem_per_block > 0:
        smem_per_block = _round_up(
            shared_mem_per_block, config.shared_mem_alloc_granularity
        )
        limits["shared_mem"] = config.shared_mem_per_sm // smem_per_block

    limiter, blocks_per_sm = min(limits.items(), key=lambda item: item[1])
    if blocks_per_sm == 0:
        raise ConfigError(
            f"kernel configuration (block={block_size}, regs={registers_per_thread}, "
            f"smem={shared_mem_per_block}) cannot be resident on {config.name}: "
            f"limited by {limiter}"
        )
    return OccupancyResult(
        block_size=block_size,
        warps_per_block=warps_per_block,
        blocks_per_sm=blocks_per_sm,
        limiter=limiter,
        registers_per_thread=registers_per_thread,
        shared_mem_per_block=shared_mem_per_block,
    )


def best_block_size(
    config: DeviceConfig,
    registers_per_thread: int = 24,
    shared_mem_per_block: int = 0,
    candidates: tuple[int, ...] = (32, 64, 96, 128, 192, 256, 384, 512, 768, 1024),
) -> int:
    """Pick the smallest candidate block size that maximizes occupancy.

    Mirrors the CUDA occupancy calculator's recommendation.  Note the paper
    ultimately fixes 192 threads/block for thread-mapped kernels (the core
    count of a Kepler SM); templates apply that choice through
    ``repro.core.plan.DEFAULT_THREAD_BLOCK``.
    """
    best: int | None = None
    best_occ = -1.0
    for size in sorted(set(candidates)):
        if size > config.max_threads_per_block:
            continue
        try:
            result = occupancy(config, size, registers_per_thread, shared_mem_per_block)
        except ConfigError:
            continue
        occ = result.occupancy(config)
        if occ > best_occ + 1e-12:
            best, best_occ = size, occ
    if best is None:
        raise ConfigError("no candidate block size is resident on this device")
    return best
