"""Shared-memory bank-conflict model.

The dbuf-shared template stages its delayed buffer in shared memory; the
paper credits it with better memory coalescing than dbuf-global.  Shared
memory is on-chip and fast, but accesses within a warp that map to the
same bank (and different words) serialize.  This module computes the
conflict degree of warp-wide shared accesses — exact, from word indices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.gpusim.config import DeviceConfig
from repro.gpusim.warps import WarpShape

__all__ = ["bank_conflict_degree", "shared_access_cycles"]


def bank_conflict_degree(
    shape: WarpShape, n_banks: int = 32
) -> np.ndarray:
    """Per-warp bank-conflict degree for one shared-memory access.

    ``shape.values`` are word indices into shared memory.  Lanes hitting
    the same *word* broadcast (no conflict); lanes hitting different words
    in the same *bank* serialize.  Returns the replay factor per warp
    (1 = conflict-free, n = n-way conflict; 0 for inactive warps).
    """
    values = np.asarray(shape.values, dtype=np.int64)
    active = np.asarray(shape.active, dtype=bool)
    if values.shape != active.shape or values.ndim != 2:
        raise WorkloadError("shape.values and shape.active must be matching 2-D arrays")
    if n_banks <= 0:
        raise WorkloadError("n_banks must be positive")
    if values.size == 0:
        return np.zeros(values.shape[0], dtype=np.int64)
    if np.any(values[active] < 0):
        raise WorkloadError("shared-memory word indices cannot be negative")

    n_warps, lanes = values.shape
    degrees = np.zeros(n_warps, dtype=np.int64)
    banks = values % n_banks
    # Count, per warp and bank, the number of *distinct words* accessed in
    # that bank.  Vectorized via a flat unique over (warp, bank, word).
    warp_ids = np.repeat(np.arange(n_warps, dtype=np.int64), lanes)
    flat_active = active.ravel()
    if not flat_active.any():
        return degrees
    w = warp_ids[flat_active]
    b = banks.ravel()[flat_active]
    v = values.ravel()[flat_active]
    word_span = int(v.max()) + 1
    pair_key = (w * n_banks + b) * word_span + v
    uniq = np.unique(pair_key)
    warp_bank = uniq // word_span  # = warp * n_banks + bank
    counts = np.bincount(warp_bank, minlength=n_warps * n_banks)
    per_warp_max = counts.reshape(n_warps, n_banks).max(axis=1)
    has_active = active.any(axis=1)
    degrees[:] = np.where(has_active, np.maximum(per_warp_max, 1), 0)
    return degrees


def shared_access_cycles(
    shape: WarpShape, config: DeviceConfig
) -> np.ndarray:
    """Cycles each warp spends on one shared-memory access (with replays)."""
    degree = bank_conflict_degree(shape, config.shared_mem_banks)
    return degree.astype(np.float64) * config.shared_mem_cycles
