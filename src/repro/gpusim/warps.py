"""Warp formation and SIMT divergence accounting.

A warp executes its lanes in lockstep: if lane ``j`` must run ``t[j]``
iterations of an inner loop, the warp issues ``max(t)`` iteration steps and
during step ``k`` only lanes with ``t[j] > k`` are active.  *Warp execution
efficiency* — the headline metric in the paper's Tables I and II — is the
ratio of active lane-slots to issued lane-slots (32 x issued steps).

This module turns linear lane-assignment arrays into padded
``(n_warps, warp_size)`` matrices and computes divergence statistics over
them, fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = ["form_warps", "WarpShape", "divergence_steps", "WarpExecStats"]


@dataclass
class WarpShape:
    """A linear lane array reshaped into warps.

    ``values`` is ``(n_warps, warp_size)`` with padding lanes zeroed;
    ``active`` marks real lanes.
    """

    values: np.ndarray
    active: np.ndarray

    @property
    def n_warps(self) -> int:
        """Number of warps formed."""
        return self.values.shape[0]

    @property
    def warp_size(self) -> int:
        """Lanes per warp."""
        return self.values.shape[1]


def form_warps(
    lane_values: np.ndarray,
    warp_size: int = 32,
    block_size: int | None = None,
) -> WarpShape:
    """Chunk a linear per-lane array into warps.

    ``lane_values[k]`` is the value (e.g. inner-loop trip count) assigned to
    linear thread ``k``.  When ``block_size`` is given, threads are first
    grouped into blocks and each block is padded to a whole number of warps,
    mirroring how the hardware never forms warps across block boundaries.
    """
    lane_values = np.asarray(lane_values)
    if lane_values.ndim != 1:
        raise WorkloadError(f"lane_values must be 1-D, got shape {lane_values.shape}")
    if warp_size <= 0:
        raise WorkloadError(f"warp_size must be positive, got {warp_size}")
    if block_size is not None:
        if block_size <= 0:
            raise WorkloadError(f"block_size must be positive, got {block_size}")
        if block_size % warp_size:
            # Hardware pads the last warp of the block; rounding the block
            # up to whole warps models exactly that.
            padded_block = -(-block_size // warp_size) * warp_size
        else:
            padded_block = block_size
        n = lane_values.shape[0]
        n_blocks = -(-n // block_size) if n else 0
        total = n_blocks * padded_block
        values = np.zeros(total, dtype=lane_values.dtype)
        active = np.zeros(total, dtype=bool)
        if n:
            src = np.arange(n)
            dst = (src // block_size) * padded_block + (src % block_size)
            values[dst] = lane_values
            active[dst] = True
        return WarpShape(
            values.reshape(-1, warp_size), active.reshape(-1, warp_size)
        )

    n = lane_values.shape[0]
    n_warps = -(-n // warp_size) if n else 0
    values = np.zeros(n_warps * warp_size, dtype=lane_values.dtype)
    active = np.zeros(n_warps * warp_size, dtype=bool)
    values[:n] = lane_values
    active[:n] = True
    return WarpShape(values.reshape(-1, warp_size), active.reshape(-1, warp_size))


def divergence_steps(shape: WarpShape) -> tuple[np.ndarray, np.ndarray]:
    """Issued steps and active lane-slots per warp for an inner loop.

    Interpreting ``shape.values`` as per-lane trip counts, returns
    ``(issued_steps, active_slots)`` — both ``(n_warps,)`` int64 — where
    ``issued_steps[w] = max over active lanes of trips`` and
    ``active_slots[w] = sum over active lanes of trips``.
    """
    trips = np.where(shape.active, shape.values, 0).astype(np.int64, copy=False)
    if np.any(trips < 0):
        raise WorkloadError("trip counts cannot be negative")
    issued = trips.max(axis=1) if trips.size else np.zeros(0, dtype=np.int64)
    active = trips.sum(axis=1, dtype=np.int64) if trips.size else np.zeros(0, dtype=np.int64)
    return issued, active


@dataclass
class WarpExecStats:
    """Running divergence statistics across kernel phases.

    ``issued_slots`` counts ``warp_size`` lane-slots per issued warp step;
    ``active_slots`` counts the lanes that actually did work.  Their ratio
    is the profiler's *warp execution efficiency*.
    """

    warp_size: int = 32
    issued_steps: int = 0
    active_slots: int = 0
    warps_launched: int = 0

    def add_loop(self, shape: WarpShape) -> None:
        """Account one divergent inner loop executed by ``shape``."""
        issued, active = divergence_steps(shape)
        self.issued_steps += int(issued.sum())
        self.active_slots += int(active.sum())
        self.warps_launched += shape.n_warps

    def add_uniform(self, n_threads: int, steps: int = 1) -> None:
        """Account a non-divergent phase of ``steps`` issued steps run by
        ``n_threads`` linear threads (e.g. index setup code)."""
        if n_threads < 0 or steps < 0:
            raise WorkloadError("thread and step counts cannot be negative")
        if n_threads == 0 or steps == 0:
            return
        n_warps = -(-n_threads // self.warp_size)
        self.issued_steps += n_warps * steps
        self.active_slots += n_threads * steps
        self.warps_launched += n_warps

    def add_counts(self, issued_steps: int, active_slots: int) -> None:
        """Account pre-aggregated (issued, active) slot counts."""
        if issued_steps < 0 or active_slots < 0:
            raise WorkloadError("slot counts cannot be negative")
        if active_slots > issued_steps * self.warp_size:
            raise WorkloadError(
                "active slots exceed issued capacity "
                f"({active_slots} > {issued_steps} * {self.warp_size})"
            )
        self.issued_steps += issued_steps
        self.active_slots += active_slots

    def merge(self, other: "WarpExecStats") -> None:
        """Fold another statistics record into this one."""
        if other.warp_size != self.warp_size:
            raise WorkloadError("cannot merge stats with different warp sizes")
        self.issued_steps += other.issued_steps
        self.active_slots += other.active_slots
        self.warps_launched += other.warps_launched

    @property
    def warp_execution_efficiency(self) -> float:
        """Active lane-slots / issued lane-slots (profiler metric)."""
        if self.issued_steps == 0:
            return 1.0
        return self.active_slots / (self.issued_steps * self.warp_size)
