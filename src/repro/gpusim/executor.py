"""Event-driven execution engine: SMs, streams and nested launches.

The executor runs a :class:`~repro.gpusim.kernels.LaunchGraph` on a
simulated device and produces wall-clock timing plus utilization traces.

Model
-----
* Each SM is a **processor-sharing server**: all resident blocks share its
  issue bandwidth equally (work conservation), so total SM throughput is
  one SM-cycle of work per cycle regardless of how many blocks are
  resident.  A block additionally cannot retire before its *floor* (its
  critical warp's standalone time); it lingers holding resources until
  then.  Processor sharing is simulated exactly with the virtual-time
  technique, so the whole run costs O(events log events).
* Blocks are dispatched FIFO per launch, to the SM with the most free
  warps, subject to the real resource footprints (warps, block slots,
  shared memory, registers) and the concurrent-kernel limit.
* Host launches in one stream serialize (plus launch overhead); different
  streams are independent.
* Device (dynamic-parallelism) launches are *issued* when their issuing
  parent block completes, then pass through a single-server grid
  management unit (GMU) with fixed service rate and latency; overflowing
  the pending-launch pool virtualizes the queue (large penalty).  Launches
  sharing a device stream key (same parent block + stream) execute
  sequentially — the semantics behind the paper's "one additional stream
  per thread-block" experiments.
* A parent kernel is tree-complete only when all its descendants are —
  CUDA's parent/child completion rule.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import ConfigError, LaunchError
from repro.gpusim.config import (
    KEPLER_K20,
    DeviceConfig,
    supports_dynamic_parallelism,
)
from repro.gpusim.kernels import Launch, LaunchGraph, ProfileCounters
from repro.gpusim.occupancy import occupancy

__all__ = [
    "GpuExecutor",
    "ExecutionResult",
    "LaunchRecord",
    "ENGINES",
    "execute_fused",
    "resolve_engine",
    "set_default_engine",
    "get_default_engine",
]

_EPS = 1e-9

#: thresholds below which the fast engine's dispatch keeps the serial
#: per-chunk SM scan instead of building the vectorized slot partition:
#: the launch must have at least ``_VECTOR_MIN_BLOCKS`` blocks left *and*
#: the device at least ``_VECTOR_MIN_SLOTS`` free admission slots for the
#: footprint (the NumPy setup only pays for itself on placement waves that
#: yield many chunks; a near-full device yields one or two).  Tests
#: monkeypatch both to 1 to force the vectorized path everywhere.
_VECTOR_MIN_BLOCKS = 48
_VECTOR_MIN_SLOTS = 48

#: available execution engines: ``"fast"`` batches homogeneous blocks into
#: cohort events, ``"exact"`` is the reference event-per-block engine.
ENGINES = ("fast", "exact")

_default_engine = "fast"


def resolve_engine(engine: str | None, *, error=ConfigError) -> str | None:
    """Validate an engine name; the one engine-string check in the repo.

    Returns the engine unchanged (``None`` means "defer to the process
    default").  Every entry point — ``repro.run``, the serving layer, the
    bench CLI — funnels through here, so an invalid name fails with the
    same message everywhere; ``error`` only selects which exception class
    carries it (the service raises its own :class:`ServiceError`).
    """
    if engine is not None and engine not in ENGINES:
        raise error(f"unknown engine {engine!r}; known: {', '.join(ENGINES)}")
    return engine


def set_default_engine(name: str) -> None:
    """Select the engine used when :class:`GpuExecutor` gets ``engine=None``.

    The bench runner's ``--engine`` flag routes through here so every
    executor constructed anywhere in a run (apps, templates, experiments)
    falls back to the selected engine.
    """
    global _default_engine
    if name not in ENGINES:
        raise ConfigError(f"unknown engine {name!r}; known: {', '.join(ENGINES)}")
    _default_engine = name


def get_default_engine() -> str:
    """The engine currently used by default (``"fast"`` unless overridden)."""
    return _default_engine


@dataclass
class LaunchRecord:
    """Timing record of one launch instance."""

    name: str
    start_cycles: float
    end_cycles: float
    n_blocks: int
    device: bool

    @property
    def duration_cycles(self) -> float:
        """End minus start, in SM-cycles."""
        return self.end_cycles - self.start_cycles


@dataclass
class ExecutionResult:
    """Outcome of executing a launch graph."""

    cycles: float
    time_ms: float
    counters: ProfileCounters
    sm_busy_cycles: float
    sm_count: int
    n_launches: int
    n_device_launches: int
    pool_overflows: int
    records: list[LaunchRecord] = field(default_factory=list)

    @property
    def sm_utilization(self) -> float:
        """Busy SM-cycles over available SM-cycles (0.0 - 1.0)."""
        if self.cycles <= 0:
            return 0.0
        return self.sm_busy_cycles / (self.cycles * self.sm_count)


class _Block:
    """A dispatched thread-block being served by an SM."""

    __slots__ = ("launch", "index", "work", "floor", "admit_time", "target_v", "done_service")

    def __init__(self, launch: "_LaunchState", index: int, work: float, floor: float):
        self.launch = launch
        self.index = index
        self.work = work
        self.floor = floor
        self.admit_time = 0.0
        self.target_v = 0.0
        self.done_service = False


class _SM:
    """Processor-sharing SM with resource accounting."""

    __slots__ = (
        "index", "free_warps", "free_blocks", "free_smem", "free_regs",
        "serving", "virtual", "t_last", "version", "busy_cycles",
    )

    def __init__(self, index: int, config: DeviceConfig):
        self.index = index
        self.free_warps = config.max_warps_per_sm
        self.free_blocks = config.max_blocks_per_sm
        self.free_smem = config.shared_mem_per_sm
        self.free_regs = config.registers_per_sm
        self.serving: list[tuple[float, int, _Block]] = []  # heap by target_v
        self.virtual = 0.0
        self.t_last = 0.0
        self.version = 0
        self.busy_cycles = 0.0

    def advance(self, now: float) -> None:
        """Accrue service up to ``now`` (call before changing residency)."""
        if now < self.t_last - _EPS:
            raise LaunchError("simulation time went backwards")
        dt = max(0.0, now - self.t_last)
        k = len(self.serving)
        if k:
            self.virtual += dt / k
            self.busy_cycles += dt
        self.t_last = now

    def next_completion(self) -> float:
        """Predicted absolute time of the earliest service completion."""
        if not self.serving:
            return math.inf
        target = self.serving[0][0]
        k = len(self.serving)
        return self.t_last + max(0.0, target - self.virtual) * k


@dataclass
class _Footprint:
    warps: int
    smem: int
    regs: int


class _LaunchState:
    """Mutable execution state of one launch instance."""

    __slots__ = (
        "spec", "graph_index", "replica", "serial", "footprint", "n_blocks",
        "next_block", "run_cursor", "outstanding_blocks", "outstanding_children",
        "ready", "dispatch_started", "start_time", "end_time",
        "tree_completed", "parent_state", "group_key", "tail_elapsed", "runs",
    )

    def __init__(self, spec: Launch, graph_index: int, replica: int, footprint: _Footprint):
        self.spec = spec
        self.graph_index = graph_index
        self.replica = replica
        self.serial = 0
        self.footprint = footprint
        self.n_blocks = spec.costs.n_blocks
        self.next_block = 0
        #: index into ``costs.block_runs()`` of the run ``next_block`` is in
        #: (maintained by the fast engine's run-batched dispatch)
        self.run_cursor = 0
        self.outstanding_blocks = self.n_blocks
        self.outstanding_children = 0
        self.ready = False
        self.dispatch_started = False
        self.start_time = math.inf
        self.end_time = 0.0
        self.tree_completed = False
        self.parent_state: _LaunchState | None = None
        self.group_key: tuple[int, int, int] | None = None
        self.tail_elapsed = False
        #: memoized ``spec.costs.block_runs()`` — fetched once per launch
        #: instance instead of once per dispatch pass
        self.runs: tuple[list[int], list[float], list[float]] | None = None

    @property
    def fully_dispatched(self) -> bool:
        return self.next_block >= self.n_blocks


class GpuExecutor:
    """Executes launch graphs on a simulated device.

    Parameters
    ----------
    config:
        the device to simulate.
    record_timeline:
        keep per-launch timing records (off by default: launch graphs with
        hundreds of thousands of nested launches would bloat the result).
    max_launch_instances:
        safety valve against runaway dynamic parallelism in experiments.
    engine:
        ``"fast"`` (cohort-batched events), ``"exact"`` (the reference
        event-per-block engine) or ``None`` to use the module default set
        via :func:`set_default_engine`.  Both engines implement the same
        virtual-time processor-sharing model; the fast engine batches
        homogeneous blocks into cohort events and is validated against the
        exact engine by the equivalence suite.
    """

    def __init__(
        self,
        config: DeviceConfig,
        record_timeline: bool = False,
        max_launch_instances: int = 2_000_000,
        engine: str | None = None,
    ) -> None:
        resolve_engine(engine)
        self.config = config
        self.record_timeline = record_timeline
        self.max_launch_instances = max_launch_instances
        self.engine = engine

    # ------------------------------------------------------------------- API
    def run(self, graph: LaunchGraph) -> ExecutionResult:
        """Simulate the graph; returns timing + aggregated counters."""
        graph.validate(self.config)
        if not graph.launches:
            return ExecutionResult(
                cycles=0.0, time_ms=0.0, counters=ProfileCounters(),
                sm_busy_cycles=0.0, sm_count=self.config.sm_count,
                n_launches=0, n_device_launches=0, pool_overflows=0,
            )
        has_device = any(l.is_device for l in graph.launches)
        if has_device and not supports_dynamic_parallelism(self.config):
            raise LaunchError(
                f"{self.config.name} does not support dynamic parallelism"
            )
        engine = self.engine or _default_engine
        sim_cls = _FastSimulation if engine == "fast" else _Simulation
        tracing = obs.enabled()
        # while tracing, collect launch records even when the caller did
        # not ask for a timeline — they become per-kernel trace events
        sim = sim_cls(self.config, graph, self.record_timeline or tracing,
                      self.max_launch_instances)
        if not tracing:
            return sim.run()
        with obs.span("gpusim.execute", engine=engine,
                      launches=len(graph.launches)):
            result = sim.run()
        scans = getattr(sim, "_vector_scans", 0)
        if scans:
            obs.add_counter("executor.vectorized_scans", scans)
        obs.emit_launch_records(result.records, self.config)
        if not self.record_timeline:
            result.records = []  # keep the no-timeline contract lean
        return result

    def run_many(self, graphs) -> list[ExecutionResult]:
        """Simulate N graphs (same device) in one fused event-loop pass.

        Results are per graph and bit-identical to N sequential
        :meth:`run` calls: every lane keeps fully disjoint simulation
        state; only the event heap — and therefore the Python-level loop
        and setup overhead — is shared (see :class:`_FusedSimulation`).
        Empty graphs yield the same zero result ``run`` returns, at their
        original positions.
        """
        graphs = list(graphs)
        results: list[ExecutionResult | None] = [None] * len(graphs)
        live: list[int] = []
        for i, graph in enumerate(graphs):
            graph.validate(self.config)
            if not graph.launches:
                results[i] = ExecutionResult(
                    cycles=0.0, time_ms=0.0, counters=ProfileCounters(),
                    sm_busy_cycles=0.0, sm_count=self.config.sm_count,
                    n_launches=0, n_device_launches=0, pool_overflows=0,
                )
                continue
            if (any(l.is_device for l in graph.launches)
                    and not supports_dynamic_parallelism(self.config)):
                raise LaunchError(
                    f"{self.config.name} does not support dynamic parallelism"
                )
            live.append(i)
        if not live:
            return results
        engine = self.engine or _default_engine
        tracing = obs.enabled()
        sim = _FusedSimulation(
            self.config, [graphs[i] for i in live],
            self.record_timeline or tracing, self.max_launch_instances,
            engine,
        )
        if not tracing:
            lane_results = sim.run()
        else:
            with obs.span("gpusim.execute_fused", engine=engine,
                          graphs=len(live),
                          launches=sum(len(graphs[i].launches)
                                       for i in live)):
                lane_results = sim.run()
            obs.add_counter("executor.fused_graphs", len(live))
            scans = sum(getattr(lane, "_vector_scans", 0)
                        for lane in sim.lanes)
            if scans:
                obs.add_counter("executor.vectorized_scans", scans)
            for result in lane_results:
                obs.emit_launch_records(result.records, self.config)
                if not self.record_timeline:
                    result.records = []
        for i, result in zip(live, lane_results):
            results[i] = result
        return results


def execute_fused(
    graphs,
    config: DeviceConfig = KEPLER_K20,
    *,
    engine: str | None = None,
    record_timeline: bool = False,
    max_launch_instances: int = 2_000_000,
) -> list[ExecutionResult]:
    """Execute N launch graphs on one device config in a single fused pass.

    The batch-fusion front door: graphs from one scheduling window —
    *different* workloads, templates and fingerprints — are merged into
    one event-loop drain and demuxed back into exact per-graph
    :class:`ExecutionResult` objects, bit-identical to running each graph
    through :meth:`GpuExecutor.run` on its own.  Used by
    :meth:`~repro.backends.sim.SimBackend.submit_many` and, through it,
    the serving tier's window fusion (see docs/performance.md).
    """
    executor = GpuExecutor(
        config, record_timeline=record_timeline,
        max_launch_instances=max_launch_instances, engine=engine,
    )
    return executor.run_many(graphs)


class _Simulation:
    """One executor run (separate from GpuExecutor so the executor object
    stays reusable and stateless between runs).

    This is the **exact** reference engine: one heap entry per dispatched
    block.  The fast engine (:class:`_FastSimulation`) subclasses it and
    overrides only dispatch/service/retire with cohort-batched versions.
    """

    #: SM implementation instantiated per simulated multiprocessor
    sm_class = _SM

    def __init__(
        self,
        config: DeviceConfig,
        graph: LaunchGraph,
        record_timeline: bool,
        max_instances: int,
    ) -> None:
        self.config = config
        self.graph = graph
        self.record_timeline = record_timeline
        self.max_instances = max_instances

        self.now = 0.0
        self.events: list[tuple[float, int, str, object]] = []
        self._seq = 0
        self.sms = [self.sm_class(i, config) for i in range(config.sm_count)]
        self.records: list[LaunchRecord] = []

        # Launch instances (bulk launches expand into replicas).
        self.instances: list[_LaunchState] = []
        #: children registered on (parent graph_index, parent block) —
        #: replicas of a bulk parent only get children on replica 0.
        self.children_of: dict[tuple[int, int], list[int]] = {}

        # streams / GMU
        self.gmu_free = 0.0
        self.gmu_pending = 0
        self.pool_overflows = 0
        self.device_stream_tail: dict[tuple[int, int, int], _LaunchState | None] = {}
        self.device_stream_queue: dict[tuple[int, int, int], list[_LaunchState]] = {}

        self.ready_list: list[_LaunchState] = []
        #: cleared by engines that can prove a dispatch pass would place
        #: nothing (the fast engine); the reference engine leaves it True
        #: so the shared event loop's inlined guard never skips it
        self._dispatch_dirty = True
        self.n_device_instances = 0
        self._footprints: dict[int, _Footprint] = {}

    # ----------------------------------------------------------------- setup
    def _footprint(self, spec: Launch, graph_index: int) -> _Footprint:
        fp = self._footprints.get(graph_index)
        if fp is None:
            cfg = self.config
            occ = occupancy(cfg, spec.block_size, spec.registers_per_thread,
                            spec.shared_mem_per_block)
            wpb = occ.warps_per_block
            regs = spec.registers_per_thread * wpb * cfg.warp_size
            regs = -(-regs // cfg.register_alloc_granularity) * cfg.register_alloc_granularity
            smem = spec.shared_mem_per_block
            if smem:
                smem = -(-smem // cfg.shared_mem_alloc_granularity) * cfg.shared_mem_alloc_granularity
            fp = _Footprint(warps=wpb, smem=smem, regs=regs)
            self._footprints[graph_index] = fp
        return fp

    def _push_event(self, time: float, kind: str, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self.events, (time, self._seq, kind, payload))

    def _new_instance(self, spec: Launch, graph_index: int, replica: int) -> _LaunchState:
        if len(self.instances) >= self.max_instances:
            raise LaunchError(
                f"launch-instance limit {self.max_instances} exceeded — "
                "runaway dynamic parallelism?"
            )
        state = _LaunchState(spec, graph_index, replica, self._footprint(spec, graph_index))
        state.serial = len(self.instances)
        self.instances.append(state)
        return state

    def _setup(self) -> None:
        host_overhead = self.config.us_to_cycles(self.config.host_launch_overhead_us)
        # Build instances for host launches immediately; device launches are
        # instantiated per replica and wait for their parent block.
        for gi, spec in enumerate(self.graph.launches):
            if not spec.is_device:
                if spec.count != 1:
                    raise LaunchError("bulk (count > 1) host launches are not supported")
                state = self._new_instance(spec, gi, 0)
                # The first launch of each stream becomes ready after the
                # host launch overhead; successors are released when their
                # predecessor's launch tree completes.
                self._chain_host(state, host_overhead)
            else:
                self.children_of.setdefault((spec.parent, spec.parent_block), []).append(gi)

    # Host stream chaining: keep a per-stream list of pending launches; a
    # launch becomes ready when its predecessor's tree completes.
    def _chain_host(self, state: _LaunchState, ready_hint: float) -> None:
        stream = state.spec.stream
        queue = self._host_queues.setdefault(stream, [])
        queue.append(state)
        if len(queue) == 1:
            self._push_event(ready_hint, "host_ready", state)

    # ------------------------------------------------------------------- run
    def run(self) -> ExecutionResult:
        self._begin()
        events = self.events
        while events:
            time, _, kind, payload = heapq.heappop(events)
            self._handle(time, kind, payload)
        return self._finalize()

    # The run loop is split into begin/handle/finalize so a fused run
    # (:class:`_FusedSimulation`) can drive many independent simulations
    # off one shared event heap without duplicating the event semantics.
    def _begin(self) -> None:
        self._host_queues: dict[int, list[_LaunchState]] = {}
        self._setup()

    def _handle(self, time: float, kind: str, payload: object) -> None:
        self.now = max(self.now, time)
        if kind == "host_ready":
            self._on_ready(payload)  # type: ignore[arg-type]
        elif kind == "gmu_done":
            self._on_gmu_done(payload)  # type: ignore[arg-type]
        elif kind == "sm_check":
            sm, version = payload  # type: ignore[misc]
            if sm.version == version:
                self._service_sm(sm)
        elif kind == "linger_done":
            self._on_linger(payload)
        elif kind == "tail_done":
            state = payload  # type: ignore[assignment]
            state.tail_elapsed = True
            self._maybe_tree_complete(state)
        # inlined _dispatch guard: most events leave nothing to place, and
        # at ~1 dispatch probe per event the call overhead itself shows up
        while self.ready_list and self._dispatch_dirty and self._dispatch():
            pass

    def _finalize(self) -> ExecutionResult:
        makespan = self.now
        for sm in self.sms:
            sm.advance(makespan)
        counters = self.graph.aggregate_counters()
        busy = sum(sm.busy_cycles for sm in self.sms)
        return ExecutionResult(
            cycles=makespan,
            time_ms=self.config.cycles_to_ms(makespan),
            counters=counters,
            sm_busy_cycles=busy,
            sm_count=self.config.sm_count,
            n_launches=len(self.instances),
            n_device_launches=self.n_device_instances,
            pool_overflows=self.pool_overflows,
            records=self.records,
        )

    # ---------------------------------------------------------------- events
    def _on_ready(self, state: _LaunchState) -> None:
        state.ready = True
        self.ready_list.append(state)

    def _on_linger(self, payload: object) -> None:
        sm, block = payload  # type: ignore[misc]
        self._retire_block(sm, block)

    def _issue_children(self, parent: _LaunchState, block_index: int) -> None:
        """A parent block completed: issue its registered device launches."""
        if parent.replica != 0:
            return  # children are attached to replica 0 of bulk parents
        key = (parent.graph_index, block_index)
        child_graph_ids = self.children_of.get(key)
        if not child_graph_ids:
            return
        cfg = self.config
        latency = cfg.us_to_cycles(cfg.device_launch_latency_us)
        # GMU service: launches per microsecond -> cycles per launch
        service = cfg.us_to_cycles(1.0 / cfg.device_launch_throughput_per_us)
        for gi in child_graph_ids:
            spec = self.graph.launches[gi]
            for replica in range(spec.count):
                child = self._new_instance(spec, gi, replica)
                child.parent_state = parent
                parent.outstanding_children += 1
                self.n_device_instances += 1
                key3 = (parent.graph_index, block_index, spec.device_stream)
                child.group_key = key3
                # GMU single-server FIFO
                self.gmu_pending += 1
                penalty = 1.0
                if self.gmu_pending > cfg.pending_launch_limit:
                    penalty = 10.0
                    self.pool_overflows += 1
                start_service = max(self.now, self.gmu_free)
                self.gmu_free = start_service + service * penalty
                done = self.gmu_free + latency
                self._push_event(done, "gmu_done", child)

    def _on_gmu_done(self, child: _LaunchState) -> None:
        self.gmu_pending -= 1
        key = child.group_key
        assert key is not None
        tail = self.device_stream_tail.get(key)
        if tail is None:
            self.device_stream_tail[key] = child
            self._on_ready(child)
        else:
            self.device_stream_queue.setdefault(key, []).append(child)

    def _service_sm(self, sm: _SM) -> None:
        """Handle (predicted) completions on one SM."""
        sm.advance(self.now)
        tol = 1e-6 * (1.0 + abs(sm.virtual))
        while sm.serving and sm.serving[0][0] <= sm.virtual + tol:
            _, _, block = heapq.heappop(sm.serving)
            sm.version += 1
            block.done_service = True
            floor_time = block.admit_time + block.floor
            if floor_time > self.now + _EPS:
                # Holds resources (registers, smem, warp slots) until its
                # critical warp drains, but consumes no further issue slots.
                self._push_event(floor_time, "linger_done", (sm, block))
            else:
                self._retire_block(sm, block)
        self._schedule_sm_check(sm)

    def _schedule_sm_check(self, sm: _SM) -> None:
        nxt = sm.next_completion()
        if nxt is not math.inf:
            self._push_event(nxt, "sm_check", (sm, sm.version))

    def _retire_block(self, sm: _SM, block: _Block) -> None:
        state = block.launch
        fp = state.footprint
        sm.free_warps += fp.warps
        sm.free_blocks += 1
        sm.free_smem += fp.smem
        sm.free_regs += fp.regs
        state.outstanding_blocks -= 1
        self._issue_children(state, block.index)
        if state.outstanding_blocks == 0:
            self._on_blocks_done(state)

    def _on_blocks_done(self, state: _LaunchState) -> None:
        """All blocks retired; apply serial tail, then check tree completion."""
        tail = state.spec.costs.serial_tail
        end = self.now + tail
        state.end_time = end
        if self.record_timeline:
            self.records.append(LaunchRecord(
                name=state.spec.name,
                start_cycles=state.start_time,
                end_cycles=end,
                n_blocks=state.n_blocks,
                device=state.spec.is_device,
            ))
        if tail > 0:
            self._push_event(end, "tail_done", state)
        else:
            state.tail_elapsed = True
            self._maybe_tree_complete(state)

    def _maybe_tree_complete(self, state: _LaunchState) -> None:
        if state.tree_completed:
            return
        if (
            state.outstanding_blocks > 0
            or state.outstanding_children > 0
            or not state.tail_elapsed
        ):
            return
        state.tree_completed = True
        # release device-stream successor
        if state.group_key is not None:
            key = state.group_key
            queue = self.device_stream_queue.get(key)
            if queue:
                nxt = queue.pop(0)
                self.device_stream_tail[key] = nxt
                self._on_ready(nxt)
            else:
                self.device_stream_tail[key] = None
        # notify parent
        parent = state.parent_state
        if parent is not None:
            parent.outstanding_children -= 1
            self._maybe_tree_complete(parent)
        else:
            # host launch: release its stream successor
            stream = state.spec.stream
            queue = self._host_queues.get(stream)
            if queue and queue[0] is state:
                queue.pop(0)
                if queue:
                    overhead = self.config.us_to_cycles(self.config.host_launch_overhead_us)
                    self._push_event(self.now + overhead, "host_ready", queue[0])

    # -------------------------------------------------------------- dispatch
    def _dispatch(self) -> bool:
        """Place ready blocks onto SMs; returns True if anything moved."""
        if not self.ready_list:
            return False
        cfg = self.config
        queue = self.ready_list
        self.ready_list = []
        progress = False
        active = 0
        leftover: list[_LaunchState] = []
        changed_sms: set[int] = set()
        for state in queue:
            if state.fully_dispatched:
                continue
            if active >= cfg.max_concurrent_kernels:
                leftover.append(state)
                continue
            active += 1
            fp = state.footprint
            costs = state.spec.costs
            while not state.fully_dispatched:
                sm = self._find_sm(fp)
                if sm is None:
                    break
                progress = True
                bi = state.next_block
                state.next_block += 1
                if not state.dispatch_started:
                    state.dispatch_started = True
                    state.start_time = self.now
                block = _Block(
                    state, bi,
                    work=float(costs.block_cycles[bi]),
                    floor=float(costs.block_floor[bi]),
                )
                sm.advance(self.now)
                block.admit_time = self.now
                sm.free_warps -= fp.warps
                sm.free_blocks -= 1
                sm.free_smem -= fp.smem
                sm.free_regs -= fp.regs
                if block.work <= _EPS:
                    # Zero-work block: never enters service; complete
                    # immediately (respecting its floor).
                    block.done_service = True
                    floor_time = block.admit_time + block.floor
                    if floor_time > self.now + _EPS:
                        self._push_event(floor_time, "linger_done", (sm, block))
                    else:
                        self._retire_block(sm, block)
                else:
                    block.target_v = sm.virtual + block.work
                    self._seq += 1
                    heapq.heappush(sm.serving, (block.target_v, self._seq, block))
                    sm.version += 1
                    changed_sms.add(sm.index)
            if not state.fully_dispatched:
                leftover.append(state)
        # Anything that became ready while dispatching stays queued for the
        # next pass (the caller loops until no progress).
        self.ready_list.extend(leftover)
        for i in changed_sms:
            self._schedule_sm_check(self.sms[i])
        return progress

    def _find_sm(self, fp: _Footprint) -> _SM | None:
        best: _SM | None = None
        for sm in self.sms:
            if (
                sm.free_warps >= fp.warps
                and sm.free_blocks >= 1
                and sm.free_smem >= fp.smem
                and sm.free_regs >= fp.regs
            ):
                if best is None or sm.free_warps > best.free_warps:
                    best = sm
        return best


# --------------------------------------------------------------------------
# Fast engine: cohort-batched events
# --------------------------------------------------------------------------


class _FastSM(_SM):
    """Processor-sharing SM whose serving heap holds block *cohorts*.

    ``n_serving`` counts resident blocks (the processor-sharing divisor),
    which no longer equals ``len(serving)`` once homogeneous blocks are
    batched into a single heap entry.
    """

    __slots__ = ("n_serving",)

    def __init__(self, index: int, config: DeviceConfig):
        super().__init__(index, config)
        self.n_serving = 0

    def advance(self, now: float) -> None:
        """Accrue service up to ``now`` (call before changing residency)."""
        if now < self.t_last - _EPS:
            raise LaunchError("simulation time went backwards")
        dt = max(0.0, now - self.t_last)
        if self.n_serving:
            self.virtual += dt / self.n_serving
            self.busy_cycles += dt
        self.t_last = now

    def next_completion(self) -> float:
        """Predicted absolute time of the earliest cohort completion."""
        if not self.serving:
            return math.inf
        target = self.serving[0][0]
        return self.t_last + max(0.0, target - self.virtual) * self.n_serving


class _Cohort:
    """A batch of same-launch blocks admitted to one SM at one instant with
    identical work and floor — they share a virtual-time completion target,
    so one heap entry and one completion event cover the whole batch."""

    __slots__ = ("launch", "indices", "floor", "admit_time", "target_v")

    def __init__(self, launch: _LaunchState, floor: float,
                 admit_time: float, target_v: float):
        self.launch = launch
        self.indices: list[int] = []
        self.floor = floor
        self.admit_time = admit_time
        self.target_v = target_v


class _FastSimulation(_Simulation):
    """Cohort-batched engine.

    Implements the *same* virtual-time processor-sharing model as the exact
    engine, with three changes that only affect constant factors:

    * blocks of one launch admitted to one SM at the same simulation time
      with equal (work, floor) become one :class:`_Cohort` heap entry /
      linger event instead of one entry per block;
    * dispatch passes are skipped entirely unless something changed since
      the last blocked attempt (resources freed or a launch became ready);
    * per-block work/floor values come from cached Python lists
      (:meth:`KernelCosts.block_lists`) instead of NumPy scalar reads.

    Cohort retirement follows the exact engine's event ordering: service
    completions retire the whole batch inside one event (the exact engine
    pops equal-target blocks back-to-back in one ``sm_check`` anyway), and
    floor lingers retire block-by-block with a dispatch pass in between
    (the exact engine interleaves exactly this way).  The equivalence
    suite (``tests/test_executor_fastpath.py``) asserts cycle-count
    agreement with the exact engine to 1e-6 relative.
    """

    sm_class = _FastSM

    def __init__(
        self,
        config: DeviceConfig,
        graph: LaunchGraph,
        record_timeline: bool,
        max_instances: int,
    ) -> None:
        super().__init__(config, graph, record_timeline, max_instances)
        self._dispatch_dirty = True
        self._parent_gis: set[int] = set()
        #: vectorized slot-partition placements this run (obs counter
        #: ``executor.vectorized_scans`` when tracing)
        self._vector_scans = 0

    def _setup(self) -> None:
        super()._setup()
        # launches that actually register device children; retirement skips
        # the per-block child lookup for everything else
        self._parent_gis = {gi for (gi, _block) in self.children_of}

    # ---------------------------------------------------------------- events
    def _on_ready(self, state: _LaunchState) -> None:
        super()._on_ready(state)
        self._dispatch_dirty = True

    def _service_sm(self, sm: _FastSM) -> None:
        """Handle (predicted) cohort completions on one SM."""
        sm.advance(self.now)
        tol = 1e-6 * (1.0 + abs(sm.virtual))
        while sm.serving and sm.serving[0][0] <= sm.virtual + tol:
            _, _, cohort = heapq.heappop(sm.serving)
            sm.n_serving -= len(cohort.indices)
            sm.version += 1
            floor_time = cohort.admit_time + cohort.floor
            if floor_time > self.now + _EPS:
                # Holds resources until the critical warps drain; one event
                # covers the whole cohort.
                self._push_event(floor_time, "linger_done", (sm, cohort))
            else:
                self._retire_cohort(sm, cohort)
        self._schedule_sm_check(sm)

    def _on_linger(self, payload: object) -> None:
        """Retire a lingering cohort block-by-block, dispatching between
        retirements exactly like the exact engine's per-block events."""
        sm, cohort = payload  # type: ignore[misc]
        state = cohort.launch
        for index in cohort.indices:
            self._retire_one(sm, state, index)
            while self.ready_list and self._dispatch_dirty and self._dispatch():
                pass

    # ----------------------------------------------------------------- retire
    def _retire_one(self, sm: _FastSM, state: _LaunchState, index: int) -> None:
        fp = state.footprint
        sm.free_warps += fp.warps
        sm.free_blocks += 1
        sm.free_smem += fp.smem
        sm.free_regs += fp.regs
        state.outstanding_blocks -= 1
        self._dispatch_dirty = True
        if state.graph_index in self._parent_gis:
            self._issue_children(state, index)
        if state.outstanding_blocks == 0:
            self._on_blocks_done(state)

    def _retire_cohort(self, sm: _FastSM, cohort: _Cohort) -> None:
        state = cohort.launch
        fp = state.footprint
        k = len(cohort.indices)
        sm.free_warps += fp.warps * k
        sm.free_blocks += k
        sm.free_smem += fp.smem * k
        sm.free_regs += fp.regs * k
        state.outstanding_blocks -= k
        self._dispatch_dirty = True
        if state.replica == 0 and state.graph_index in self._parent_gis:
            for index in cohort.indices:
                self._issue_children(state, index)
        if state.outstanding_blocks == 0:
            self._on_blocks_done(state)

    # -------------------------------------------------------------- dispatch
    def _dispatch(self) -> bool:
        """Place ready blocks onto SMs a whole *run* of identical blocks at
        a time, accumulating same-target cohorts.

        One SM scan yields the strict-max-free-warps winner (first index
        wins ties, like :meth:`_Simulation._find_sm`) plus the best
        free-warp levels left (``L``) and right (``R``) of it among the
        other eligible SMs.  While the winner's free warps stay at or above
        ``T = max(L + 1, R)`` it keeps winning the serial per-block scan —
        the other SMs don't change while it absorbs blocks — so the whole
        chunk ``min(run length, (W - T) // warps + 1, eligibility caps)``
        lands in one step instead of one scan per block.  Placement order,
        cohort grouping and event sequencing are identical to the
        per-block scan; only the number of scans changes.
        """
        if not self.ready_list or not self._dispatch_dirty:
            return False
        cfg = self.config
        queue = self.ready_list
        sms = self.sms
        cap = cfg.max_concurrent_kernels
        # Pass-level feasibility screen: most dispatch passes in saturated
        # phases place nothing (every queued footprint is blocked on every
        # SM).  One probe per *distinct* footprint detects that without the
        # per-state scans of the placement loop below; footprints that fail
        # the probe seed ``failed_fps`` so the main loop skips them too.
        # Short queues skip the screen: the placement loop's own scan finds
        # a blocked footprint just as fast as the probe would.
        failed_fps: set[tuple[int, int, int]] = set()
        if len(queue) >= 4:
            feasible: dict[tuple[int, int, int], bool] = {}
            any_fit = False
            for state in queue:
                if state.next_block >= state.n_blocks:
                    continue
                fp = state.footprint
                fp_key = (fp.warps, fp.smem, fp.regs)
                fit = feasible.get(fp_key)
                if fit is None:
                    fpw, fps, fpr = fp_key
                    fit = False
                    for sm in sms:
                        if (
                            sm.free_warps >= fpw
                            and sm.free_blocks >= 1
                            and sm.free_smem >= fps
                            and sm.free_regs >= fpr
                        ):
                            fit = True
                            break
                    feasible[fp_key] = fit
                if fit:
                    any_fit = True
                    break
            if not any_fit:
                # Nothing can place: reproduce the serial pass's queue
                # rebuild (drop fully-dispatched entries up to the
                # concurrency cap, keep the rest wholesale) without
                # scanning per state.
                self._dispatch_dirty = False
                active = 0
                leftover = []
                for qi, state in enumerate(queue):
                    if state.next_block >= state.n_blocks:
                        continue
                    if active >= cap:
                        leftover.extend(queue[qi:])
                        break
                    active += 1
                    leftover.append(state)
                self.ready_list = leftover
                return False
            failed_fps = {key for key, fit in feasible.items() if not fit}
        self.ready_list = []
        self._dispatch_dirty = False
        progress = False
        active = 0
        leftover: list[_LaunchState] = []
        #: (sm index, launch serial, work, floor) -> accumulating cohort
        pending: dict[tuple[int, int, float, float], _Cohort] = {}
        changed_sms: set[int] = set()
        # failed_fps (seeded by the screen above): footprints no SM could
        # host earlier in this pass.  Within one pass free resources never
        # exceed their level at the failed probe (inline zero-work retires
        # only restore what the pass consumed), so a failed footprint stays
        # failed and the rescan can be skipped.
        now = self.now
        for qi, state in enumerate(queue):
            if state.next_block >= state.n_blocks:
                continue
            if active >= cap:
                # over the concurrency cap the serial scan only copies the
                # rest of the queue into leftover; do it wholesale (states
                # already fully dispatched get skipped on the next pass)
                leftover.extend(queue[qi:])
                break
            active += 1
            fp = state.footprint
            fpw, fps, fpr = fp.warps, fp.smem, fp.regs
            fp_key = (fpw, fps, fpr)
            if fp_key in failed_fps:
                leftover.append(state)
                continue
            runs = state.runs
            if runs is None:
                runs = state.runs = state.spec.costs.block_runs()
            ends, works, floors = runs
            n_blocks = state.n_blocks
            if n_blocks - state.next_block >= _VECTOR_MIN_BLOCKS:
                # cheap slot estimate: only build the vectorized partition
                # for placement waves with enough admission capacity to
                # yield many chunks (a near-full device yields one or two,
                # where the serial scan is faster than the NumPy setup)
                approx = 0
                for sm in sms:
                    w = sm.free_warps // fpw
                    b = sm.free_blocks
                    approx += w if w < b else b
                if approx >= _VECTOR_MIN_SLOTS:
                    if self._place_vectorized(state, fp, ends, works,
                                              floors, now, pending,
                                              changed_sms):
                        progress = True
                    if state.next_block < n_blocks:
                        # stopped with blocks left <=> no eligible SM
                        failed_fps.add(fp_key)
                        leftover.append(state)
                    continue
            while state.next_block < n_blocks:
                best = None
                best_w = L = R = 0
                for sm in sms:
                    if (
                        sm.free_warps >= fpw
                        and sm.free_blocks >= 1
                        and sm.free_smem >= fps
                        and sm.free_regs >= fpr
                    ):
                        w = sm.free_warps
                        if best is None or w > best_w:
                            L = best_w
                            R = 0
                            best = sm
                            best_w = w
                        elif w > R:
                            R = w
                if best is None:
                    failed_fps.add(fp_key)
                    break
                progress = True
                if not state.dispatch_started:
                    state.dispatch_started = True
                    state.start_time = now
                ri = state.run_cursor
                bi = state.next_block
                run_end = ends[ri]
                work = works[ri]
                floor = floors[ri]
                best.advance(now)
                if work <= _EPS and floor <= _EPS:
                    # Zero-work zero-floor blocks never enter service and
                    # retire inline; each retire restores exactly what its
                    # placement consumed, so the winner's resources — and
                    # hence the scan result — are unchanged block to block:
                    # the whole run retires here without rescanning.
                    for b in range(bi, run_end):
                        state.next_block = b + 1
                        best.free_warps -= fpw
                        best.free_blocks -= 1
                        best.free_smem -= fps
                        best.free_regs -= fpr
                        self._retire_one(best, state, b)
                    state.run_cursor = ri + 1
                    continue
                # resources are held: the winner absorbs blocks until its
                # free warps would drop below T or an eligibility cap hits
                T = max(L + 1, R)
                k = run_end - bi
                k = min(k, (best_w - T) // fpw + 1, best_w // fpw,
                        best.free_blocks)
                if fps:
                    k = min(k, best.free_smem // fps)
                if fpr:
                    k = min(k, best.free_regs // fpr)
                best.free_warps -= fpw * k
                best.free_blocks -= k
                best.free_smem -= fps * k
                best.free_regs -= fpr * k
                state.next_block = bi + k
                if bi + k == run_end:
                    state.run_cursor = ri + 1
                if work <= _EPS:
                    # Zero-work blocks with a floor hold resources until
                    # the floor drains; one linger event covers the chunk
                    # (retirement interleaves per block, see _on_linger).
                    chunk = _Cohort(state, floor, now, 0.0)
                    chunk.indices.extend(range(bi, bi + k))
                    self._push_event(now + floor, "linger_done",
                                     (best, chunk))
                else:
                    key = (best.index, state.serial, work, floor)
                    cohort = pending.get(key)
                    if cohort is None:
                        cohort = _Cohort(state, floor, now,
                                         best.virtual + work)
                        pending[key] = cohort
                    cohort.indices.extend(range(bi, bi + k))
                    best.n_serving += k
                    changed_sms.add(best.index)
            if state.next_block < n_blocks:
                leftover.append(state)
        for (sm_index, _serial, _work, _floor), cohort in pending.items():
            self._seq += 1
            sm = self.sms[sm_index]
            heapq.heappush(sm.serving, (cohort.target_v, self._seq, cohort))
            sm.version += 1
        # Anything that became ready while dispatching stays queued for the
        # next pass (the caller loops until no progress).
        self.ready_list.extend(leftover)
        for i in changed_sms:
            self._schedule_sm_check(self.sms[i])
        if progress:
            self._dispatch_dirty = True
        return progress

    def _place_vectorized(self, state, fp, ends, works, floors, now,
                          pending, changed_sms) -> bool:
        """Merge-path style placement of one launch's remaining blocks.

        Builds the *slot model* of the current SM state: SM ``i`` with
        free warps ``W_i`` offers ``cap_i`` admission slots at descending
        free-warp levels ``W_i, W_i - fpw, ...``, where ``cap_i`` folds in
        every eligibility cap (warps, block slots, shared memory,
        registers).  Consuming slots in ``(-level, sm index)`` order
        reproduces the serial best/L/R scan exactly: after ``p`` slots are
        consumed, the set of eligible SMs is exactly the set with slots
        left, each at its next slot's level, so the serial scan winner is
        the owner of slot ``p`` — and the serial chunk bound ``(W - T) //
        fpw + 1`` (absorb while the winner's free warps stay at or above
        ``T = max(L + 1, R)``) is precisely the length of the winner's
        consecutive slot group, tie-break included (equal levels order by
        SM index in both).  One ``lexsort`` over at most ``sum(cap_i)``
        slots — bounded by the device's block-slot topology, not the grid
        — replaces one Python SM scan per chunk.  Placement order, cohort
        grouping, zero-work retires and event sequencing are bit-identical
        to the serial path.

        Returns True when at least one block was placed; stopping with
        blocks remaining means the slots ran dry, i.e. no SM is eligible
        for this footprint any more (the caller marks it failed).
        """
        sms = self.sms
        n_sms = len(sms)
        fpw, fps, fpr = fp.warps, fp.smem, fp.regs
        warps = np.fromiter((sm.free_warps for sm in sms), np.int64, n_sms)
        slot_cap = warps // fpw
        np.minimum(
            slot_cap,
            np.fromiter((sm.free_blocks for sm in sms), np.int64, n_sms),
            out=slot_cap,
        )
        if fps:
            np.minimum(
                slot_cap,
                np.fromiter((sm.free_smem for sm in sms), np.int64, n_sms)
                // fps,
                out=slot_cap,
            )
        if fpr:
            np.minimum(
                slot_cap,
                np.fromiter((sm.free_regs for sm in sms), np.int64, n_sms)
                // fpr,
                out=slot_cap,
            )
        np.maximum(slot_cap, 0, out=slot_cap)
        elig = np.flatnonzero(slot_cap)
        if elig.size == 0:
            return False
        self._vector_scans += 1
        counts = slot_cap[elig]
        n_slots = int(counts.sum())
        sm_ids = np.repeat(elig, counts)
        first = np.cumsum(counts) - counts
        steps = np.arange(n_slots, dtype=np.int64) - np.repeat(first, counts)
        levels = np.repeat(warps[elig], counts) - steps * fpw
        order = np.lexsort((sm_ids, -levels))
        slot_sm = sm_ids[order]
        change = np.empty(n_slots, dtype=bool)
        change[0] = True
        np.not_equal(slot_sm[1:], slot_sm[:-1], out=change[1:])
        grp = np.cumsum(change) - 1
        grp_last = np.flatnonzero(np.append(change[1:], True))
        grp_end = (grp_last[grp] + 1).tolist()
        slot_sm = slot_sm.tolist()

        pos = 0
        progress = False
        serial = state.serial
        n_blocks = state.n_blocks
        while state.next_block < n_blocks and pos < n_slots:
            best = sms[slot_sm[pos]]
            progress = True
            if not state.dispatch_started:
                state.dispatch_started = True
                state.start_time = now
            ri = state.run_cursor
            bi = state.next_block
            run_end = ends[ri]
            work = works[ri]
            floor = floors[ri]
            best.advance(now)
            if work <= _EPS and floor <= _EPS:
                # Zero-work zero-floor run: retires inline on the current
                # winner without consuming a slot (each retire restores
                # exactly what its placement took, so the slot model — and
                # the serial scan it mirrors — is unchanged afterwards).
                for b in range(bi, run_end):
                    state.next_block = b + 1
                    best.free_warps -= fpw
                    best.free_blocks -= 1
                    best.free_smem -= fps
                    best.free_regs -= fpr
                    self._retire_one(best, state, b)
                state.run_cursor = ri + 1
                continue
            k = min(run_end - bi, grp_end[pos] - pos)
            best.free_warps -= fpw * k
            best.free_blocks -= k
            best.free_smem -= fps * k
            best.free_regs -= fpr * k
            state.next_block = bi + k
            if bi + k == run_end:
                state.run_cursor = ri + 1
            pos += k
            if work <= _EPS:
                chunk = _Cohort(state, floor, now, 0.0)
                chunk.indices.extend(range(bi, bi + k))
                self._push_event(now + floor, "linger_done", (best, chunk))
            else:
                key = (best.index, serial, work, floor)
                cohort = pending.get(key)
                if cohort is None:
                    cohort = _Cohort(state, floor, now, best.virtual + work)
                    pending[key] = cohort
                cohort.indices.extend(range(bi, bi + k))
                best.n_serving += k
                changed_sms.add(best.index)
        return progress


# --------------------------------------------------------------------------
# Fused heterogeneous batches: N graphs, one event loop
# --------------------------------------------------------------------------


class _FusedLaneMixin:
    """Lane of a fused run: all simulation state stays lane-local except
    the event heap, which lives on the owning :class:`_FusedSimulation`
    (with a shared sequence counter so same-time events across lanes pop
    in push order).  Per-lane relative event order — the only thing the
    simulation's results depend on — is identical to a standalone run,
    which is what makes fused results bit-exact."""

    _fused_owner: "_FusedSimulation"
    _lane_index: int

    def _push_event(self, time: float, kind: str, payload: object) -> None:
        owner = self._fused_owner
        owner._seq += 1
        heapq.heappush(owner.events,
                       (time, owner._seq, self._lane_index, kind, payload))


class _FusedExactLane(_FusedLaneMixin, _Simulation):
    pass


class _FusedFastLane(_FusedLaneMixin, _FastSimulation):
    pass


class _FusedSimulation:
    """N independent lane simulations draining one shared event heap.

    Lanes keep fully disjoint state — SMs, GMU, clocks, stream queues,
    instances — so fusing changes *which* Python loop pops the events,
    never what any lane computes; results demux per graph bit-identically
    to sequential runs (``tests/test_executor_fused.py``).  The win is
    amortization: one heap drain, one tracing span and one Python-level
    interpreter loop for a whole scheduling window instead of one per
    graph.
    """

    def __init__(
        self,
        config: DeviceConfig,
        graphs: list[LaunchGraph],
        record_timeline: bool,
        max_instances: int,
        engine: str,
    ) -> None:
        lane_cls = _FusedFastLane if engine == "fast" else _FusedExactLane
        self.events: list[tuple] = []
        self._seq = 0
        self.lanes = []
        for i, graph in enumerate(graphs):
            lane = lane_cls(config, graph, record_timeline, max_instances)
            lane._fused_owner = self
            lane._lane_index = i
            self.lanes.append(lane)

    def run(self) -> list[ExecutionResult]:
        lanes = self.lanes
        for lane in lanes:
            lane._begin()
        events = self.events
        while events:
            time, _, lane_index, kind, payload = heapq.heappop(events)
            lanes[lane_index]._handle(time, kind, payload)
        return [lane._finalize() for lane in lanes]
