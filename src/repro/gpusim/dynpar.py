"""Dynamic-parallelism helpers for template authors.

The executor implements the mechanics of nested launches (GMU queue,
latency, pool, per-stream serialization); this module provides what the
*parent* kernel must account for — the cycles its threads spend issuing
nested launches — plus validation and aggregate overhead estimation used
by the analysis in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LaunchError
from repro.gpusim.config import DeviceConfig, supports_dynamic_parallelism

__all__ = [
    "require_device_support",
    "issue_cost_cycles",
    "DynParOverheadEstimate",
    "estimate_bulk_overhead",
]


def require_device_support(config: DeviceConfig, template_name: str) -> None:
    """Raise if the device cannot perform nested kernel launches.

    Mirrors the paper's motivation for the dbuf templates: they provide
    the same load balancing "also for devices that do not support nested
    kernel invocations".
    """
    if not supports_dynamic_parallelism(config):
        raise LaunchError(
            f"template {template_name!r} requires dynamic parallelism, but "
            f"{config.name} (cc {config.compute_capability[0]}."
            f"{config.compute_capability[1]}) does not support nested launches; "
            "use a delayed-buffer template instead"
        )


def issue_cost_cycles(config: DeviceConfig, n_launches: int) -> float:
    """Cycles a parent thread/block spends issuing ``n_launches`` children.

    Parameter marshalling, stream selection and enqueueing into the
    pending-launch pool all happen on the *parent's* clock — a first-order
    reason dpar-naive underperforms when every thread launches.
    """
    if n_launches < 0:
        raise LaunchError("n_launches cannot be negative")
    return n_launches * config.device_launch_issue_cycles


@dataclass(frozen=True)
class DynParOverheadEstimate:
    """Closed-form overhead of a bulk nested-launch wave."""

    n_launches: int
    issue_cycles: float
    gmu_drain_us: float
    latency_us: float
    pool_overflow: bool

    @property
    def total_us_lower_bound(self) -> float:
        """Launch-machinery time even if children did zero work."""
        return self.gmu_drain_us + self.latency_us


def estimate_bulk_overhead(
    config: DeviceConfig, n_launches: int
) -> DynParOverheadEstimate:
    """Estimate the launch-machinery cost of ``n_launches`` nested grids.

    Used by the EXPERIMENTS analysis to sanity-check executor output: a
    quarter-million nested launches (the paper's rec-naive at outdegree
    512) cost seconds in GMU drain alone regardless of the work inside.
    """
    if n_launches < 0:
        raise LaunchError("n_launches cannot be negative")
    drain_us = n_launches / config.device_launch_throughput_per_us
    return DynParOverheadEstimate(
        n_launches=n_launches,
        issue_cycles=issue_cost_cycles(config, n_launches),
        gmu_drain_us=drain_us,
        latency_us=config.device_launch_latency_us,
        pool_overflow=n_launches > config.pending_launch_limit,
    )
