"""Execution timelines: utilization traces and ASCII Gantt rendering.

The executor optionally records per-launch start/end times
(``GpuExecutor(record_timeline=True)``).  This module turns those records
into the views the paper's analysis reasons about: when did nested
launches actually run relative to their parents, how much of the run was
spent with the device idle waiting on launch machinery, and what the
kernel-level concurrency looked like over time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.gpusim.executor import ExecutionResult, LaunchRecord

__all__ = ["Timeline", "build_timeline"]


@dataclass
class Timeline:
    """Sorted launch records plus derived aggregate views."""

    records: list[LaunchRecord]
    makespan_cycles: float

    # ------------------------------------------------------------ aggregates
    @property
    def n_launches(self) -> int:
        """Number of recorded launches."""
        return len(self.records)

    @property
    def device_launch_fraction(self) -> float:
        """Fraction of launches that were nested (device-side)."""
        if not self.records:
            return 0.0
        return sum(r.device for r in self.records) / len(self.records)

    def concurrency(self, n_bins: int = 64) -> np.ndarray:
        """Average number of in-flight launches per time bin."""
        if n_bins < 1:
            raise WorkloadError("n_bins must be >= 1")
        if not self.records or self.makespan_cycles <= 0:
            return np.zeros(n_bins)
        edges = np.linspace(0.0, self.makespan_cycles, n_bins + 1)
        busy = np.zeros(n_bins)
        starts = np.array([r.start_cycles for r in self.records])
        ends = np.array([r.end_cycles for r in self.records])
        for b in range(n_bins):
            lo, hi = edges[b], edges[b + 1]
            overlap = np.clip(np.minimum(ends, hi) - np.maximum(starts, lo),
                              0.0, None)
            busy[b] = overlap.sum() / max(hi - lo, 1e-12)
        return busy

    def idle_fraction(self, n_bins: int = 256) -> float:
        """Fraction of the makespan with no launch in flight.

        Launch-machinery gaps (host overhead, GMU latency, stream
        serialization) show up here — it is the dpar-naive signature.
        """
        return float((self.concurrency(n_bins) <= 1e-9).mean())

    # ------------------------------------------------------------- rendering
    def gantt(self, width: int = 72, max_rows: int = 24) -> str:
        """Render the timeline as an ASCII Gantt chart.

        One row per launch ('=' spans its lifetime; host launches are
        upper-case 'H', device launches 'd' at the start marker).  Long
        timelines are truncated to ``max_rows`` rows.
        """
        if width < 10:
            raise WorkloadError("width must be >= 10")
        if not self.records:
            return "(empty timeline)\n"
        span = max(self.makespan_cycles, 1e-9)
        lines = []
        shown = self.records[:max_rows]
        name_w = min(24, max(len(r.name) for r in shown))
        for rec in shown:
            lo = int(rec.start_cycles / span * (width - 1))
            hi = max(int(rec.end_cycles / span * (width - 1)), lo)
            row = [" "] * width
            for i in range(lo, hi + 1):
                row[i] = "="
            row[lo] = "d" if rec.device else "H"
            lines.append(f"{rec.name[:name_w]:{name_w}s} |{''.join(row)}|")
        if len(self.records) > max_rows:
            lines.append(f"... {len(self.records) - max_rows} more launches")
        return "\n".join(lines) + "\n"


def build_timeline(result: ExecutionResult) -> Timeline:
    """Build a :class:`Timeline` from an execution result.

    Requires the executor to have been created with
    ``record_timeline=True``.
    """
    if result.n_launches > 0 and not result.records:
        raise WorkloadError(
            "execution has no launch records; run the executor with "
            "record_timeline=True"
        )
    records = sorted(result.records, key=lambda r: r.start_cycles)
    return Timeline(records=records, makespan_cycles=result.cycles)
