"""Visual-Profiler-style metric extraction and reporting.

The paper backs its analysis with Nvidia Visual Profiler metrics: *warp
execution efficiency* (Tables I, II), *gld/gst efficiency* (Table I),
*warp occupancy* (dbuf-shared vs dbuf-global discussion) and counts of
atomic operations and kernel calls (Figs. 5, 7(c), 8(c)).  This module
computes the same metrics from a launch graph and its execution result and
renders them as a report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.gpusim.config import DeviceConfig
from repro.gpusim.executor import ExecutionResult
from repro.gpusim.kernels import LaunchGraph, ProfileCounters

__all__ = ["ProfileMetrics", "profile", "format_metrics_table"]


@dataclass(frozen=True)
class ProfileMetrics:
    """The profiler metrics the paper reports, for one run."""

    #: ratio of average active threads per warp to the warp width
    warp_execution_efficiency: float
    #: requested over transferred global-load bytes
    gld_efficiency: float
    #: requested over transferred global-store bytes
    gst_efficiency: float
    #: average resident warps per active cycle over the warp capacity
    warp_occupancy: float
    #: number of global atomic operations performed
    atomic_ops: int
    #: kernel invocations (host + device)
    kernel_calls: int
    #: nested (dynamic parallelism) kernel invocations
    device_kernel_calls: int
    #: end-to-end execution time (milliseconds)
    time_ms: float
    #: fraction of SM-cycles the device was busy
    sm_utilization: float

    def as_dict(self) -> dict[str, float]:
        """Metrics as a plain dict (for tables/serialization)."""
        return {
            "warp_execution_efficiency": self.warp_execution_efficiency,
            "gld_efficiency": self.gld_efficiency,
            "gst_efficiency": self.gst_efficiency,
            "warp_occupancy": self.warp_occupancy,
            "atomic_ops": self.atomic_ops,
            "kernel_calls": self.kernel_calls,
            "device_kernel_calls": self.device_kernel_calls,
            "time_ms": self.time_ms,
            "sm_utilization": self.sm_utilization,
        }


def _weighted_occupancy(graph: LaunchGraph, config: DeviceConfig) -> float:
    """Work-weighted achieved occupancy across all launches.

    Each launch contributes its cost-model resident-warp estimate weighted
    by the SM-cycles it executes; this mirrors the profiler's "average
    active warps per active cycle / maximum warps" definition.
    """
    weighted = 0.0
    weight = 0.0
    for launch in graph.launches:
        work = launch.costs.total_cycles * launch.count
        if work <= 0 or launch.resident_warps_hint <= 0:
            continue
        weighted += launch.resident_warps_hint * work
        weight += work
    if weight == 0:
        return 0.0
    return (weighted / weight) / config.max_warps_per_sm


def profile(
    graph: LaunchGraph,
    result: ExecutionResult,
    config: DeviceConfig,
) -> ProfileMetrics:
    """Extract paper-grade metrics from an executed launch graph."""
    with obs.span("gpusim.profile", launches=len(graph.launches)):
        return _profile(graph, result, config)


def _profile(
    graph: LaunchGraph,
    result: ExecutionResult,
    config: DeviceConfig,
) -> ProfileMetrics:
    counters: ProfileCounters = result.counters
    return ProfileMetrics(
        warp_execution_efficiency=counters.warp.warp_execution_efficiency,
        gld_efficiency=min(1.0, counters.load_traffic.efficiency),
        gst_efficiency=min(1.0, counters.store_traffic.efficiency),
        warp_occupancy=_weighted_occupancy(graph, config),
        atomic_ops=counters.atomic.n_atomics,
        kernel_calls=result.n_launches,
        device_kernel_calls=result.n_device_launches,
        time_ms=result.time_ms,
        sm_utilization=result.sm_utilization,
    )


def format_metrics_table(rows: dict[str, ProfileMetrics]) -> str:
    """Render named metric rows as an ASCII table (Table-I style)."""
    headers = [
        "variant", "warp eff", "gld eff", "gst eff",
        "occupancy", "atomics", "kcalls",
    ]
    lines = []
    body = []
    for name, m in rows.items():
        body.append([
            name,
            f"{m.warp_execution_efficiency * 100:5.1f}%",
            f"{m.gld_efficiency * 100:5.1f}%",
            f"{m.gst_efficiency * 100:5.1f}%",
            f"{m.warp_occupancy * 100:5.1f}%",
            _si(m.atomic_ops),
            _si(m.kernel_calls),
        ])
    widths = [max(len(h), *(len(r[i]) for r in body)) if body else len(h)
              for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _si(value: int) -> str:
    """Compact count formatting like the paper's tables (1.0k, 0.26m)."""
    if value >= 1_000_000:
        return f"{value / 1e6:.2f}m"
    if value >= 1_000:
        return f"{value / 1e3:.1f}k"
    return str(value)
