"""Atomic-operation serialization model.

Global atomics on Kepler are performed by the L2/atomic units; lanes of a
warp targeting the *same* address serialize, and across warps a heavily
contended ("hot") address serializes the whole kernel tail.  Atomics are
what make the paper's flat tree-traversal kernels saturate (Fig. 7/8) and
what sink the recursive BFS variants (Fig. 9), so the model needs both an
intra-warp conflict term and a global hot-address term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.gpusim.config import DeviceConfig
from repro.gpusim.warps import WarpShape

__all__ = [
    "AtomicStats",
    "warp_atomic_cycles",
    "hot_address_degree",
    "grouped_conflict_degree",
    "flat_atomic_cycles",
]


@dataclass
class AtomicStats:
    """Aggregate atomic counters for a launch (profiler-visible)."""

    n_atomics: int = 0
    #: largest number of atomics aimed at one address within the launch
    max_address_multiplicity: int = 0
    #: cycles charged on the critical path for the hottest address
    hot_serialization_cycles: float = 0.0

    def merge(self, other: "AtomicStats") -> None:
        """Fold another record into this one."""
        self.n_atomics += other.n_atomics
        self.max_address_multiplicity = max(
            self.max_address_multiplicity, other.max_address_multiplicity
        )
        self.hot_serialization_cycles += other.hot_serialization_cycles


def grouped_conflict_degree(shape: WarpShape) -> np.ndarray:
    """Per-warp maximum same-address multiplicity for one atomic access.

    ``shape.values`` holds the target addresses (any consistent unit —
    conflicts are equality-based); inactive lanes never conflict.  Returns
    an ``(n_warps,)`` int64 array of the worst run length per warp (0 for
    warps with no active lane).
    """
    values = np.asarray(shape.values, dtype=np.int64)
    active = np.asarray(shape.active, dtype=bool)
    if values.shape != active.shape or values.ndim != 2:
        raise WorkloadError("shape.values and shape.active must be matching 2-D arrays")
    if values.size == 0:
        return np.zeros(values.shape[0], dtype=np.int64)
    n_warps, lanes = values.shape
    # Give every inactive lane a unique sentinel below any valid address so
    # inactive lanes can never form a run.
    lane_idx = np.arange(lanes, dtype=np.int64)[None, :]
    lowest = values.min() if values.size else 0
    sentinel = (lowest - 1) - lane_idx  # distinct per lane
    keyed = np.where(active, values, sentinel)
    ordered = np.sort(keyed, axis=1)
    idx = np.broadcast_to(np.arange(lanes, dtype=np.int64), ordered.shape)
    change = np.ones_like(ordered, dtype=bool)
    change[:, 1:] = ordered[:, 1:] != ordered[:, :-1]
    last_change = np.maximum.accumulate(np.where(change, idx, -1), axis=1)
    run_len = idx - last_change + 1
    # Sentinels are pairwise distinct, so their runs have length 1 and never
    # dominate; a warp with no active lane must still report 0.
    max_run = run_len.max(axis=1)
    has_active = active.any(axis=1)
    return np.where(has_active, max_run, 0).astype(np.int64)


def warp_atomic_cycles(
    shape: WarpShape, config: DeviceConfig
) -> tuple[np.ndarray, AtomicStats]:
    """Cycles each warp spends on one warp-wide atomic access.

    Cost per warp = one atomic issue (``atomic_cycles``) plus
    ``atomic_conflict_cycles`` for every extra lane serialized behind the
    most contended address in the warp.
    """
    degree = grouped_conflict_degree(shape)
    active_counts = np.asarray(shape.active, dtype=np.int64).sum(axis=1)
    cycles = np.where(
        active_counts > 0,
        config.atomic_cycles + (degree - 1).clip(min=0) * config.atomic_conflict_cycles,
        0,
    ).astype(np.float64)
    values = np.asarray(shape.values, dtype=np.int64)
    flat = values[np.asarray(shape.active, dtype=bool)]
    stats = AtomicStats(
        n_atomics=int(active_counts.sum()),
        max_address_multiplicity=hot_address_degree(flat),
    )
    return cycles, stats


def flat_atomic_cycles(
    agg_ids: np.ndarray,
    group_ids: np.ndarray,
    addresses: np.ndarray,
    n_agg: int,
    config: DeviceConfig,
) -> tuple[np.ndarray, AtomicStats]:
    """Atomic serialization cost for a flat access stream, in one pass.

    Each entry is one atomic issued at issue slot ``group_ids[k]`` (a
    (warp, loop-step) pair encoded by the caller), aggregated into bucket
    ``agg_ids[k]`` (the warp).  Within one group, lanes hitting the same
    address serialize: the group's cost is
    ``atomic_cycles + (max multiplicity - 1) * atomic_conflict_cycles``.
    Returns per-bucket cycles and launch-wide stats — the flat-stream twin
    of :func:`warp_atomic_cycles`, sized for whole-loop-nest traces.
    """
    agg_ids = np.asarray(agg_ids, dtype=np.int64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    addresses = np.asarray(addresses, dtype=np.int64)
    if not (agg_ids.shape == group_ids.shape == addresses.shape) or agg_ids.ndim != 1:
        raise WorkloadError(
            "agg_ids, group_ids and addresses must be 1-D arrays of equal length"
        )
    if n_agg < 0:
        raise WorkloadError("n_agg cannot be negative")
    cycles = np.zeros(n_agg, dtype=np.float64)
    if agg_ids.size == 0:
        return cycles, AtomicStats()
    if np.any(agg_ids >= n_agg) or np.any(agg_ids < 0) or np.any(group_ids < 0):
        raise WorkloadError("ids out of range")
    if np.any(addresses < 0):
        raise WorkloadError("atomic addresses cannot be negative")

    order = np.lexsort((addresses, group_ids))
    g = group_ids[order]
    a = addresses[order]
    # run lengths of equal (group, address)
    new_pair = np.ones(g.size, dtype=bool)
    new_pair[1:] = (g[1:] != g[:-1]) | (a[1:] != a[:-1])
    pair_starts = np.flatnonzero(new_pair)
    pair_lengths = np.diff(np.append(pair_starts, g.size))
    pair_group = g[pair_starts]
    # per group: max multiplicity
    new_group = np.ones(pair_group.size, dtype=bool)
    new_group[1:] = pair_group[1:] != pair_group[:-1]
    group_starts = np.flatnonzero(new_group)
    max_mult = np.maximum.reduceat(pair_lengths, group_starts)
    group_cost = (
        config.atomic_cycles
        + (max_mult - 1).clip(min=0) * config.atomic_conflict_cycles
    )
    agg_of_group = agg_ids[order][pair_starts[group_starts]]
    np.add.at(cycles, agg_of_group, group_cost)
    stats = AtomicStats(
        n_atomics=int(addresses.size),
        max_address_multiplicity=hot_address_degree(addresses),
    )
    return cycles, stats


def hot_address_degree(addresses: np.ndarray) -> int:
    """Largest multiplicity of a single address in a flat access stream."""
    addresses = np.asarray(addresses)
    if addresses.size == 0:
        return 0
    _, counts = np.unique(addresses, return_counts=True)
    return int(counts.max())
