"""Global-memory coalescing model.

Kepler GPUs service a warp's global loads/stores by breaking the 32 lane
addresses into aligned memory segments (128 bytes through L1).  The number
of segments actually transferred, versus the bytes the warp requested, is
what the Visual Profiler reports as *gld/gst efficiency* — two of the three
metrics in the paper's Table I.

This module computes segment counts **exactly** from lane address arrays,
fully vectorized: callers hand in an ``(n_warps, warp_size)`` byte-address
matrix plus an activity mask and get per-warp transaction counts back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "segment_transactions",
    "transactions_for_flat",
    "contiguous_transactions",
    "transaction_counts",
    "MemoryTraffic",
]


@dataclass
class MemoryTraffic:
    """Aggregate result of a set of warp-level memory accesses.

    ``requested_bytes`` is what the active lanes asked for;
    ``transferred_bytes`` is ``transactions * segment_bytes``.  Their ratio
    is the load/store efficiency metric reported by the profiler.
    """

    requested_bytes: int = 0
    transactions: int = 0
    segment_bytes: int = 128

    @property
    def transferred_bytes(self) -> int:
        """Bytes actually moved across the memory interface."""
        return self.transactions * self.segment_bytes

    @property
    def efficiency(self) -> float:
        """Requested / transferred bytes (1.0 = perfectly coalesced)."""
        if self.transactions == 0:
            return 1.0
        return self.requested_bytes / self.transferred_bytes

    def merge(self, other: "MemoryTraffic") -> "MemoryTraffic":
        """Combine two traffic records (segment sizes must agree;
        an empty record adopts the other's segment size)."""
        if self.requested_bytes == 0 and self.transactions == 0:
            return MemoryTraffic(
                other.requested_bytes, other.transactions, other.segment_bytes
            )
        if other.requested_bytes == 0 and other.transactions == 0:
            return MemoryTraffic(
                self.requested_bytes, self.transactions, self.segment_bytes
            )
        if other.segment_bytes != self.segment_bytes:
            raise WorkloadError(
                "cannot merge MemoryTraffic with different segment sizes "
                f"({self.segment_bytes} vs {other.segment_bytes})"
            )
        return MemoryTraffic(
            requested_bytes=self.requested_bytes + other.requested_bytes,
            transactions=self.transactions + other.transactions,
            segment_bytes=self.segment_bytes,
        )


def segment_transactions(
    addresses: np.ndarray,
    active: np.ndarray | None = None,
    segment_bytes: int = 128,
) -> np.ndarray:
    """Per-warp transaction counts for one warp-wide access.

    Parameters
    ----------
    addresses:
        ``(n_warps, lanes)`` integer byte addresses, one row per warp.
    active:
        optional boolean mask of the same shape; inactive lanes issue no
        address.  Defaults to all-active.
    segment_bytes:
        memory segment size (128 for Kepler L1-cached accesses).

    Returns
    -------
    ``(n_warps,)`` int64 array: number of distinct segments each warp
    touches (0 for fully inactive warps).
    """
    addresses = np.asarray(addresses)
    if addresses.ndim != 2:
        raise WorkloadError(
            f"addresses must be 2-D (warps x lanes), got shape {addresses.shape}"
        )
    if segment_bytes <= 0:
        raise WorkloadError(f"segment_bytes must be positive, got {segment_bytes}")
    if addresses.size == 0:
        return np.zeros(addresses.shape[0], dtype=np.int64)
    if np.any(addresses < 0):
        raise WorkloadError("negative byte addresses are invalid")

    segments = addresses // segment_bytes
    if active is not None:
        active = np.asarray(active, dtype=bool)
        if active.shape != addresses.shape:
            raise WorkloadError(
                f"active mask shape {active.shape} does not match addresses "
                f"shape {addresses.shape}"
            )
        # Send inactive lanes to a sentinel that sorts first and is never a
        # valid segment id.
        segments = np.where(active, segments, np.int64(-1))
    else:
        segments = segments.astype(np.int64, copy=False)

    ordered = np.sort(segments, axis=1)
    # A segment is counted where it differs from its left neighbour; the
    # first column counts iff it is a real (non-sentinel) segment.
    first = (ordered[:, :1] >= 0).astype(np.int64)
    diffs = (ordered[:, 1:] != ordered[:, :-1]) & (ordered[:, 1:] >= 0)
    return first[:, 0] + diffs.sum(axis=1, dtype=np.int64)


def transactions_for_flat(
    addresses: np.ndarray,
    lanes_per_warp: int = 32,
    segment_bytes: int = 128,
) -> np.ndarray:
    """Transaction counts for a flat address stream chunked into warps.

    ``addresses`` is a 1-D array of byte addresses issued by consecutive
    lanes; lane ``k`` belongs to warp ``k // lanes_per_warp``.  The trailing
    partial warp is padded with inactive lanes.
    """
    addresses = np.asarray(addresses)
    if addresses.ndim != 1:
        raise WorkloadError(f"addresses must be 1-D, got shape {addresses.shape}")
    n = addresses.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    n_warps = -(-n // lanes_per_warp)
    padded = np.zeros(n_warps * lanes_per_warp, dtype=np.int64)
    padded[:n] = addresses
    active = np.zeros(n_warps * lanes_per_warp, dtype=bool)
    active[:n] = True
    return segment_transactions(
        padded.reshape(n_warps, lanes_per_warp),
        active.reshape(n_warps, lanes_per_warp),
        segment_bytes,
    )


def transaction_counts(
    agg_ids: np.ndarray,
    group_ids: np.ndarray,
    addresses: np.ndarray | None,
    n_agg: int,
    segment_bytes: int = 128,
    agg_divisor: int | None = None,
    segments: np.ndarray | None = None,
    spans: tuple[int, int] | None = None,
) -> np.ndarray:
    """Exact transaction counts for an entire loop nest in one pass.

    Each entry describes one lane-level access: ``group_ids[k]`` identifies
    the (warp, loop-step) issue slot the access belongs to, ``agg_ids[k]``
    the bucket to aggregate into (typically the warp or the block), and
    ``addresses[k]`` the byte address.  The hardware coalesces accesses that
    share a *group* into segments, so the transaction count is the number of
    distinct ``(group, segment)`` pairs; this function returns that count
    summed per aggregation bucket as an ``(n_agg,)`` int64 array.

    This closed single-pass formulation is what lets the simulator model
    megabyte-scale CSR traversals exactly without a per-step Python loop.
    ``agg_ids`` must be a function of ``group_ids`` (all accesses of one
    group aggregate to the same bucket), which holds by construction when
    groups are (warp, step) slots and buckets are warps or blocks.

    When the function is the integer division ``agg_id == group_id //
    agg_divisor`` — true for every caller that encodes groups as
    ``agg * n_slots + slot`` — pass ``agg_divisor``: the count can then be
    recovered from a plain value sort of the packed (group, segment) keys,
    which is several times faster than the index-tracking sort the general
    path needs.

    ``segments`` optionally supplies precomputed segment ids (``addresses
    // segment_bytes``) — the workload-analysis stage caches these per
    stream so repeated specializations skip the division over the full
    trace; ``addresses`` may then be None.

    ``spans`` optionally supplies trusted ``(group_span, seg_span)`` upper
    bounds (every group id < group_span, every segment id < seg_span).
    The counts are independent of the exact span values, so callers that
    know the bounds from the mapping structure (``n_warps * slots``) and
    the analysis artifact skip six full-trace reductions of validation and
    span discovery; the inputs are then trusted to be non-negative.
    """
    agg_ids = np.asarray(agg_ids, dtype=np.int64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if segments is None:
        if addresses is None:
            raise WorkloadError("either addresses or segments is required")
        values = np.asarray(addresses, dtype=np.int64)
    else:
        values = np.asarray(segments, dtype=np.int64)
    if not (agg_ids.shape == group_ids.shape == values.shape) or agg_ids.ndim != 1:
        raise WorkloadError(
            "agg_ids, group_ids and addresses must be 1-D arrays of equal length"
        )
    if n_agg < 0:
        raise WorkloadError("n_agg cannot be negative")
    if agg_divisor is not None and agg_divisor <= 0:
        raise WorkloadError("agg_divisor must be positive")
    if agg_ids.size == 0:
        return np.zeros(n_agg, dtype=np.int64)
    if spans is None:
        # min/max reductions instead of np.any(x < 0): no boolean
        # temporaries on these million-entry traces, and the maxima are
        # needed below anyway.
        if int(values.min()) < 0 or int(group_ids.min()) < 0 or int(agg_ids.min()) < 0:
            raise WorkloadError("ids and addresses must be non-negative")
        if int(agg_ids.max()) >= n_agg:
            raise WorkloadError("agg_ids out of range for n_agg")

    segments = values // segment_bytes if segments is None else values
    if spans is not None:
        group_span, seg_span = int(spans[0]), int(spans[1])
    else:
        seg_span = int(segments.max()) + 1
        group_span = int(group_ids.max()) + 1
    if group_span * seg_span < 2**62:
        keys = group_ids * seg_span + segments
        if agg_divisor is not None:
            ordered = np.sort(keys)
            is_first = np.empty(ordered.shape[0], dtype=bool)
            is_first[0] = True
            np.not_equal(ordered[1:], ordered[:-1], out=is_first[1:])
            agg_of_key = ordered[is_first] // (seg_span * agg_divisor)
            return np.bincount(agg_of_key, minlength=n_agg).astype(np.int64)
        _, first_index = np.unique(keys, return_index=True)
    else:  # fall back to lexicographic unique on the pair
        order = np.lexsort((segments, group_ids))
        g, s = group_ids[order], segments[order]
        is_first = np.ones(g.shape[0], dtype=bool)
        is_first[1:] = (g[1:] != g[:-1]) | (s[1:] != s[:-1])
        first_index = order[is_first]
    return np.bincount(agg_ids[first_index], minlength=n_agg).astype(np.int64)


def contiguous_transactions(
    n_elements: int | np.ndarray,
    element_bytes: int = 4,
    lanes_per_warp: int = 32,
    segment_bytes: int = 128,
) -> np.ndarray:
    """Transactions for warps reading ``n_elements`` consecutive elements.

    This is the closed form for a perfectly coalesced access starting at an
    aligned base: each full warp of lanes covers
    ``lanes_per_warp * element_bytes`` bytes, i.e.
    ``ceil(lanes * element_bytes / segment_bytes)`` segments.  ``n_elements``
    may be an array (one entry per warp-group of work).

    Returns the total transaction count per entry, as int64.
    """
    n = np.atleast_1d(np.asarray(n_elements, dtype=np.int64))
    if np.any(n < 0):
        raise WorkloadError("element counts cannot be negative")
    if element_bytes <= 0 or lanes_per_warp <= 0:
        raise WorkloadError("element_bytes and lanes_per_warp must be positive")
    full_warps = n // lanes_per_warp
    rem = n % lanes_per_warp
    per_full_warp = -(-(lanes_per_warp * element_bytes) // segment_bytes)
    rem_tx = -(-(rem * element_bytes) // segment_bytes)
    out = full_warps * per_full_warp + rem_tx
    if np.isscalar(n_elements):
        return out  # still an array of length 1 for API consistency
    return out
