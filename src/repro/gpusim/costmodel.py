"""Cycle cost model: from traces to per-block SM-cycles.

:class:`KernelCostBuilder` is the single entry point templates use to cost
a kernel.  They feed it the *mechanistic* ingredients — per-lane trip
counts (divergence), exact transaction counts (coalescing), atomic target
addresses (contention) — and it produces a :class:`~repro.gpusim.kernels.Launch`
whose per-block work is expressed in SM-cycles:

* compute: issued warp-steps x instructions / (SM warp throughput);
* memory: transactions x effective segment cycles, where the effective
  cost rises above the bandwidth floor when too few warps are resident to
  hide DRAM latency (this is what makes tiny dynamic-parallelism child
  grids expensive per unit of work);
* atomics: per-warp conflict serialization, plus a kernel-wide serial tail
  for the hottest address (same-address RMW throughput).
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.errors import WorkloadError
from repro.gpusim.atomics import AtomicStats, warp_atomic_cycles
from repro.gpusim.coalesce import MemoryTraffic
from repro.gpusim.config import DeviceConfig
from repro.gpusim.kernels import HOST, KernelCosts, Launch, ProfileCounters
from repro.gpusim.occupancy import occupancy
from repro.gpusim.warps import WarpExecStats, WarpShape, divergence_steps, form_warps

__all__ = ["effective_segment_cycles", "resident_warps_estimate", "KernelCostBuilder"]


def resident_warps_estimate(
    config: DeviceConfig,
    block_size: int,
    n_blocks: int,
    registers_per_thread: int = 24,
    shared_mem_per_block: int = 0,
    concurrent_grids: int = 1,
) -> float:
    """Expected warps resident per SM while the kernel runs.

    Bounded above by the occupancy limit and below by one warp; scaled by
    how many blocks the grid (times any concurrently executing sibling
    grids, e.g. dynamic-parallelism children) can actually spread over the
    SMs.  Small grids under-fill the device and expose memory latency.
    """
    occ = occupancy(config, block_size, registers_per_thread, shared_mem_per_block)
    siblings = max(1, min(concurrent_grids, config.max_concurrent_kernels))
    blocks_available = n_blocks * siblings
    blocks_per_sm = min(occ.blocks_per_sm, math.ceil(blocks_available / config.sm_count))
    return max(1.0, blocks_per_sm * occ.warps_per_block)


def effective_segment_cycles(config: DeviceConfig, resident_warps: float) -> float:
    """SM-cycles per 128B segment given the resident-warp count.

    ``max(bandwidth floor, latency / outstanding requests)``: with enough
    warps in flight the memory system is bandwidth-bound; a lone warp pays
    (most of) the raw DRAM latency per dependent access.
    """
    if resident_warps <= 0:
        raise WorkloadError("resident_warps must be positive")
    outstanding = resident_warps * config.memory_parallelism_per_warp
    return max(config.cycles_per_segment, config.dram_latency_cycles / outstanding)


@dataclass
class _WarpArrays:
    compute_slots: np.ndarray  # issued warp-steps x insts, per warp
    mem_transactions: np.ndarray
    atomic_cycles: np.ndarray


class KernelCostBuilder:
    """Accumulates the cost of one kernel and emits a :class:`Launch`.

    Threads are identified by their *linear id* (block-major); the builder
    handles warp formation, padding at block boundaries, and per-warp /
    per-block aggregation.  All ``add_*`` methods are vectorized over the
    whole grid.
    """

    def __init__(
        self,
        config: DeviceConfig,
        name: str,
        block_size: int,
        n_blocks: int,
        registers_per_thread: int = 24,
        shared_mem_per_block: int = 0,
        concurrent_grids: int = 1,
    ) -> None:
        if n_blocks <= 0:
            raise WorkloadError(f"kernel {name!r} needs at least one block")
        self.config = config
        self.name = name
        self.block_size = block_size
        self.n_blocks = n_blocks
        self.registers_per_thread = registers_per_thread
        self.shared_mem_per_block = shared_mem_per_block
        self.concurrent_grids = concurrent_grids

        self.warps_per_block = -(-block_size // config.warp_size)
        self.n_warps = n_blocks * self.warps_per_block
        self._arrays = _WarpArrays(
            compute_slots=np.zeros(self.n_warps, dtype=np.float64),
            mem_transactions=np.zeros(self.n_warps, dtype=np.float64),
            atomic_cycles=np.zeros(self.n_warps, dtype=np.float64),
        )
        self.counters = ProfileCounters(
            warp=WarpExecStats(warp_size=config.warp_size)
        )
        self.counters.load_traffic.segment_bytes = config.mem_segment_bytes
        self.counters.store_traffic.segment_bytes = config.mem_segment_bytes
        self._serial_tail = 0.0
        self._resident_warps = resident_warps_estimate(
            config, block_size, n_blocks, registers_per_thread,
            shared_mem_per_block, concurrent_grids,
        )
        self._segment_cycles = effective_segment_cycles(config, self._resident_warps)

    # ------------------------------------------------------------------ utils
    @property
    def n_threads(self) -> int:
        """Linear threads in the grid (block_size x n_blocks)."""
        return self.block_size * self.n_blocks

    @property
    def resident_warps(self) -> float:
        """Resident-warp estimate used for the latency model."""
        return self._resident_warps

    def warp_of_thread(self, thread_ids: np.ndarray) -> np.ndarray:
        """Map linear thread ids to global warp ids (block-boundary aware)."""
        thread_ids = np.asarray(thread_ids, dtype=np.int64)
        if thread_ids.size and (
            thread_ids.min() < 0 or thread_ids.max() >= self.n_threads
        ):
            raise WorkloadError("thread ids out of range for this grid")
        warp_size = self.config.warp_size
        if self.block_size % warp_size == 0:
            # Blocks are whole warps, so block boundaries coincide with warp
            # boundaries and the mapping collapses to one division.
            return thread_ids // warp_size
        block = thread_ids // self.block_size
        lane = thread_ids % self.block_size
        return block * self.warps_per_block + lane // warp_size

    def _form(self, per_thread: np.ndarray) -> WarpShape:
        """Warp-shape a per-linear-thread array, respecting block padding."""
        per_thread = np.asarray(per_thread)
        if per_thread.shape[0] > self.n_threads:
            raise WorkloadError(
                f"{per_thread.shape[0]} per-thread values exceed grid size "
                f"{self.n_threads}"
            )
        if per_thread.shape[0] < self.n_threads:
            padded = np.zeros(self.n_threads, dtype=per_thread.dtype)
            padded[: per_thread.shape[0]] = per_thread
            per_thread = padded
        return form_warps(per_thread, self.config.warp_size, self.block_size)

    # ---------------------------------------------------------------- compute
    def add_uniform(self, n_threads: int | None = None, insts: float = 1.0) -> None:
        """Non-divergent straight-line work by the first ``n_threads``."""
        if n_threads is None:
            n_threads = self.n_threads
        if n_threads < 0 or n_threads > self.n_threads:
            raise WorkloadError("n_threads out of range for this grid")
        if n_threads == 0 or insts <= 0:
            return
        flags = np.zeros(self.n_threads, dtype=np.int64)
        flags[:n_threads] = 1
        shape = self._form(flags)
        issued, active = divergence_steps(shape)
        self._arrays.compute_slots += issued * insts
        self.counters.warp.add_counts(
            int(issued.sum() * insts), int(active.sum() * insts)
        )

    def add_loop(self, trip_counts: np.ndarray, insts_per_iter: float | None = None) -> None:
        """A divergent inner loop: ``trip_counts[t]`` iterations by linear
        thread ``t``; each iteration costs ``insts_per_iter`` issued
        instructions (default: ``config.loop_overhead_insts``)."""
        if insts_per_iter is None:
            insts_per_iter = self.config.loop_overhead_insts
        if insts_per_iter < 0:
            raise WorkloadError("insts_per_iter cannot be negative")
        shape = self._form(np.asarray(trip_counts, dtype=np.int64))
        issued, active = divergence_steps(shape)
        self._arrays.compute_slots += issued * insts_per_iter
        self.counters.warp.add_counts(
            int(round(issued.sum() * insts_per_iter)),
            int(round(active.sum() * insts_per_iter)),
        )

    # ----------------------------------------------------------------- memory
    def add_traffic(
        self,
        tx_per_warp: np.ndarray,
        requested_bytes: int,
        kind: str = "load",
    ) -> None:
        """Account global-memory transactions (from the coalescing model).

        ``tx_per_warp`` is ``(n_warps,)``; ``requested_bytes`` the bytes the
        active lanes asked for across the whole access stream.
        """
        tx_per_warp = np.asarray(tx_per_warp, dtype=np.float64)
        if tx_per_warp.shape != (self.n_warps,):
            raise WorkloadError(
                f"tx_per_warp must have shape ({self.n_warps},), "
                f"got {tx_per_warp.shape}"
            )
        if requested_bytes < 0:
            raise WorkloadError("requested_bytes cannot be negative")
        self._arrays.mem_transactions += tx_per_warp
        traffic = MemoryTraffic(
            requested_bytes=int(requested_bytes),
            transactions=int(round(tx_per_warp.sum())),
            segment_bytes=self.config.mem_segment_bytes,
        )
        if kind == "load":
            self.counters.load_traffic = self.counters.load_traffic.merge(traffic)
        elif kind == "store":
            self.counters.store_traffic = self.counters.store_traffic.merge(traffic)
        else:
            raise WorkloadError(f"unknown traffic kind {kind!r}")

    # ---------------------------------------------------------------- atomics
    def add_atomics(self, per_thread_addresses: np.ndarray, repeats: np.ndarray | None = None) -> None:
        """One warp-wide atomic access per thread (optionally repeated).

        ``per_thread_addresses[t]`` is the element address thread ``t``
        RMWs (< 0 means the thread issues no atomic).  ``repeats`` scales
        the access per thread (same address each time).
        """
        addresses = np.asarray(per_thread_addresses, dtype=np.int64)
        shape = self._form(addresses + 1)  # shift so sentinel -1 -> 0 inactive-safe
        active = shape.active & (shape.values > 0)
        shape = WarpShape(values=shape.values, active=active)
        cycles, stats = warp_atomic_cycles(shape, self.config)
        if repeats is not None:
            repeats = np.asarray(repeats, dtype=np.int64)
            if repeats.shape != addresses.shape:
                raise WorkloadError("repeats must match per_thread_addresses shape")
            if np.any(repeats < 0):
                raise WorkloadError("repeats cannot be negative")
            rep_shape = self._form(repeats)
            rep_vals = np.where(active, rep_shape.values, 0)
            warp_rep = rep_vals.max(axis=1)  # warp pays for its slowest lane
            cycles = cycles * np.maximum(warp_rep, 0)
            stats.n_atomics = int(rep_vals.sum())
        self._arrays.atomic_cycles += cycles
        self.counters.atomic.merge(stats)

    def add_atomic_cycles(self, cycles_per_warp: np.ndarray, stats: AtomicStats) -> None:
        """Account precomputed atomic serialization (flat-trace path).

        Used by the template mapping machinery together with
        :func:`repro.gpusim.atomics.flat_atomic_cycles`, which costs whole
        loop-nest atomic streams in one vectorized pass.
        """
        cycles_per_warp = np.asarray(cycles_per_warp, dtype=np.float64)
        if cycles_per_warp.shape != (self.n_warps,):
            raise WorkloadError(
                f"cycles_per_warp must have shape ({self.n_warps},), "
                f"got {cycles_per_warp.shape}"
            )
        if np.any(cycles_per_warp < 0):
            raise WorkloadError("atomic cycles cannot be negative")
        self._arrays.atomic_cycles += cycles_per_warp
        self.counters.atomic.merge(stats)

    def add_hot_address_tail(self, multiplicities: np.ndarray | int) -> None:
        """Kernel-wide serial tail for hot atomic addresses.

        ``multiplicities``: RMW count(s) aimed at the hottest address(es);
        the tail is the *maximum* single-address stream, drained at the
        same-address RMW throughput.
        """
        mult = np.atleast_1d(np.asarray(multiplicities, dtype=np.int64))
        if mult.size == 0:
            return
        if np.any(mult < 0):
            raise WorkloadError("multiplicities cannot be negative")
        hottest = int(mult.max())
        self.counters.atomic.max_address_multiplicity = max(
            self.counters.atomic.max_address_multiplicity, hottest
        )
        tail = hottest * self.config.atomic_same_address_cycles
        self.counters.atomic.hot_serialization_cycles += tail
        self._serial_tail += tail

    # ----------------------------------------------------------------- shared
    def add_shared_accesses(self, n_accesses: int, conflict_degree: float = 1.0) -> None:
        """Shared-memory traffic (dbuf-shared staging): cheap, on-chip."""
        if n_accesses < 0 or conflict_degree < 1.0:
            raise WorkloadError("invalid shared-memory access description")
        self.counters.shared_accesses += n_accesses
        per_warp = (
            n_accesses
            / max(self.n_warps, 1)
            * self.config.shared_mem_cycles
            * conflict_degree
            / self.config.warp_size
        )
        self._arrays.compute_slots += per_warp

    # ------------------------------------------------------------------ build
    def build(
        self,
        stream: int = 0,
        parent: int = HOST,
        parent_block: int = 0,
        issue_point: float = 1.0,
        device_stream: int = 0,
        count: int = 1,
    ) -> Launch:
        """Assemble the :class:`Launch` with per-block SM-cycle costs."""
        cfg = self.config
        warp_cycles = (
            self._arrays.compute_slots / cfg.warp_throughput_per_cycle
            + self._arrays.mem_transactions * self._segment_cycles
            + self._arrays.atomic_cycles
        )
        per_block = warp_cycles.reshape(self.n_blocks, self.warps_per_block)
        block_cycles = per_block.sum(axis=1)
        # A block cannot retire before its critical warp: that warp issues
        # alone at 1 warp-inst/cycle and pays its own memory/atomic time.
        critical = (
            self._arrays.compute_slots
            + self._arrays.mem_transactions * self._segment_cycles
            + self._arrays.atomic_cycles
        ).reshape(self.n_blocks, self.warps_per_block)
        block_floor = critical.max(axis=1)
        if parent == HOST:
            self.counters.host_launches += 1
        else:
            self.counters.device_launches += 1
        return Launch(
            name=self.name,
            block_size=self.block_size,
            costs=KernelCosts(
                block_cycles=block_cycles,
                block_floor=block_floor,
                serial_tail=self._serial_tail,
            ),
            registers_per_thread=self.registers_per_thread,
            shared_mem_per_block=self.shared_mem_per_block,
            stream=stream,
            parent=parent,
            parent_block=parent_block,
            issue_point=issue_point,
            device_stream=device_stream,
            counters=self.counters,
            count=count,
            resident_warps_hint=self._resident_warps,
        )
