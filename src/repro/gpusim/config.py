"""Device configuration for the SIMT timing simulator.

:class:`DeviceConfig` collects the architectural parameters the simulator
needs: the hardware hierarchy (SMs, cores, warp size), the resource limits
that bound occupancy (threads/warps/blocks/registers/shared memory per SM),
the memory-system constants used by the coalescing model, and the
launch-overhead constants used by the dynamic-parallelism model.

Presets mirror the machines the paper uses (an Nvidia K20) plus two other
devices useful for sensitivity studies.  All time-like constants are in GPU
*cycles* unless the name says otherwise; conversion to wall-clock uses
``clock_ghz``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "DeviceConfig",
    "KEPLER_K20",
    "KEPLER_K40",
    "FERMI_C2050",
    "preset",
    "PRESETS",
    "supports_dynamic_parallelism",
]


@dataclass(frozen=True)
class DeviceConfig:
    """Architectural + cost-model parameters of a simulated GPU.

    The defaults describe a Kepler K20 (GK110), the device used in the
    paper's evaluation.  Instances are immutable; use
    :meth:`replace` to derive variants.
    """

    name: str = "Kepler K20 (GK110)"
    compute_capability: tuple[int, int] = (3, 5)

    # --- hardware hierarchy -------------------------------------------------
    sm_count: int = 13
    cores_per_sm: int = 192
    warp_size: int = 32
    warp_schedulers_per_sm: int = 4
    clock_ghz: float = 0.706

    # --- occupancy limits ---------------------------------------------------
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    max_warps_per_sm: int = 64
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    shared_mem_per_sm: int = 49152
    shared_mem_per_block: int = 49152
    register_alloc_granularity: int = 256
    shared_mem_alloc_granularity: int = 256
    max_grid_dim_x: int = 2**31 - 1

    # --- memory system ------------------------------------------------------
    #: size of one global-memory transaction segment (bytes).  Kepler
    #: global loads are not L1-cached: they are serviced by L2 in 32-byte
    #: transactions, which is the granularity the profiler's gld/gst
    #: efficiency metrics are defined against.
    mem_segment_bytes: int = 32
    #: SM-cycles per segment at full bandwidth.  K20: 208 GB/s over 13
    #: SMs at 0.706 GHz is ~22.7 B per SM-cycle, i.e. ~1.4 cycles per
    #: 32-byte segment.
    cycles_per_segment: float = 1.5
    #: raw DRAM latency in cycles; exposed when too few warps are resident
    dram_latency_cycles: int = 440
    #: outstanding memory requests one warp keeps in flight (MLP); together
    #: with resident warps this sets how much latency is hidden
    memory_parallelism_per_warp: float = 2.0
    #: shared-memory access cycles per (conflict-free) warp access
    shared_mem_cycles: int = 2
    #: number of shared-memory banks (bank-conflict model)
    shared_mem_banks: int = 32

    # --- instruction cost ---------------------------------------------------
    #: cycles per warp-issued ALU/FPU instruction
    cycles_per_inst: float = 1.0
    #: modelled instructions in one inner-loop body step (index arithmetic,
    #: compare, branch) on top of explicit flops/loads
    loop_overhead_insts: float = 4.0

    # --- atomics ------------------------------------------------------------
    #: cycles for one uncontended global atomic RMW
    atomic_cycles: int = 24
    #: additional serialization cycles per extra conflicting lane
    atomic_conflict_cycles: int = 16
    #: sustained L2 throughput for back-to-back RMWs on ONE address
    #: (cycles per operation) — sets the serial tail of hot-address kernels
    atomic_same_address_cycles: float = 2.0

    # --- concurrency --------------------------------------------------------
    #: hardware limit on concurrently executing grids (Kepler HyperQ: 32)
    max_concurrent_kernels: int = 32

    # --- kernel launch / dynamic parallelism --------------------------------
    #: host-side kernel launch overhead (microseconds)
    host_launch_overhead_us: float = 6.0
    #: device-side (nested) launch: cycles the *parent warp* spends issuing
    device_launch_issue_cycles: int = 800
    #: grid-management latency before a child grid becomes schedulable (us)
    device_launch_latency_us: float = 10.0
    #: sustained device-launch throughput (launches per microsecond) once the
    #: grid management unit pipeline is full (CUDA 6-era measurements put
    #: sustained nested-launch rates in the hundreds of thousands per second)
    device_launch_throughput_per_us: float = 0.5
    #: capacity of the pending-launch pool (CUDA default is 2048)
    pending_launch_limit: int = 2048
    #: maximum nesting depth for dynamic parallelism (CUDA default is 24)
    max_launch_depth: int = 24
    #: overhead of creating/using one extra device stream (microseconds)
    stream_create_overhead_us: float = 1.0

    def __post_init__(self) -> None:
        positive_fields = [
            "sm_count", "cores_per_sm", "warp_size", "warp_schedulers_per_sm",
            "clock_ghz", "max_threads_per_block", "max_threads_per_sm",
            "max_blocks_per_sm", "max_warps_per_sm", "registers_per_sm",
            "shared_mem_per_sm", "mem_segment_bytes", "cycles_per_segment",
            "memory_parallelism_per_warp", "shared_mem_banks", "atomic_cycles",
            "pending_launch_limit", "max_launch_depth",
        ]
        for name in positive_fields:
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"DeviceConfig.{name} must be positive, got {value!r}")
        if self.warp_size & (self.warp_size - 1):
            raise ConfigError(f"warp_size must be a power of two, got {self.warp_size}")
        if self.max_threads_per_sm < self.max_threads_per_block:
            raise ConfigError(
                "max_threads_per_sm must be >= max_threads_per_block "
                f"({self.max_threads_per_sm} < {self.max_threads_per_block})"
            )
        if self.max_warps_per_sm * self.warp_size < self.max_threads_per_sm:
            raise ConfigError(
                "max_warps_per_sm * warp_size must cover max_threads_per_sm"
            )
        if self.shared_mem_per_block > self.shared_mem_per_sm:
            raise ConfigError("shared_mem_per_block cannot exceed shared_mem_per_sm")

    # -- derived quantities ---------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Total CUDA cores on the device."""
        return self.sm_count * self.cores_per_sm

    @property
    def warp_throughput_per_cycle(self) -> float:
        """Warp-instructions one SM retires per cycle (cores / warp size)."""
        return self.cores_per_sm / self.warp_size

    @property
    def cycle_ns(self) -> float:
        """Duration of one GPU cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count into milliseconds of wall-clock time."""
        return cycles * self.cycle_ns * 1e-6

    def ms_to_cycles(self, ms: float) -> float:
        """Convert milliseconds into GPU cycles."""
        return ms * 1e6 * self.clock_ghz

    def us_to_cycles(self, us: float) -> float:
        """Convert microseconds into GPU cycles."""
        return us * 1e3 * self.clock_ghz

    def replace(self, **changes: object) -> "DeviceConfig":
        """Return a copy of this configuration with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def fingerprint(self) -> str:
        """Stable content digest of every architectural field.

        Two configs constructed independently — in different processes,
        different sessions — fingerprint identically iff their fields are
        equal, which is what plan keys and the disk artifact cache need
        (``repr`` of floats is exact round-trip text, so no precision is
        lost).  Memoized per instance; instances are frozen.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        text = "|".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclasses.fields(self)
        )
        digest = hashlib.blake2b(text.encode(), digest_size=12).hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    def describe(self) -> str:
        """Human-readable multi-line summary of the device."""
        lines = [
            f"{self.name} (sm_{self.compute_capability[0]}{self.compute_capability[1]})",
            f"  SMs: {self.sm_count} x {self.cores_per_sm} cores @ {self.clock_ghz:.3f} GHz",
            f"  limits/SM: {self.max_threads_per_sm} threads, {self.max_warps_per_sm} warps, "
            f"{self.max_blocks_per_sm} blocks, {self.registers_per_sm} regs, "
            f"{self.shared_mem_per_sm} B smem",
            f"  memory: {self.mem_segment_bytes} B segments, "
            f"{self.cycles_per_segment} cyc/segment, {self.dram_latency_cycles} cyc latency",
            f"  dynamic parallelism: {self.device_launch_latency_us:.1f} us launch latency, "
            f"pool {self.pending_launch_limit}, depth {self.max_launch_depth}",
        ]
        return "\n".join(lines)


#: The device used throughout the paper's evaluation.
KEPLER_K20 = DeviceConfig()

#: A larger Kepler part (GK110B) for sensitivity studies.
KEPLER_K40 = DeviceConfig(
    name="Kepler K40 (GK110B)",
    sm_count=15,
    clock_ghz=0.745,
)

#: A Fermi-generation device *without* dynamic parallelism support; used to
#: check that dpar templates are rejected where the hardware lacks nested
#: launch capability (the paper targets such devices with dbuf templates).
FERMI_C2050 = DeviceConfig(
    name="Fermi C2050 (GF100)",
    compute_capability=(2, 0),
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    max_warps_per_sm=48,
    registers_per_sm=32768,
    max_launch_depth=1,  # no nested launches
)

PRESETS: dict[str, DeviceConfig] = {
    "k20": KEPLER_K20,
    "k40": KEPLER_K40,
    "c2050": FERMI_C2050,
}


def preset(name: str) -> DeviceConfig:
    """Look up a device preset by short name (``k20``, ``k40``, ``c2050``)."""
    try:
        return PRESETS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ConfigError(f"unknown device preset {name!r}; known presets: {known}") from None


def supports_dynamic_parallelism(config: DeviceConfig) -> bool:
    """Whether the device supports nested kernel launches (CC >= 3.5)."""
    return config.compute_capability >= (3, 5)
