"""Kernel, launch and profiling descriptors consumed by the executor.

A *kernel launch* is described by its grid shape, its resource footprint
(which bounds SM residency via :mod:`repro.gpusim.occupancy`), a per-block
work array in **SM-cycles** produced by :mod:`repro.gpusim.costmodel`, and
profiler counters.  Launch graphs — host launches ordered by stream plus
device-side (dynamic parallelism) launches hanging off parent launches —
are what templates hand to :class:`repro.gpusim.executor.GpuExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import LaunchError, WorkloadError
from repro.gpusim.atomics import AtomicStats
from repro.gpusim.coalesce import MemoryTraffic
from repro.gpusim.config import DeviceConfig
from repro.gpusim.occupancy import OccupancyResult, occupancy
from repro.gpusim.warps import WarpExecStats

__all__ = [
    "ProfileCounters",
    "KernelCosts",
    "Launch",
    "LaunchGraph",
    "HOST",
]

#: sentinel parent id for host-side launches
HOST = -1


@dataclass
class ProfileCounters:
    """Visual-Profiler-style counters for one launch (or aggregated).

    The three Table-I metrics come straight out of here:
    ``warp.warp_execution_efficiency``, ``load_traffic.efficiency`` (gld)
    and ``store_traffic.efficiency`` (gst).
    """

    warp: WarpExecStats = field(default_factory=WarpExecStats)
    load_traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    store_traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    atomic: AtomicStats = field(default_factory=AtomicStats)
    shared_accesses: int = 0
    host_launches: int = 0
    device_launches: int = 0

    def merge(self, other: "ProfileCounters") -> None:
        """Fold another counter record into this one."""
        self.warp.merge(other.warp)
        self.load_traffic = self.load_traffic.merge(other.load_traffic)
        self.store_traffic = self.store_traffic.merge(other.store_traffic)
        self.atomic.merge(other.atomic)
        self.shared_accesses += other.shared_accesses
        self.host_launches += other.host_launches
        self.device_launches += other.device_launches

    @property
    def total_launches(self) -> int:
        """Host plus device kernel invocations."""
        return self.host_launches + self.device_launches


@dataclass
class KernelCosts:
    """Per-block work of one kernel, in SM-cycles.

    ``block_cycles[b]`` is the total work block ``b`` contributes to
    whichever SM it lands on; ``block_floor[b]`` is the duration the block
    cannot beat even on an idle SM (its critical warp).  ``serial_tail``
    models kernel-wide serialization (e.g. a globally hot atomic address)
    appended after the last block retires.
    """

    block_cycles: np.ndarray
    block_floor: np.ndarray | None = None
    serial_tail: float = 0.0

    def __post_init__(self) -> None:
        self.block_cycles = np.asarray(self.block_cycles, dtype=np.float64)
        if self.block_cycles.ndim != 1:
            raise WorkloadError("block_cycles must be a 1-D array")
        if np.any(self.block_cycles < 0):
            raise WorkloadError("block cycles cannot be negative")
        if self.block_floor is None:
            self.block_floor = np.zeros_like(self.block_cycles)
        else:
            self.block_floor = np.asarray(self.block_floor, dtype=np.float64)
            if self.block_floor.shape != self.block_cycles.shape:
                raise WorkloadError("block_floor must match block_cycles shape")
            if np.any(self.block_floor < 0):
                raise WorkloadError("block floors cannot be negative")
        if self.serial_tail < 0:
            raise WorkloadError("serial_tail cannot be negative")

    @property
    def n_blocks(self) -> int:
        """Grid size in blocks."""
        return int(self.block_cycles.shape[0])

    @property
    def total_cycles(self) -> float:
        """Total SM-cycles of work in the grid."""
        return float(self.block_cycles.sum())

    def block_lists(self) -> tuple[list[float], list[float]]:
        """``(work, floor)`` per block as plain Python lists, cached.

        The executor's dispatch loop touches every block exactly once; list
        indexing avoids a NumPy scalar box per block, and the fast engine
        uses value equality on these entries to batch homogeneous blocks
        into cohort events.  Treat the returned lists as read-only.
        """
        cached = getattr(self, "_block_lists", None)
        if cached is None:
            cached = (self.block_cycles.tolist(), self.block_floor.tolist())
            object.__setattr__(self, "_block_lists", cached)
        return cached

    def block_runs(self) -> tuple[list[int], list[float], list[float]]:
        """Run-length encoding of ``(work, floor)`` over the block array.

        Returns ``(ends, works, floors)`` where blocks ``[ends[i-1],
        ends[i])`` (0 for the first run) all share ``works[i]`` /
        ``floors[i]``.  Template grids are dominated by long runs of
        identical blocks (uniform phases, bulk children), which is what
        lets the fast engine place whole runs per SM scan instead of one
        block at a time.  Cached; treat the lists as read-only.
        """
        cached = getattr(self, "_block_runs", None)
        if cached is None:
            w, f = self.block_cycles, self.block_floor
            n = w.shape[0]
            if n == 0:
                cached = ([], [], [])
                object.__setattr__(self, "_block_runs", cached)
                return cached
            change = np.empty(n, dtype=bool)
            change[0] = True
            np.not_equal(w[1:], w[:-1], out=change[1:])
            change[1:] |= f[1:] != f[:-1]
            starts = np.flatnonzero(change)
            ends = np.empty(starts.shape[0], dtype=np.int64)
            ends[:-1] = starts[1:]
            ends[-1] = n
            cached = (ends.tolist(), w[starts].tolist(), f[starts].tolist())
            object.__setattr__(self, "_block_runs", cached)
        return cached


@dataclass
class Launch:
    """One kernel launch node in a :class:`LaunchGraph`.

    Host launches (``parent == HOST``) execute in stream order; device
    launches become *pending* at a fraction ``issue_point`` of their issuing
    parent block's execution, then pass through the grid-management queue.
    Launches sharing a ``device_stream`` key (the same parent block and
    CUDA stream) serialize with each other in issue order — the semantics
    the paper's "multiple streams per thread-block" experiments toggle.
    """

    name: str
    block_size: int
    costs: KernelCosts
    registers_per_thread: int = 24
    shared_mem_per_block: int = 0
    stream: int = 0
    parent: int = HOST
    parent_block: int = 0
    issue_point: float = 1.0
    device_stream: int = 0
    counters: ProfileCounters = field(default_factory=ProfileCounters)
    #: replicate this launch N times (bulk dynamic-parallelism fan-out);
    #: replicas share the cost/counters description
    count: int = 1
    #: cost-model estimate of warps resident per SM while this kernel runs;
    #: feeds the profiler's achieved-occupancy metric
    resident_warps_hint: float = 0.0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise LaunchError(f"block_size must be positive, got {self.block_size}")
        if self.count <= 0:
            raise LaunchError(f"launch count must be positive, got {self.count}")
        if not (0.0 <= self.issue_point <= 1.0):
            raise LaunchError("issue_point must lie in [0, 1]")
        if self.costs.n_blocks == 0:
            raise LaunchError(f"launch {self.name!r} has an empty grid")

    @property
    def is_device(self) -> bool:
        """Whether this is a nested (dynamic-parallelism) launch."""
        return self.parent != HOST

    def residency(self, config: DeviceConfig) -> OccupancyResult:
        """SM residency of this kernel's blocks on ``config``."""
        return occupancy(
            config,
            self.block_size,
            self.registers_per_thread,
            self.shared_mem_per_block,
        )


@dataclass
class LaunchGraph:
    """A complete program: host launches plus nested device launches.

    ``launches[i].parent`` indexes into the same list; parents must appear
    before children (topological order by construction).
    """

    launches: list[Launch] = field(default_factory=list)

    def add(self, launch: Launch) -> int:
        """Append a launch, validating parent linkage; returns its id."""
        if launch.parent != HOST:
            if not (0 <= launch.parent < len(self.launches)):
                raise LaunchError(
                    f"launch {launch.name!r} references unknown parent {launch.parent}"
                )
            parent = self.launches[launch.parent]
            n_parent_blocks = parent.costs.n_blocks
            if not (0 <= launch.parent_block < n_parent_blocks):
                raise LaunchError(
                    f"launch {launch.name!r} issued from block {launch.parent_block} "
                    f"but parent grid has {n_parent_blocks} blocks"
                )
        self.launches.append(launch)
        return len(self.launches) - 1

    def __len__(self) -> int:
        return len(self.launches)

    def depth_of(self, index: int) -> int:
        """Nesting depth of a launch (0 for host launches)."""
        depth = 0
        launch = self.launches[index]
        while launch.parent != HOST:
            depth += 1
            launch = self.launches[launch.parent]
        return depth

    def validate(self, config: DeviceConfig) -> None:
        """Check device limits: nesting depth and grid sizes."""
        for i, launch in enumerate(self.launches):
            if launch.costs.n_blocks > config.max_grid_dim_x:
                raise LaunchError(f"launch {launch.name!r} grid exceeds device limit")
            if launch.is_device and self.depth_of(i) > config.max_launch_depth:
                raise LaunchError(
                    f"launch {launch.name!r} exceeds max nesting depth "
                    f"{config.max_launch_depth}"
                )

    def aggregate_counters(self) -> ProfileCounters:
        """Merge all launches' counters (bulk launches weighted by count)."""
        total = ProfileCounters()
        for launch in self.launches:
            if launch.count == 1:
                total.merge(launch.counters)
            else:
                total.merge(_scale_counters(launch.counters, launch.count))
        return total


def _scale_counters(counters: ProfileCounters, factor: int) -> ProfileCounters:
    """Scale a counter record by an integer replica count."""
    scaled = ProfileCounters()
    scaled.warp = WarpExecStats(
        warp_size=counters.warp.warp_size,
        issued_steps=counters.warp.issued_steps * factor,
        active_slots=counters.warp.active_slots * factor,
        warps_launched=counters.warp.warps_launched * factor,
    )
    scaled.load_traffic = MemoryTraffic(
        requested_bytes=counters.load_traffic.requested_bytes * factor,
        transactions=counters.load_traffic.transactions * factor,
        segment_bytes=counters.load_traffic.segment_bytes,
    )
    scaled.store_traffic = MemoryTraffic(
        requested_bytes=counters.store_traffic.requested_bytes * factor,
        transactions=counters.store_traffic.transactions * factor,
        segment_bytes=counters.store_traffic.segment_bytes,
    )
    scaled.atomic = AtomicStats(
        n_atomics=counters.atomic.n_atomics * factor,
        max_address_multiplicity=counters.atomic.max_address_multiplicity,
        hot_serialization_cycles=counters.atomic.hot_serialization_cycles * factor,
    )
    scaled.shared_accesses = counters.shared_accesses * factor
    scaled.host_launches = counters.host_launches * factor
    scaled.device_launches = counters.device_launches * factor
    return scaled
