"""``repro.gpusim`` — trace-driven SIMT GPU timing simulator.

This package substitutes for the Nvidia K20 + CUDA 6 + Visual Profiler
stack used by the paper (see DESIGN.md §2).  It models the mechanisms the
paper's experiments exercise — SIMT divergence, memory coalescing, atomics,
occupancy-bounded block scheduling, CUDA streams and dynamic parallelism —
and reports both wall-clock estimates and profiler metrics.

Typical use::

    from repro.gpusim import KEPLER_K20, KernelCostBuilder, LaunchGraph, GpuExecutor

    builder = KernelCostBuilder(KEPLER_K20, "my_kernel", block_size=192, n_blocks=64)
    builder.add_loop(trip_counts)
    graph = LaunchGraph()
    graph.add(builder.build())
    result = GpuExecutor(KEPLER_K20).run(graph)
    print(result.time_ms)
"""

from repro.gpusim.atomics import (
    AtomicStats,
    flat_atomic_cycles,
    grouped_conflict_degree,
    hot_address_degree,
    warp_atomic_cycles,
)
from repro.gpusim.coalesce import (
    MemoryTraffic,
    contiguous_transactions,
    segment_transactions,
    transaction_counts,
    transactions_for_flat,
)
from repro.gpusim.config import (
    FERMI_C2050,
    KEPLER_K20,
    KEPLER_K40,
    PRESETS,
    DeviceConfig,
    preset,
    supports_dynamic_parallelism,
)
from repro.gpusim.costmodel import (
    KernelCostBuilder,
    effective_segment_cycles,
    resident_warps_estimate,
)
from repro.gpusim.dynpar import (
    DynParOverheadEstimate,
    estimate_bulk_overhead,
    issue_cost_cycles,
    require_device_support,
)
from repro.gpusim.executor import (
    ExecutionResult,
    GpuExecutor,
    LaunchRecord,
    execute_fused,
)
from repro.gpusim.kernels import (
    HOST,
    KernelCosts,
    Launch,
    LaunchGraph,
    ProfileCounters,
)
from repro.gpusim.occupancy import OccupancyResult, best_block_size, occupancy
from repro.gpusim.profiler import ProfileMetrics, format_metrics_table, profile
from repro.gpusim.sharedmem import bank_conflict_degree, shared_access_cycles
from repro.gpusim.timeline import Timeline, build_timeline
from repro.gpusim.warps import (
    WarpExecStats,
    WarpShape,
    divergence_steps,
    form_warps,
)

__all__ = [
    # config
    "DeviceConfig", "KEPLER_K20", "KEPLER_K40", "FERMI_C2050", "PRESETS",
    "preset", "supports_dynamic_parallelism",
    # occupancy
    "OccupancyResult", "occupancy", "best_block_size",
    # memory
    "MemoryTraffic", "segment_transactions", "transactions_for_flat",
    "contiguous_transactions", "transaction_counts",
    # warps
    "WarpShape", "WarpExecStats", "form_warps", "divergence_steps",
    # atomics / shared
    "AtomicStats", "warp_atomic_cycles", "grouped_conflict_degree",
    "hot_address_degree", "flat_atomic_cycles",
    "bank_conflict_degree", "shared_access_cycles",
    # cost model
    "KernelCostBuilder", "effective_segment_cycles", "resident_warps_estimate",
    # kernels / execution
    "HOST", "KernelCosts", "Launch", "LaunchGraph", "ProfileCounters",
    "GpuExecutor", "ExecutionResult", "LaunchRecord", "execute_fused",
    # dynamic parallelism
    "require_device_support", "issue_cost_cycles", "estimate_bulk_overhead",
    "DynParOverheadEstimate",
    # profiler
    "ProfileMetrics", "profile", "format_metrics_table",
    # timeline
    "Timeline", "build_timeline",
]
