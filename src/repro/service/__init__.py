"""``repro.service`` — async, batching template-serving subsystem.

The serving layer turns the one-shot ``repro.run`` facade into a
long-lived runtime with the shape of an inference-serving stack:

* :class:`TemplateService` — asyncio front end with admission control
  (bounded in-flight requests, structured rejections), a micro-batcher
  that coalesces requests sharing a plan-cache identity into one
  execution, a small/large dual queue (inline fast path vs process
  pool), per-request timeouts, bounded retry with backoff, and graceful
  degradation of dynamic-parallelism templates to their non-nested
  fallbacks.
* :class:`ServiceHandle` / :func:`serve` — synchronous facade running
  the event loop on a background thread (also exported as
  ``repro.serve``).
* :mod:`repro.service.loadgen` — closed-loop load generation behind
  ``python -m repro.service`` and ``benchmarks/bench_service_throughput``.

See ``docs/serving.md`` for architecture, failure modes and the metrics
glossary.
"""

from repro.service.admission import PriorityClassQueue
from repro.service.batcher import Batch, MicroBatcher
from repro.service.handle import ServiceHandle, serve
from repro.service.metrics import (
    ClassStats,
    ServiceStats,
    percentile,
    percentiles,
)
from repro.service.request import (
    PRIORITIES,
    Request,
    Response,
    workload_cost,
    workload_kind,
)
from repro.service.service import ServiceConfig, TemplateService
from repro.service.streams import WorkloadStream
from repro.service.workers import (
    BatchSpec,
    WorkerCrashError,
    WorkerPool,
    WorkerTimeoutError,
    execute_batch,
)

__all__ = [
    "Batch",
    "BatchSpec",
    "ClassStats",
    "MicroBatcher",
    "PRIORITIES",
    "PriorityClassQueue",
    "Request",
    "Response",
    "ServiceConfig",
    "ServiceHandle",
    "ServiceStats",
    "TemplateService",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerTimeoutError",
    "WorkloadStream",
    "execute_batch",
    "percentile",
    "percentiles",
    "serve",
    "workload_cost",
    "workload_kind",
]
