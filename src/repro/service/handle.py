"""Synchronous facade over :class:`TemplateService`.

The service is an asyncio runtime; most callers (benchmarks, notebooks,
the CLI demo) are synchronous.  :class:`ServiceHandle` runs the service's
event loop on a dedicated daemon thread and exposes a thread-safe
submit/request/stats surface::

    with repro.serve(max_batch=32) as svc:
        futures = [svc.submit("dbuf-global", wl) for wl in workloads]
        responses = [f.result() for f in futures]
        print(svc.stats()["latency_ms"])

``submit`` returns a ``concurrent.futures.Future`` so many requests can
be in flight from one caller thread — that concurrency is what gives the
micro-batcher co-travellers to coalesce.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading

from repro.errors import ServiceError
from repro.service.request import Response
from repro.service.service import ServiceConfig, TemplateService

__all__ = ["ServiceHandle", "serve"]


class ServiceHandle:
    """Owns a service + its event-loop thread; context-manager friendly."""

    def __init__(
        self, config: ServiceConfig | None = None, **service_kwargs
    ) -> None:
        self._service = TemplateService(config, **service_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        self._closed = False
        self._call(self._service.start())

    # ------------------------------------------------------------ plumbing
    def _call(self, coro):
        """Run a coroutine on the service loop and wait for its result."""
        if self._closed:
            raise ServiceError("service handle is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # ---------------------------------------------------------------- API
    def submit(
        self, template, workload=None, **kwargs
    ) -> concurrent.futures.Future:
        """Submit without blocking; the future resolves to a Response.

        ``submit(workload)`` alone (or ``template=None``) uses the
        config's ``default_template`` — ``"auto"`` unless overridden.
        """
        if self._closed:
            raise ServiceError("service handle is closed")
        return asyncio.run_coroutine_threadsafe(
            self._service.submit(template, workload, **kwargs), self._loop
        )

    def request(self, template, workload=None, **kwargs) -> Response:
        """Blocking convenience: submit and wait for the response."""
        return self.submit(template, workload, **kwargs).result()

    def register_workload(self, name: str, workload, keep_versions: int = 8):
        """Register a versioned workload stream (see docs/streaming.md).

        Runs on the service loop so registration serializes against
        mutation and snapshot resolution.  Returns the
        :class:`~repro.service.streams.WorkloadStream`.
        """

        async def _register():
            return self._service.register_workload(
                name, workload, keep_versions=keep_versions
            )

        return self._call(_register())

    def mutate_workload(self, name: str, batch, *, warm_analysis: bool = True):
        """Apply a mutation batch to a registered stream; returns the
        :class:`~repro.core.mutation.MutationDelta`."""

        async def _mutate():
            return self._service.mutate_workload(
                name, batch, warm_analysis=warm_analysis
            )

        return self._call(_mutate())

    def stats(self) -> dict:
        """Point-in-time service/pool/queue/latency counters."""
        return self._service.snapshot()

    @property
    def service(self) -> TemplateService:
        """The underlying service (for tests and advanced callers)."""
        return self._service

    def close(self, drain: bool = True) -> None:
        """Stop the service and tear the loop thread down (idempotent)."""
        if self._closed:
            return
        try:
            self._call(self._service.stop(drain=drain))
        finally:
            self._closed = True
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
            self._loop.close()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(config: ServiceConfig | None = None, **config_kwargs) -> ServiceHandle:
    """Start a serving runtime and return its synchronous handle.

    Pass a full :class:`ServiceConfig`, or its fields as keyword
    arguments (``repro.serve(max_batch=32, workers=4)``); combining both
    is ambiguous and raises.
    """
    if config is not None and config_kwargs:
        raise ServiceError("pass a ServiceConfig or keyword fields, not both")
    if config is None:
        config = ServiceConfig(**config_kwargs)
    return ServiceHandle(config)
