"""The asyncio serving runtime: admission, batching, execution policy.

:class:`TemplateService` turns the one-shot ``repro.run`` facade into a
long-lived server.  The life of a request:

1. **Admission** — ``submit()`` resolves the template eagerly and applies
   backpressure: beyond ``max_pending`` in-flight requests, the answer is
   an immediate structured *rejection* response (never an indefinite
   block) so callers can shed or retry upstream.
2. **Collection** — the batch loop drains the queue for up to
   ``batch_window_s`` (or ``max_batch`` requests) and hands the window to
   the :class:`~repro.service.batcher.MicroBatcher`, which coalesces
   requests sharing a batch key into one execution.
3. **Execution** — each batch runs once, inline (small work) or on the
   :class:`~repro.service.workers.WorkerPool` (large work), under a
   per-request timeout with bounded exponential-backoff retries.
4. **Degradation** — when every attempt failed and the template uses
   dynamic parallelism, the batch re-runs inline on the family's
   non-nested fallback (``thread-mapped`` / ``flat``) and the responses
   carry ``degraded=True``; otherwise the responses are ``failed`` with
   the last error as the reason.

Everything observable lands in ``stats()``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace

from repro import obs
from repro.core.params import TemplateParams
from repro.errors import ServiceError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import resolve_engine
from repro.service.batcher import Batch, MicroBatcher
from repro.service.metrics import ServiceStats
from repro.service.request import DEGRADE_FALLBACK, Request, Response
from repro.service.workers import (
    BatchSpec,
    WorkerPool,
    WorkerTimeoutError,
    execute_batch,
)

__all__ = ["ServiceConfig", "TemplateService"]


@dataclass
class ServiceConfig:
    """Tuning knobs of one :class:`TemplateService`."""

    #: admission bound: in-flight requests beyond this are rejected
    max_pending: int = 256
    #: most requests one collection window may gather
    max_batch: int = 16
    #: how long the batch loop waits for co-travellers (seconds)
    batch_window_s: float = 0.002
    #: workload cost (pairs/nodes) above which a batch goes to the pool
    inline_cost_threshold: int = 1_000_000
    #: worker processes backing the large-request path
    workers: int = 2
    #: per-attempt execution timeout (None = unbounded)
    request_timeout_s: float | None = 30.0
    #: retries after the first failed attempt
    max_retries: int = 2
    #: base backoff between attempts (doubles per retry)
    retry_backoff_s: float = 0.05
    #: fall back to thread-mapped/flat when a dynamic-parallelism
    #: template keeps failing
    degrade: bool = True
    #: default executor engine for requests that don't specify one
    engine: str = "fast"
    #: execution model every batch runs on: ``"sim"`` (bulk-synchronous,
    #: the default) or ``"queue"`` (persistent task queues — single
    #: device; queue-incompatible templates are routed back to sim and
    #: counted, see docs/taskqueue.md)
    backend: str = "sim"
    #: template used when ``submit`` is not given one: ``"auto"`` routes
    #: through the IR auto-select pipeline (see ``docs/ir.md``); any
    #: canonical name pins every defaulted request to that template
    default_template: str = "auto"
    #: default simulated device
    device: DeviceConfig = field(default_factory=lambda: KEPLER_K20)
    #: simulated devices serving this process: 1 behaves exactly as the
    #: single-device service always has; N > 1 routes each coalesced
    #: batch to the least-loaded device of a
    #: :class:`~repro.backends.DeviceGroup` (see docs/architecture.md)
    devices: int = 1
    #: latency/batch-size window kept for percentile stats
    stats_window: int = 4096
    #: disk artifact cache shared with pool workers: None inherits the
    #: process default (REPRO_CACHE_DIR), "" disables it, a path enables it
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ServiceError("max_pending must be >= 1")
        if self.max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ServiceError("batch_window_s cannot be negative")
        if self.max_retries < 0:
            raise ServiceError("max_retries cannot be negative")
        if self.retry_backoff_s < 0:
            raise ServiceError("retry_backoff_s cannot be negative")
        resolve_engine(self.engine, error=ServiceError)
        from repro.backends import resolve_backend

        resolve_backend(self.backend, error=ServiceError)
        if self.devices < 1:
            raise ServiceError(f"devices must be >= 1, got {self.devices}")
        if self.backend == "queue" and self.devices > 1:
            raise ServiceError(
                "the queue backend is single-device; use devices=1"
            )


class TemplateService:
    """Async template-serving runtime (see module docstring).

    ``worker_pool`` and ``run_fn`` are injectable for fault testing: the
    pool handles the "pool" route, ``run_fn`` the inline route (default
    :func:`~repro.service.workers.execute_batch`).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        worker_pool: WorkerPool | None = None,
        run_fn=None,
    ) -> None:
        self.config = config or ServiceConfig()
        if self.config.cache_dir is not None:
            # configure before the pool spawns so REPRO_CACHE_DIR (set by
            # configure) is inherited by the worker processes
            from repro.core.artifactcache import configure_artifact_cache

            configure_artifact_cache(self.config.cache_dir or None)
        self.stats = ServiceStats(window=self.config.stats_window)
        self.pool = worker_pool or WorkerPool(max_workers=self.config.workers)
        self.batcher = MicroBatcher(self.config.inline_cost_threshold,
                                    cache_dir=self.config.cache_dir)
        #: device topology: None for the classic single-device service, a
        #: DeviceGroup tracking per-device load when devices > 1
        self.device_group = None
        if self.config.devices > 1:
            from repro.backends import DeviceGroup

            self.device_group = DeviceGroup(
                self.config.device, self.config.devices,
                engine=self.config.engine,
            )
        self._run_fn = run_fn or execute_batch
        self._queue: asyncio.Queue | None = None
        self._loop_task: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._pending = 0
        self._next_id = 0
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    @property
    def pending(self) -> int:
        """Admitted requests not yet answered."""
        return self._pending

    # ---------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bring the batch loop up (idempotent)."""
        if self._running:
            return
        self._queue = asyncio.Queue()
        self._running = True
        self._loop_task = asyncio.create_task(
            self._batch_loop(), name="repro-service-batch-loop"
        )

    async def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` wait for in-flight work first."""
        if not self._running:
            return
        self._running = False
        if drain:
            while self._pending:
                await asyncio.sleep(0.005)
        self._loop_task.cancel()
        try:
            await self._loop_task
        except asyncio.CancelledError:
            pass
        if self._dispatch_tasks:
            await asyncio.gather(*self._dispatch_tasks, return_exceptions=True)
        # anything still queued (stop(drain=False)) gets a structured answer
        while self._queue is not None and not self._queue.empty():
            request, future = self._queue.get_nowait()
            self._finish(
                request,
                future,
                Response(
                    id=request.id,
                    status="rejected",
                    template=str(getattr(request.template_obj, "name", "")),
                    workload=getattr(request.workload, "name", ""),
                    reason="service stopped before execution",
                ),
            )
        self.pool.shutdown()

    # ---------------------------------------------------------- admission
    async def submit(
        self,
        template,
        workload=None,
        *,
        device: DeviceConfig | None = None,
        params: TemplateParams | None = None,
        engine: str | None = None,
    ) -> Response:
        """Admit one query and await its response.

        ``template`` may be omitted by passing the workload alone
        (``submit(workload)``) or ``None`` — both fall back to the
        config's ``default_template`` (``"auto"`` unless overridden), so
        the service front door matches ``repro.run(workload)``.
        """
        if workload is None:
            template, workload = None, template
        request = Request(
            template=self.config.default_template if template is None else template,
            workload=workload,
            device=device or self.config.device,
            params=params or TemplateParams(),
            engine=engine or self.config.engine,
            backend=self.config.backend,
        )
        return await self.submit_request(request)

    async def submit_request(self, request: Request) -> Response:
        """Admit an already-built :class:`Request` and await its response.

        Admission control is immediate: over ``max_pending`` in-flight
        requests, the return value is a ``rejected`` response carrying the
        queue state in ``reason`` — the caller is never blocked on a full
        queue.
        """
        if not self._running:
            raise ServiceError("service is not running (call start())")
        if self._pending >= self.config.max_pending:
            self.stats.record_rejected()
            obs.instant("service.reject", kind="admission",
                        pending=self._pending)
            return Response(
                id=-1,
                status="rejected",
                template=str(getattr(request.template_obj, "name", "")),
                workload=getattr(request.workload, "name", ""),
                reason=(
                    f"queue full: {self._pending} in-flight requests >= "
                    f"max_pending={self.config.max_pending}"
                ),
            )
        loop = asyncio.get_running_loop()
        request.id = self._next_id
        self._next_id += 1
        request.created_s = loop.time()
        request.created_perf = time.perf_counter()
        self._pending += 1
        self.stats.record_admitted(self._pending)
        future = loop.create_future()
        await self._queue.put((request, future))
        return await future

    # ------------------------------------------------------ batching loop
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            pending = [await self._queue.get()]
            deadline = loop.time() + self.config.batch_window_s
            try:
                while len(pending) < self.config.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        pending.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            except asyncio.CancelledError:
                # stop() cancelled us mid-window: hand collected-but-
                # undispatched requests back so the stop path answers
                # them instead of leaving their futures pending forever
                for item in pending:
                    self._queue.put_nowait(item)
                raise
            with obs.span("service.coalesce", pending=len(pending)):
                batches = self.batcher.group(pending)
            for batch in batches:
                task = asyncio.create_task(self._dispatch(batch))
                self._dispatch_tasks.add(task)
                task.add_done_callback(self._dispatch_tasks.discard)

    # -------------------------------------------------- execution policy
    async def _execute(self, spec: BatchSpec, route: str) -> dict:
        timeout = self.config.request_timeout_s
        if route == "pool":
            return await self.pool.run(spec, timeout)
        return await asyncio.wait_for(
            asyncio.to_thread(self._run_fn, spec), timeout
        )

    async def _dispatch(self, batch: Batch) -> None:
        self.stats.record_batch(batch.size, batch.route)
        if batch.spec.backend == "queue" and not getattr(
            batch.requests[0].template_obj, "queue_compatible", True
        ):
            # capability-aware routing: the queue cannot honour this
            # template's launch-wide barrier semantics, so the batch runs
            # on the BSP simulator instead (counted, never silent)
            batch.spec = replace(batch.spec, backend="sim")
            self.stats.record_queue_fallback()
            obs.instant(
                "service.queue_fallback",
                template=str(getattr(batch.requests[0].template_obj,
                                     "name", "")),
            )
        summary = None
        error: BaseException | None = None
        degraded = False
        attempts = 0
        device_index = 0
        if self.device_group is not None:
            # least-loaded routing: reserve a device for this batch; the
            # reservation is released (crediting the simulated time the
            # batch ran) after execution settles
            device_index = self.device_group.acquire()
            batch.spec.device_index = device_index
        template_name = str(getattr(batch.requests[0].template_obj, "name", ""))
        with obs.span("service.batch", route=batch.route, size=batch.size,
                      template=template_name, device=device_index):
            for attempt in range(1 + self.config.max_retries):
                attempts += 1
                try:
                    with obs.span("service.execute", route=batch.route,
                                  attempt=attempts, template=template_name):
                        summary = await self._execute(batch.spec, batch.route)
                    break
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # noqa: BLE001 - policy boundary
                    error = exc
                    if attempt < self.config.max_retries:
                        timed_out = isinstance(
                            exc, (asyncio.TimeoutError, WorkerTimeoutError)
                        )
                        self.stats.record_retry(timed_out)
                        await asyncio.sleep(
                            self.config.retry_backoff_s * (2 ** attempt)
                        )
            template_obj = batch.requests[0].template_obj
            if (
                summary is None
                and self.config.degrade
                and getattr(template_obj, "uses_dynamic_parallelism", False)
            ):
                fallback = DEGRADE_FALLBACK[batch.requests[0].kind]
                try:
                    # the fallback runs inline: the pool just proved
                    # unreliable
                    with obs.span("service.degrade", fallback=fallback,
                                  template=template_name):
                        summary = await self._execute(
                            replace(batch.spec, template=fallback), "inline"
                        )
                    degraded = True
                    self.stats.record_degraded()
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # noqa: BLE001 - policy boundary
                    error = exc
        if self.device_group is not None:
            self.device_group.complete(
                device_index,
                busy_ms=summary["time_ms"] if summary is not None else 0.0,
            )
        if summary is not None:
            self.stats.record_cache(
                summary.get("cache_hits", 0), summary.get("cache_misses", 0)
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        for request, future in zip(batch.requests, batch.futures):
            if summary is not None:
                response = Response(
                    id=request.id,
                    status="ok",
                    template=summary["template"],
                    workload=summary["workload"],
                    degraded=degraded,
                    time_ms=summary["time_ms"],
                    metrics=summary["metrics"],
                    latency_s=now - request.created_s,
                    batch_size=batch.size,
                    attempts=attempts + (1 if degraded else 0),
                    route=batch.route if not degraded else "inline",
                    cache_hit=summary.get("cache_hits", 0) > 0,
                    device=device_index,
                )
            else:
                response = Response(
                    id=request.id,
                    status="failed",
                    template=str(getattr(template_obj, "name", "")),
                    workload=getattr(request.workload, "name", ""),
                    reason=f"{type(error).__name__}: {error}",
                    latency_s=now - request.created_s,
                    batch_size=batch.size,
                    attempts=attempts,
                    route=batch.route,
                )
            self._finish(request, future, response)

    def _finish(self, request: Request, future, response: Response) -> None:
        self._pending -= 1
        self.stats.record_depth(self._pending)
        self.stats.record_response(response.status, response.latency_s)
        if obs.enabled() and request.created_perf:
            now = time.perf_counter()
            obs.complete(
                "service.request", request.created_perf,
                now - request.created_perf, status=response.status,
                template=response.template, batch_size=response.batch_size,
                route=response.route, degraded=response.degraded,
            )
        if not future.done():
            future.set_result(response)

    # ----------------------------------------------------------- metrics
    def snapshot(self) -> dict:
        """Service + pool counters in one dict (``stats()`` on handles)."""
        snap = self.stats.snapshot()
        snap["pool"] = self.pool.snapshot()
        from repro.core.artifactcache import get_artifact_cache

        disk = get_artifact_cache()
        if disk is not None:
            # inline-route counters of this process; pool workers keep
            # their own (summed per batch into execute_batch summaries)
            snap["disk_cache"] = disk.snapshot()
        if obs.enabled():
            # aggregated per-span-name timings of the traced region; the
            # tracer is process-wide, so concurrent traced work outside
            # this service shows up too
            snap["obs"] = obs.summary()
        if self.device_group is not None:
            snap["devices"] = self.device_group.snapshot()
        snap["config"] = {
            "max_pending": self.config.max_pending,
            "max_batch": self.config.max_batch,
            "batch_window_s": self.config.batch_window_s,
            "inline_cost_threshold": self.config.inline_cost_threshold,
            "workers": self.config.workers,
            "engine": self.config.engine,
            "backend": self.config.backend,
            "devices": self.config.devices,
        }
        return snap
