"""The asyncio serving runtime: admission, batching, execution policy.

:class:`TemplateService` turns the one-shot ``repro.run`` facade into a
long-lived server.  The life of a request:

1. **Admission** — ``submit()`` resolves the template eagerly and applies
   backpressure: beyond ``max_pending`` in-flight requests, the answer is
   an immediate structured *rejection* response (never an indefinite
   block) so callers can shed or retry upstream.
2. **Collection** — the batch loop drains the queue for up to
   ``batch_window_s`` (or ``max_batch`` requests) and hands the window to
   the :class:`~repro.service.batcher.MicroBatcher`, which coalesces
   requests sharing a batch key into one execution.
3. **Execution** — each batch runs once, inline (small work) or on the
   :class:`~repro.service.workers.WorkerPool` (large work), under a
   per-request timeout with bounded exponential-backoff retries.
4. **Degradation** — when every attempt failed and the template uses
   dynamic parallelism, the batch re-runs inline on the family's
   non-nested fallback (``thread-mapped`` / ``flat``) and the responses
   carry ``degraded=True``; otherwise the responses are ``failed`` with
   the last error as the reason.

Everything observable lands in ``stats()``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace

from repro import obs
from repro.core.params import TemplateParams
from repro.errors import ServiceError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import resolve_engine
from repro.service.admission import PriorityClassQueue
from repro.service.batcher import Batch, MicroBatcher
from repro.service.metrics import ServiceStats
from repro.service.request import (
    DEGRADE_FALLBACK,
    PRIORITIES,
    PRIORITY_RANK,
    Request,
    Response,
)
from repro.service.streams import WorkloadStream
from repro.service.workers import (
    BatchSpec,
    WorkerPool,
    WorkerTimeoutError,
    execute_batch,
    execute_batch_fused,
)

__all__ = ["ServiceConfig", "TemplateService"]


@dataclass
class ServiceConfig:
    """Tuning knobs of one :class:`TemplateService`."""

    #: admission bound: in-flight requests beyond this are rejected
    max_pending: int = 256
    #: most requests one collection window may gather
    max_batch: int = 16
    #: how long the batch loop waits for co-travellers (seconds)
    batch_window_s: float = 0.002
    #: workload cost (pairs/nodes) above which a batch goes to the pool
    inline_cost_threshold: int = 1_000_000
    #: worker processes backing the large-request path
    workers: int = 2
    #: per-attempt execution timeout (None = unbounded)
    request_timeout_s: float | None = 30.0
    #: retries after the first failed attempt
    max_retries: int = 2
    #: base backoff between attempts (doubles per retry)
    retry_backoff_s: float = 0.05
    #: fall back to thread-mapped/flat when a dynamic-parallelism
    #: template keeps failing
    degrade: bool = True
    #: default executor engine for requests that don't specify one
    engine: str = "fast"
    #: execution model every batch runs on: ``"sim"`` (bulk-synchronous,
    #: the default) or ``"queue"`` (persistent task queues — single
    #: device; queue-incompatible templates are routed back to sim and
    #: counted, see docs/taskqueue.md)
    backend: str = "sim"
    #: fuse the inline sim batches of one scheduling window — different
    #: fingerprints, same device/engine — into a single executor pass
    #: (``execute_fused``) instead of one event loop each; results are
    #: bit-identical, only wall time changes (see docs/performance.md)
    fuse_batches: bool = True
    #: template used when ``submit`` is not given one: ``"auto"`` routes
    #: through the IR auto-select pipeline (see ``docs/ir.md``); any
    #: canonical name pins every defaulted request to that template
    default_template: str = "auto"
    #: default simulated device
    device: DeviceConfig = field(default_factory=lambda: KEPLER_K20)
    #: simulated devices serving this process: 1 behaves exactly as the
    #: single-device service always has; N > 1 routes each coalesced
    #: batch to the least-loaded device of a
    #: :class:`~repro.backends.DeviceGroup` (see docs/architecture.md)
    devices: int = 1
    #: latency/batch-size window kept for percentile stats
    stats_window: int = 4096
    #: disk artifact cache shared with pool workers: None inherits the
    #: process default (REPRO_CACHE_DIR), "" disables it, a path enables it
    cache_dir: str | None = None
    #: bound on how long ``stop(drain=True)`` waits for in-flight work
    #: before answering stragglers with structured failures (None waits
    #: forever — the pre-bound behaviour)
    drain_timeout_s: float | None = 30.0
    # ------------------------------------------------- SLO / multi-tenant
    #: priority class stamped on requests that don't specify one
    default_priority: str = "normal"
    #: per-priority-class in-flight bounds, e.g. ``{"low": 64}``; classes
    #: absent from the dict are bounded only by ``max_pending``
    max_pending_per_class: dict | None = None
    #: max in-flight requests per tenant (None = unlimited); rejections
    #: are structured and counted as ``quota_rejected``
    tenant_quota: int | None = None
    #: per-tenant overrides of ``tenant_quota``, e.g. ``{"acme": 8}``
    tenant_quotas: dict | None = None
    #: deadline stamped on requests that don't carry one (seconds from
    #: admission; None = no implicit deadline)
    default_deadline_s: float | None = None
    #: shed batches whose deadline has passed (or provably cannot be met)
    #: instead of executing them; responses carry ``status="shed"``
    shed_deadlines: bool = True
    #: in-flight depth beyond which low-priority dynamic-parallelism
    #: batches are proactively degraded to their non-nested fallback
    #: (None disables overload degradation)
    degrade_pending_threshold: int | None = None
    # ------------------------------------------------------- autoscaling
    #: autoscale the device group between ``min_devices``/``max_devices``
    #: from queue-depth and rolling-p99 signals (see docs/serving.md)
    autoscale: bool = False
    #: autoscaler floor (defaults to ``devices``)
    min_devices: int | None = None
    #: autoscaler ceiling (defaults to ``devices``)
    max_devices: int | None = None
    #: seconds between autoscaler evaluations
    scale_check_interval_s: float = 0.05
    #: scale up when in-flight depth exceeds this many requests per device
    scale_up_pending_per_device: int = 8
    #: also scale up when rolling p99 latency (ms) exceeds this (None
    #: disables the latency trigger)
    scale_up_p99_ms: float | None = None
    #: minimum seconds between consecutive autoscaler resizes
    scale_cooldown_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ServiceError("max_pending must be >= 1")
        if self.max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ServiceError("batch_window_s cannot be negative")
        if self.inline_cost_threshold < 0:
            raise ServiceError("inline_cost_threshold cannot be negative")
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ServiceError(
                "request_timeout_s must be positive "
                "(None disables the timeout)"
            )
        if self.stats_window < 1:
            raise ServiceError("stats_window must be >= 1")
        if self.max_retries < 0:
            raise ServiceError("max_retries cannot be negative")
        if self.retry_backoff_s < 0:
            raise ServiceError("retry_backoff_s cannot be negative")
        if self.drain_timeout_s is not None and self.drain_timeout_s <= 0:
            raise ServiceError(
                "drain_timeout_s must be positive (None waits forever)"
            )
        resolve_engine(self.engine, error=ServiceError)
        from repro.backends import resolve_backend

        resolve_backend(self.backend, error=ServiceError)
        if self.devices < 1:
            raise ServiceError(f"devices must be >= 1, got {self.devices}")
        if self.backend == "queue" and self.devices > 1:
            raise ServiceError(
                "the queue backend is single-device; use devices=1"
            )
        if self.default_priority not in PRIORITY_RANK:
            raise ServiceError(
                f"unknown priority {self.default_priority!r}; "
                f"known: {', '.join(PRIORITIES)}"
            )
        for name, bound in (self.max_pending_per_class or {}).items():
            if name not in PRIORITY_RANK:
                raise ServiceError(
                    f"unknown priority {name!r} in max_pending_per_class; "
                    f"known: {', '.join(PRIORITIES)}"
                )
            if bound < 1:
                raise ServiceError(
                    f"max_pending_per_class[{name!r}] must be >= 1"
                )
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ServiceError("tenant_quota must be >= 1 (None disables it)")
        for tenant, quota in (self.tenant_quotas or {}).items():
            if quota < 1:
                raise ServiceError(
                    f"tenant_quotas[{tenant!r}] must be >= 1"
                )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ServiceError("default_deadline_s must be positive")
        if self.degrade_pending_threshold is not None \
                and self.degrade_pending_threshold < 1:
            raise ServiceError("degrade_pending_threshold must be >= 1")
        if self.min_devices is None:
            self.min_devices = self.devices
        if self.max_devices is None:
            self.max_devices = max(self.devices, self.min_devices)
        if self.autoscale:
            if self.backend == "queue":
                raise ServiceError(
                    "the queue backend is single-device; autoscale needs sim"
                )
            if not 1 <= self.min_devices <= self.devices <= self.max_devices:
                raise ServiceError(
                    f"autoscale bounds must satisfy 1 <= min_devices "
                    f"({self.min_devices}) <= devices ({self.devices}) <= "
                    f"max_devices ({self.max_devices})"
                )
            if self.scale_check_interval_s <= 0:
                raise ServiceError("scale_check_interval_s must be positive")
            if self.scale_up_pending_per_device < 1:
                raise ServiceError(
                    "scale_up_pending_per_device must be >= 1"
                )
            if self.scale_cooldown_s < 0:
                raise ServiceError("scale_cooldown_s cannot be negative")

    def tenant_quota_of(self, tenant: str) -> int | None:
        """Effective in-flight quota of one tenant (None = unlimited)."""
        if self.tenant_quotas and tenant in self.tenant_quotas:
            return self.tenant_quotas[tenant]
        return self.tenant_quota


class TemplateService:
    """Async template-serving runtime (see module docstring).

    ``worker_pool`` and ``run_fn`` are injectable for fault testing: the
    pool handles the "pool" route, ``run_fn`` the inline route (default
    :func:`~repro.service.workers.execute_batch`).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        worker_pool: WorkerPool | None = None,
        run_fn=None,
    ) -> None:
        self.config = config or ServiceConfig()
        if self.config.cache_dir is not None:
            # configure before the pool spawns so REPRO_CACHE_DIR (set by
            # configure) is inherited by the worker processes
            from repro.core.artifactcache import configure_artifact_cache

            configure_artifact_cache(self.config.cache_dir or None)
        self.stats = ServiceStats(window=self.config.stats_window)
        self.pool = worker_pool or WorkerPool(max_workers=self.config.workers)
        self.batcher = MicroBatcher(self.config.inline_cost_threshold,
                                    cache_dir=self.config.cache_dir)
        #: device topology: None for the classic single-device service, a
        #: DeviceGroup tracking per-device load when devices > 1 (or when
        #: the autoscaler may grow past one device)
        self.device_group = None
        if self.config.devices > 1 or (
            self.config.autoscale and self.config.max_devices > 1
        ):
            from repro.backends import DeviceGroup

            self.device_group = DeviceGroup(
                self.config.device, self.config.devices,
                engine=self.config.engine,
            )
        self._run_fn = run_fn or execute_batch
        self._queue: PriorityClassQueue | None = None
        self._loop_task: asyncio.Task | None = None
        self._scale_task: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._pending = 0
        #: in-flight requests per priority class / per tenant (admission
        #: bounds check these; decremented in _finish)
        self._class_pending = {name: 0 for name in PRIORITIES}
        self._tenant_pending: dict[str, int] = {}
        self._next_id = 0
        self._running = False
        #: named versioned workload streams (see register_workload)
        self._streams: dict[str, WorkloadStream] = {}

    @property
    def running(self) -> bool:
        return self._running

    @property
    def pending(self) -> int:
        """Admitted requests not yet answered."""
        return self._pending

    # ---------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bring the batch loop up (idempotent)."""
        if self._running:
            return
        self._queue = PriorityClassQueue()
        self._running = True
        self._loop_task = asyncio.create_task(
            self._batch_loop(), name="repro-service-batch-loop"
        )
        if self.config.autoscale and self.device_group is not None:
            self._scale_task = asyncio.create_task(
                self._autoscale_loop(), name="repro-service-autoscaler"
            )

    async def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` wait for in-flight work first.

        The drain wait is bounded by ``drain_timeout_s``: a dispatch path
        that wedged (or a run_fn that never returns) cannot hang shutdown
        forever.  Whatever is still unanswered at the bound — queued or
        mid-dispatch — gets a structured ``rejected``/``failed`` response
        instead of a leaked future.
        """
        if not self._running:
            return
        self._running = False
        drain_timed_out = False
        if drain:
            loop = asyncio.get_running_loop()
            bound = self.config.drain_timeout_s
            deadline = None if bound is None else loop.time() + bound
            while self._pending:
                if deadline is not None and loop.time() >= deadline:
                    drain_timed_out = True
                    obs.instant("service.drain_timeout",
                                pending=self._pending)
                    break
                await asyncio.sleep(0.005)
        if self._scale_task is not None:
            self._scale_task.cancel()
            try:
                await self._scale_task
            except asyncio.CancelledError:
                pass
            self._scale_task = None
        self._loop_task.cancel()
        try:
            await self._loop_task
        except asyncio.CancelledError:
            pass
        if self._dispatch_tasks:
            if drain_timed_out:
                # the drain bound fired: whatever is wedged mid-dispatch
                # is cancelled, and the dispatch wrapper answers its
                # requests with structured failures
                for task in list(self._dispatch_tasks):
                    task.cancel()
            await asyncio.gather(*self._dispatch_tasks, return_exceptions=True)
        # anything still queued (stop(drain=False) or a timed-out drain)
        # gets a structured answer
        while self._queue is not None and not self._queue.empty():
            request, future = self._queue.get_nowait()
            self._finish(
                request,
                future,
                Response(
                    id=request.id,
                    status="rejected",
                    template=str(getattr(request.template_obj, "name", "")),
                    workload=getattr(request.workload, "name", ""),
                    reason="service stopped before execution",
                    priority=request.priority,
                    tenant=request.tenant,
                ),
            )
        self.pool.shutdown()

    # ----------------------------------------------------------- streams
    def register_workload(
        self,
        name: str,
        workload,
        keep_versions: int = 8,
    ) -> WorkloadStream:
        """Register a named, versioned workload stream.

        Afterwards ``submit`` accepts the stream *name* in place of a
        workload object (optionally with ``version=`` to pin a retained
        snapshot), and :meth:`mutate_workload` advances the stream.
        """
        if not isinstance(name, str) or not name:
            raise ServiceError("stream name must be a non-empty string")
        if name in self._streams:
            raise ServiceError(f"workload stream {name!r} already registered")
        stream = WorkloadStream(name, workload, keep_versions=keep_versions)
        self._streams[name] = stream
        obs.instant("service.stream_register", stream=name,
                    version=stream.version)
        return stream

    def mutate_workload(self, name: str, batch, *,
                        warm_analysis: bool = True):
        """Apply one mutation batch to a registered stream.

        The new head is derived functionally — requests pinned to retained
        versions keep executing against their exact snapshots.  With
        ``warm_analysis`` (the default) the head's analysis is derived
        incrementally right here via :meth:`WorkloadAnalysis.apply_delta
        <repro.core.analysis.WorkloadAnalysis.apply_delta>`, so the next
        query on the new version pays a delta update, not a cold rebuild.
        Returns the :class:`~repro.core.mutation.MutationDelta`.
        """
        stream = self._stream_of(name)
        with obs.span("service.mutate", stream=name):
            delta = stream.mutate(batch)
        self.stats.record_mutation()
        if warm_analysis:
            from repro.core.analysis import get_analysis

            get_analysis(stream.head)
        return delta

    def _stream_of(self, name: str) -> WorkloadStream:
        stream = self._streams.get(name)
        if stream is None:
            known = ", ".join(sorted(self._streams)) or "none"
            raise ServiceError(
                f"unknown workload stream {name!r} (registered: {known})"
            )
        return stream

    # ---------------------------------------------------------- admission
    async def submit(
        self,
        template,
        workload=None,
        *,
        device: DeviceConfig | None = None,
        params: TemplateParams | None = None,
        engine: str | None = None,
        tenant: str = "",
        priority: str | None = None,
        deadline_s: float | None = None,
        version: int | None = None,
    ) -> Response:
        """Admit one query and await its response.

        ``template`` may be omitted by passing the workload alone
        (``submit(workload)``) or ``None`` — both fall back to the
        config's ``default_template`` (``"auto"`` unless overridden), so
        the service front door matches ``repro.run(workload)``.

        ``workload`` may be a registered stream name (a string), resolved
        to that stream's head — or, with ``version=``, to a pinned
        retained snapshot.  Snapshots are immutable, so a request admitted
        against version ``v`` executes against exactly ``v``'s trace even
        while the mutation stream advances.

        ``tenant``/``priority``/``deadline_s`` are the SLO knobs: tenant
        quotas and per-class bounds act at admission, the priority class
        orders scheduling, and the deadline arms deadline-aware shedding
        (defaults come from the config; see docs/serving.md).
        """
        if workload is None:
            template, workload = None, template
        if isinstance(workload, str):
            workload = self._stream_of(workload).get(version)
        elif version is not None:
            raise ServiceError(
                "version= requires a registered stream name as the workload"
            )
        request = Request(
            template=self.config.default_template if template is None else template,
            workload=workload,
            device=device or self.config.device,
            params=params or TemplateParams(),
            engine=engine or self.config.engine,
            backend=self.config.backend,
            tenant=tenant,
            priority=priority or self.config.default_priority,
            deadline_s=(
                deadline_s if deadline_s is not None
                else self.config.default_deadline_s
            ),
        )
        return await self.submit_request(request)

    def _reject(self, request: Request, kind: str, reason: str) -> Response:
        """Build one structured admission rejection (counted by kind)."""
        self.stats.record_rejected(kind=kind, priority=request.priority)
        obs.instant("service.reject", kind=kind, pending=self._pending,
                    priority=request.priority)
        return Response(
            id=request.id,
            status="rejected",
            template=str(getattr(request.template_obj, "name", "")),
            workload=getattr(request.workload, "name", ""),
            reason=reason,
            priority=request.priority,
            tenant=request.tenant,
        )

    async def submit_request(self, request: Request) -> Response:
        """Admit an already-built :class:`Request` and await its response.

        Admission control is immediate: over ``max_pending`` in-flight
        requests — or over the request's class bound or its tenant's
        quota — the return value is a ``rejected`` response carrying the
        queue state in ``reason``; the caller is never blocked on a full
        queue.  Every response, rejections included, carries a real
        monotonic ``id``.
        """
        if not self._running:
            raise ServiceError("service is not running (call start())")
        # ids are assigned before any admission check so every structured
        # rejection is correlatable (no more id=-1 responses)
        request.id = self._next_id
        self._next_id += 1
        if self._pending >= self.config.max_pending:
            return self._reject(
                request, "pending",
                f"queue full: {self._pending} in-flight requests >= "
                f"max_pending={self.config.max_pending}",
            )
        class_bound = (self.config.max_pending_per_class or {}).get(
            request.priority
        )
        if class_bound is not None \
                and self._class_pending[request.priority] >= class_bound:
            return self._reject(
                request, "class",
                f"class full: {self._class_pending[request.priority]} "
                f"in-flight {request.priority!r} requests >= "
                f"max_pending_per_class[{request.priority!r}]={class_bound}",
            )
        quota = self.config.tenant_quota_of(request.tenant)
        if quota is not None \
                and self._tenant_pending.get(request.tenant, 0) >= quota:
            return self._reject(
                request, "tenant",
                f"tenant quota: {self._tenant_pending.get(request.tenant, 0)} "
                f"in-flight requests of tenant {request.tenant!r} >= "
                f"quota={quota}",
            )
        loop = asyncio.get_running_loop()
        request.created_s = loop.time()
        request.created_perf = time.perf_counter()
        if request.deadline_s is not None:
            request.deadline_at = request.created_s + request.deadline_s
        self._pending += 1
        self._class_pending[request.priority] += 1
        self._tenant_pending[request.tenant] = (
            self._tenant_pending.get(request.tenant, 0) + 1
        )
        self.stats.record_admitted(self._pending, priority=request.priority)
        future = loop.create_future()
        self._queue.put_nowait((request, future))
        return await future

    # ------------------------------------------------------ batching loop
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            pending = [await self._queue.get()]
            deadline = loop.time() + self.config.batch_window_s
            try:
                while len(pending) < self.config.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        pending.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            except asyncio.CancelledError:
                # stop() cancelled us mid-window: hand collected-but-
                # undispatched requests back so the stop path answers
                # them instead of leaving their futures pending forever
                self._queue.requeue_front(pending)
                raise
            with obs.span("service.coalesce", pending=len(pending)):
                batches = self.batcher.group(pending)
            singles, fused_groups = self._fusion_groups(batches)
            for batch in singles:
                task = asyncio.create_task(self._dispatch(batch))
                self._dispatch_tasks.add(task)
                task.add_done_callback(self._dispatch_tasks.discard)
            for group in fused_groups:
                task = asyncio.create_task(self._dispatch_fused(group))
                self._dispatch_tasks.add(task)
                task.add_done_callback(self._dispatch_tasks.discard)

    def _fusion_groups(
        self, batches: list[Batch]
    ) -> tuple[list[Batch], list[list[Batch]]]:
        """Partition a window's batches into per-batch dispatches and
        fusable groups.

        A group fuses when >= 2 inline ``"sim"`` batches of the window
        share a device config and engine — they become one fused executor
        pass with per-batch result demux.  Everything else (pool routes,
        queue backend, device groups, custom run_fn, fusion disabled)
        keeps the classic one-dispatch-per-batch path, bit-for-bit.
        """
        if (
            not self.config.fuse_batches
            or self.device_group is not None
            or self._run_fn is not execute_batch
        ):
            return batches, []
        singles: list[Batch] = []
        groups: dict[tuple, list[Batch]] = {}
        for batch in batches:
            if batch.route != "inline" or batch.spec.backend != "sim":
                singles.append(batch)
                continue
            key = (batch.spec.device.fingerprint(), batch.spec.engine)
            groups.setdefault(key, []).append(batch)
        fused = []
        for members in groups.values():
            if len(members) >= 2:
                fused.append(members)
            else:
                singles.extend(members)
        return singles, fused

    # -------------------------------------------------- execution policy
    async def _execute(self, spec: BatchSpec, route: str) -> dict:
        timeout = self.config.request_timeout_s
        if route == "pool":
            return await self.pool.run(spec, timeout)
        return await asyncio.wait_for(
            asyncio.to_thread(self._run_fn, spec), timeout
        )

    async def _dispatch(self, batch: Batch, record: bool = True) -> None:
        """Leak-proof dispatch: every member future is always answered.

        The policy body (`_dispatch_batch`) can fail in ways retries do
        not model — a run_fn returning a malformed summary, a bug in the
        degradation path, cancellation by a timed-out drain.  Before this
        wrapper existed, such a failure killed the dispatch task with
        member futures unanswered and ``_pending`` never decremented, so
        ``stop(drain=True)`` spun forever.  Now any escaping exception is
        converted into structured ``failed`` responses for every member
        not already answered.
        """
        try:
            await self._dispatch_batch(batch, record=record)
        except asyncio.CancelledError:
            self._fail_unanswered(batch, "cancelled during dispatch")
            raise
        except BaseException as exc:  # noqa: BLE001 - lifecycle boundary
            obs.instant("service.dispatch_error",
                        error=f"{type(exc).__name__}: {exc}")
            self._fail_unanswered(
                batch, f"dispatch error: {type(exc).__name__}: {exc}"
            )

    async def _dispatch_fused(self, batches: list[Batch]) -> None:
        """Execute one fusable group as a single fused executor pass.

        Per-batch policy (shed, overload degradation) still applies
        before fusion.  Any failure of the fused pass — a timeout, a bad
        template, a worker error — falls back to dispatching each batch
        through the classic per-batch path (which carries its own retry /
        degradation policy), so fusion can never make a request fail that
        would have succeeded unfused.  Leak-proof like :meth:`_dispatch`:
        every member future is always answered.
        """
        try:
            await self._dispatch_fused_inner(batches)
        except asyncio.CancelledError:
            for batch in batches:
                self._fail_unanswered(batch, "cancelled during dispatch")
            raise
        except BaseException as exc:  # noqa: BLE001 - lifecycle boundary
            obs.instant("service.dispatch_error",
                        error=f"{type(exc).__name__}: {exc}")
            for batch in batches:
                self._fail_unanswered(
                    batch, f"dispatch error: {type(exc).__name__}: {exc}"
                )

    async def _dispatch_fused_inner(self, batches: list[Batch]) -> None:
        live: list[Batch] = []
        for batch in batches:
            self.stats.record_batch(batch.size, batch.route)
            shed_reason = self._should_shed(batch)
            if shed_reason is not None:
                self._shed(batch, shed_reason)
                continue
            self._maybe_degrade_for_load(batch)
            live.append(batch)
        if not live:
            return
        if len(live) == 1:
            # policy dropped the group to one batch: nothing to fuse
            await self._dispatch_batch(live[0], record=False)
            return
        specs = [batch.spec for batch in live]
        try:
            exec_start = time.perf_counter()
            with obs.span("service.execute_fused", batches=len(live),
                          size=sum(b.size for b in live)):
                summaries = await asyncio.wait_for(
                    asyncio.to_thread(execute_batch_fused, specs),
                    self.config.request_timeout_s,
                )
            self.stats.record_exec(time.perf_counter() - exec_start)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - policy boundary
            # the fused pass failed as a unit; re-dispatch each batch on
            # the classic path so per-batch retries/degradation apply
            obs.instant("service.fuse_fallback", batches=len(live),
                        error=f"{type(exc).__name__}: {exc}")
            for batch in live:
                await self._dispatch(batch, record=False)
            return
        self.stats.record_fused(len(live))
        obs.add_counter("service.fused_batches", len(live))
        for batch, summary in zip(live, summaries):
            self.stats.record_cache(
                summary.get("cache_hits", 0), summary.get("cache_misses", 0)
            )
            self._answer_ok(
                batch, summary, attempts=1,
                degraded=getattr(batch, "_load_degraded", False),
                route=batch.route, device_index=0,
            )

    def _answer_ok(self, batch: Batch, summary: dict, *, attempts: int,
                   degraded: bool, route: str, device_index: int) -> None:
        """Answer every member of ``batch`` from one execution summary."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        for request, future in zip(batch.requests, batch.futures):
            self._finish(
                request,
                future,
                Response(
                    id=request.id,
                    status="ok",
                    template=summary["template"],
                    workload=summary["workload"],
                    degraded=degraded,
                    time_ms=summary["time_ms"],
                    metrics=summary["metrics"],
                    latency_s=now - request.created_s,
                    batch_size=batch.size,
                    attempts=attempts,
                    route=route,
                    cache_hit=summary.get("cache_hits", 0) > 0,
                    device=device_index,
                    priority=request.priority,
                    tenant=request.tenant,
                ),
            )

    def _fail_unanswered(self, batch: Batch, reason: str) -> None:
        """Answer (and un-count) every batch member not yet finished."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        for request, future in zip(batch.requests, batch.futures):
            if getattr(request, "_answered", False):
                continue
            self._finish(
                request,
                future,
                Response(
                    id=request.id,
                    status="failed",
                    template=str(getattr(request.template_obj, "name", "")),
                    workload=getattr(request.workload, "name", ""),
                    reason=reason,
                    latency_s=now - request.created_s,
                    batch_size=batch.size,
                    route=batch.route,
                    priority=request.priority,
                    tenant=request.tenant,
                ),
            )

    def _shed(self, batch: Batch, reason: str) -> None:
        """Answer every member with ``status="shed"`` (deadline missed)."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        obs.instant("service.shed", size=batch.size,
                    priority=batch.priority, reason=reason)
        for request, future in zip(batch.requests, batch.futures):
            self._finish(
                request,
                future,
                Response(
                    id=request.id,
                    status="shed",
                    template=str(getattr(request.template_obj, "name", "")),
                    workload=getattr(request.workload, "name", ""),
                    reason=reason,
                    latency_s=now - request.created_s,
                    batch_size=batch.size,
                    priority=request.priority,
                    tenant=request.tenant,
                ),
            )

    def _should_shed(self, batch: Batch) -> str | None:
        """Deadline-aware scheduling: reason to shed, or None to run.

        A batch is shed when its tightest member deadline already passed,
        or when the rolling mean execution time predicts the run cannot
        finish before it.  Predictive shedding drops work *before* paying
        for it — the paper's admission analogue of cutting a kernel whose
        launch latency alone would blow the budget.
        """
        if not self.config.shed_deadlines:
            return None
        deadline_at = batch.deadline_at
        if deadline_at is None:
            return None
        now = asyncio.get_running_loop().time()
        if now >= deadline_at:
            return "deadline expired before execution"
        mean = self.stats.mean_exec_s()
        if mean > 0.0 and now + mean > deadline_at:
            return (
                f"deadline unreachable: {deadline_at - now:.4f}s left, "
                f"mean execution {mean:.4f}s"
            )
        return None

    def _maybe_degrade_for_load(self, batch: Batch) -> bool:
        """Overload policy: degrade low-priority dynpar batches up front.

        When the in-flight depth crosses ``degrade_pending_threshold``,
        a ``low``-priority batch whose template uses dynamic parallelism
        is rewritten to the family's non-nested fallback *before*
        execution — trading its fidelity for queue headroom, without
        touching high/normal traffic.
        """
        if getattr(batch, "_load_degraded", False):
            # already rewritten (a fused pass that fell back re-dispatches
            # its batches); don't double-count or re-replace
            return True
        threshold = self.config.degrade_pending_threshold
        if threshold is None or self._pending < threshold:
            return False
        if batch.priority != "low":
            return False
        template_obj = batch.requests[0].template_obj
        if not getattr(template_obj, "uses_dynamic_parallelism", False):
            return False
        fallback = DEGRADE_FALLBACK[batch.requests[0].kind]
        batch.spec = replace(batch.spec, template=fallback)
        batch._load_degraded = True
        self.stats.record_degraded(priority=batch.priority, under_load=True)
        obs.instant("service.load_degrade", fallback=fallback,
                    pending=self._pending, size=batch.size)
        return True

    async def _dispatch_batch(self, batch: Batch, record: bool = True) -> None:
        if record:
            self.stats.record_batch(batch.size, batch.route)
        shed_reason = self._should_shed(batch)
        if shed_reason is not None:
            self._shed(batch, shed_reason)
            return
        load_degraded = self._maybe_degrade_for_load(batch)
        if batch.spec.backend == "queue" and not getattr(
            batch.requests[0].template_obj, "queue_compatible", True
        ):
            # capability-aware routing: the queue cannot honour this
            # template's launch-wide barrier semantics, so the batch runs
            # on the BSP simulator instead (counted, never silent)
            batch.spec = replace(batch.spec, backend="sim")
            self.stats.record_queue_fallback()
            obs.instant(
                "service.queue_fallback",
                template=str(getattr(batch.requests[0].template_obj,
                                     "name", "")),
            )
        summary = None
        error: BaseException | None = None
        degraded = False
        attempts = 0
        device_index = 0
        if self.device_group is not None:
            # least-loaded routing: reserve a device for this batch; the
            # reservation is released (crediting the simulated time the
            # batch ran) after execution settles
            device_index = self.device_group.acquire()
            batch.spec.device_index = device_index
        template_name = str(getattr(batch.requests[0].template_obj, "name", ""))
        with obs.span("service.batch", route=batch.route, size=batch.size,
                      template=template_name, device=device_index):
            for attempt in range(1 + self.config.max_retries):
                attempts += 1
                try:
                    exec_start = time.perf_counter()
                    with obs.span("service.execute", route=batch.route,
                                  attempt=attempts, template=template_name):
                        summary = await self._execute(batch.spec, batch.route)
                    self.stats.record_exec(time.perf_counter() - exec_start)
                    break
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # noqa: BLE001 - policy boundary
                    error = exc
                    if attempt < self.config.max_retries:
                        timed_out = isinstance(
                            exc, (asyncio.TimeoutError, WorkerTimeoutError)
                        )
                        self.stats.record_retry(timed_out)
                        await asyncio.sleep(
                            self.config.retry_backoff_s * (2 ** attempt)
                        )
            template_obj = batch.requests[0].template_obj
            if (
                summary is None
                and self.config.degrade
                and getattr(template_obj, "uses_dynamic_parallelism", False)
            ):
                fallback = DEGRADE_FALLBACK[batch.requests[0].kind]
                try:
                    # the fallback runs inline: the pool just proved
                    # unreliable
                    with obs.span("service.degrade", fallback=fallback,
                                  template=template_name):
                        summary = await self._execute(
                            replace(batch.spec, template=fallback), "inline"
                        )
                    degraded = True
                    self.stats.record_degraded(priority=batch.priority)
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # noqa: BLE001 - policy boundary
                    error = exc
        if self.device_group is not None:
            self.device_group.complete(
                device_index,
                busy_ms=summary["time_ms"] if summary is not None else 0.0,
            )
        if summary is not None:
            self.stats.record_cache(
                summary.get("cache_hits", 0), summary.get("cache_misses", 0)
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        for request, future in zip(batch.requests, batch.futures):
            if summary is not None:
                response = Response(
                    id=request.id,
                    status="ok",
                    template=summary["template"],
                    workload=summary["workload"],
                    degraded=degraded or load_degraded,
                    time_ms=summary["time_ms"],
                    metrics=summary["metrics"],
                    latency_s=now - request.created_s,
                    batch_size=batch.size,
                    attempts=attempts + (1 if degraded else 0),
                    route=batch.route if not degraded else "inline",
                    cache_hit=summary.get("cache_hits", 0) > 0,
                    device=device_index,
                    priority=request.priority,
                    tenant=request.tenant,
                )
            else:
                response = Response(
                    id=request.id,
                    status="failed",
                    template=str(getattr(template_obj, "name", "")),
                    workload=getattr(request.workload, "name", ""),
                    reason=f"{type(error).__name__}: {error}",
                    latency_s=now - request.created_s,
                    batch_size=batch.size,
                    attempts=attempts,
                    route=batch.route,
                    priority=request.priority,
                    tenant=request.tenant,
                )
            self._finish(request, future, response)

    def _finish(self, request: Request, future, response: Response) -> None:
        if getattr(request, "_answered", False):
            return
        request._answered = True
        self._pending -= 1
        self._class_pending[request.priority] -= 1
        tenant_left = self._tenant_pending.get(request.tenant, 0) - 1
        if tenant_left > 0:
            self._tenant_pending[request.tenant] = tenant_left
        else:
            self._tenant_pending.pop(request.tenant, None)
        self.stats.record_depth(self._pending)
        self.stats.record_response(
            response.status, response.latency_s, priority=request.priority
        )
        if obs.enabled() and request.created_perf:
            now = time.perf_counter()
            obs.complete(
                "service.request", request.created_perf,
                now - request.created_perf, status=response.status,
                template=response.template, batch_size=response.batch_size,
                route=response.route, degraded=response.degraded,
            )
        if not future.done():
            future.set_result(response)

    # ------------------------------------------------------- autoscaling
    async def _autoscale_loop(self) -> None:
        """Elastic device-group sizing from queue-depth and p99 signals.

        Scale **up** when the in-flight depth exceeds
        ``scale_up_pending_per_device`` per device (or rolling p99 crosses
        ``scale_up_p99_ms``); scale **down** when depth would comfortably
        fit on one device fewer and latency is healthy.  Resizes respect
        ``min_devices``/``max_devices`` and a cooldown, and the group only
        ever removes an idle member, so a device with in-flight batches is
        never torn down (see DeviceGroup.remove_member).
        """
        loop = asyncio.get_running_loop()
        last_change = loop.time() - self.config.scale_cooldown_s
        while True:
            await asyncio.sleep(self.config.scale_check_interval_s)
            now = loop.time()
            if now - last_change < self.config.scale_cooldown_s:
                continue
            n = self.device_group.n_devices
            p99 = self.stats.rolling_p99_ms()
            overloaded = (
                self._pending >= self.config.scale_up_pending_per_device * n
            )
            if not overloaded and self.config.scale_up_p99_ms is not None:
                overloaded = p99 > self.config.scale_up_p99_ms
            if overloaded and n < self.config.max_devices:
                self.device_group.add_member()
                self.pool.resize(max(self.config.workers, n + 1))
                self.stats.record_scale(up=True)
                obs.instant("service.scale_up", devices=n + 1,
                            pending=self._pending)
                last_change = now
                continue
            if n > self.config.min_devices:
                fits_smaller = self._pending * 2 <= (
                    self.config.scale_up_pending_per_device * (n - 1)
                )
                latency_ok = (
                    self.config.scale_up_p99_ms is None
                    or p99 <= self.config.scale_up_p99_ms
                )
                if fits_smaller and latency_ok \
                        and self.device_group.remove_member():
                    self.pool.resize(max(self.config.workers, n - 1))
                    self.stats.record_scale(up=False)
                    obs.instant("service.scale_down", devices=n - 1,
                                pending=self._pending)
                    last_change = now

    # ----------------------------------------------------------- metrics
    def snapshot(self) -> dict:
        """Service + pool counters in one dict (``stats()`` on handles)."""
        snap = self.stats.snapshot()
        snap["pool"] = self.pool.snapshot()
        from repro.core.artifactcache import get_artifact_cache

        disk = get_artifact_cache()
        if disk is not None:
            # inline-route counters of this process; pool workers keep
            # their own (summed per batch into execute_batch summaries)
            snap["disk_cache"] = disk.snapshot()
        if obs.enabled():
            # aggregated per-span-name timings of the traced region; the
            # tracer is process-wide, so concurrent traced work outside
            # this service shows up too
            snap["obs"] = obs.summary()
        if self.device_group is not None:
            snap["devices"] = self.device_group.snapshot()
        if self._queue is not None:
            snap["queue"] = {"per_class": self._queue.sizes()}
        if self._streams:
            snap["streams"] = {
                name: stream.snapshot()
                for name, stream in self._streams.items()
            }
        snap["config"] = {
            "max_pending": self.config.max_pending,
            "max_batch": self.config.max_batch,
            "batch_window_s": self.config.batch_window_s,
            "inline_cost_threshold": self.config.inline_cost_threshold,
            "workers": self.config.workers,
            "engine": self.config.engine,
            "backend": self.config.backend,
            "devices": self.config.devices,
            "default_priority": self.config.default_priority,
            "tenant_quota": self.config.tenant_quota,
            "default_deadline_s": self.config.default_deadline_s,
            "shed_deadlines": self.config.shed_deadlines,
            "degrade_pending_threshold":
                self.config.degrade_pending_threshold,
            "autoscale": self.config.autoscale,
            "min_devices": self.config.min_devices,
            "max_devices": self.config.max_devices,
            "drain_timeout_s": self.config.drain_timeout_s,
        }
        return snap
