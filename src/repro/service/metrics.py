"""Serving metrics: counters, latency percentiles, batching stats.

One :class:`ServiceStats` instance per service.  The event loop records
into it; ``snapshot()`` may be called from any thread (the sync handle
reads it from the caller's thread), so mutation goes through a lock.
Latencies and batch sizes are kept in bounded windows — the service is
long-lived and must not grow memory with traffic.

Every lifecycle counter is additionally kept **per priority class**
(``high`` / ``normal`` / ``low``), including a per-class latency window,
so the SLO bench can report p50/p99 per class straight off a snapshot.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["percentile", "percentiles", "ServiceStats", "ClassStats"]


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    ``values`` must be sorted ascending; returns 0.0 for an empty list.
    """
    if not values:
        return 0.0
    if len(values) == 1:
        return float(values[0])
    pos = (q / 100.0) * (len(values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(values) - 1)
    frac = pos - lo
    return float(values[lo] * (1 - frac) + values[hi] * frac)


def percentiles(values, qs=(50, 95, 99)) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for an unsorted iterable."""
    ordered = sorted(float(v) for v in values)
    return {f"p{q:g}": percentile(ordered, q) for q in qs}


class ClassStats:
    """Per-priority-class lifecycle counters + a bounded latency window.

    Mutated only under the owning :class:`ServiceStats` lock.
    """

    __slots__ = ("submitted", "succeeded", "failed", "rejected", "shed",
                 "degraded", "latencies")

    def __init__(self, window: int) -> None:
        self.submitted = 0
        self.succeeded = 0
        self.failed = 0
        #: admission + drain rejections of this class combined
        self.rejected = 0
        self.shed = 0
        self.degraded = 0
        self.latencies: deque[float] = deque(maxlen=window)

    def snapshot(self) -> dict:
        lat = sorted(self.latencies)
        return {
            "submitted": self.submitted,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "rejected": self.rejected,
            "shed": self.shed,
            "degraded": self.degraded,
            "latency_ms": {
                "count": len(lat),
                "p50": round(percentile(lat, 50) * 1e3, 3),
                "p99": round(percentile(lat, 99) * 1e3, 3),
            },
        }


class ServiceStats:
    """Counters and windows behind ``TemplateService.stats()``.

    Request accounting upholds two invariants (checked by
    :meth:`invariant_violations` and the tier-1 invariant suite):

    * ``submitted == served + admission_rejected`` — every submission is
      either turned away at admission or eventually answered through the
      response path, never both and never neither;
    * ``served == succeeded + failed + drain_rejected + shed`` — every
      response has exactly one terminal status (a drain reject *is* a
      response: the request was admitted, then answered with ``rejected``
      when the service stopped before executing it; a shed response is a
      request dropped by deadline-aware scheduling).

    ``rejected`` in :meth:`snapshot` is the sum of both reject kinds,
    which are also reported separately.  ``admission_rejected``
    additionally splits out ``quota_rejected`` (per-tenant quota) and
    ``class_rejected`` (per-priority-class queue bound).
    """

    def __init__(self, window: int = 4096) -> None:
        self._lock = threading.Lock()
        self.window = window
        # request lifecycle
        self.submitted = 0
        self.served = 0
        self.succeeded = 0
        #: turned away at admission (never entered the queue)
        self.admission_rejected = 0
        #: admission rejections due to a per-tenant quota (subset of
        #: admission_rejected)
        self.quota_rejected = 0
        #: admission rejections due to a per-priority-class queue bound
        #: (subset of admission_rejected)
        self.class_rejected = 0
        #: admitted but answered "rejected" at stop(drain=False)
        self.drain_rejected = 0
        #: admitted, then dropped by deadline-aware scheduling (the batch
        #: loop determined the deadline could not be met)
        self.shed = 0
        self.failed = 0
        self.degraded = 0
        #: degradations forced proactively by the overload policy (also
        #: counted in ``degraded``)
        self.load_degraded = 0
        self.retries = 0
        self.timeouts = 0
        # autoscaling
        self.scale_ups = 0
        self.scale_downs = 0
        # batching
        self.batches = 0
        self.inline_batches = 0
        self.pool_batches = 0
        self.coalesced_requests = 0  # requests beyond the first in a batch
        #: batches routed back to the BSP simulator because the queue
        #: backend cannot run their template (capability fallback)
        self.queue_fallbacks = 0
        #: inline batches executed through a fused (multi-fingerprint)
        #: executor pass instead of one pass each
        self.fused_batches = 0
        #: fused executor passes (each covers >= 2 batches)
        self.fused_passes = 0
        self._batch_sizes: deque[int] = deque(maxlen=window)
        # queue
        self.queue_depth = 0
        self.max_queue_depth = 0
        # plan cache (aggregated from batch summaries; pool workers have
        # their own process-local caches, so this is the service-wide view)
        self.cache_hits = 0
        self.cache_misses = 0
        #: committed workload-stream mutation batches (mutate_workload)
        self.mutations = 0
        # latency window (seconds)
        self._latencies: deque[float] = deque(maxlen=window)
        # rolling batch-execution wall time (the deadline predictor and
        # the autoscaler read this)
        self._exec_wall: deque[float] = deque(maxlen=min(window, 256))
        # per-priority-class breakdown, created on first sighting
        self.per_class: dict[str, ClassStats] = {}

    def _class(self, priority: str) -> ClassStats:
        stats = self.per_class.get(priority)
        if stats is None:
            stats = self.per_class[priority] = ClassStats(self.window)
        return stats

    # ------------------------------------------------------------ recording
    def record_admitted(self, depth: int, priority: str = "normal") -> None:
        with self._lock:
            self.submitted += 1
            self._class(priority).submitted += 1
            self.queue_depth = depth
            self.max_queue_depth = max(self.max_queue_depth, depth)

    def record_rejected(self, kind: str = "pending",
                        priority: str = "normal") -> None:
        """An admission rejection: submitted but never admitted/served.

        ``kind`` names the bound that fired: ``"pending"`` (global
        ``max_pending``), ``"tenant"`` (per-tenant quota) or ``"class"``
        (per-priority-class queue bound).
        """
        with self._lock:
            self.submitted += 1
            self.admission_rejected += 1
            if kind == "tenant":
                self.quota_rejected += 1
            elif kind == "class":
                self.class_rejected += 1
            cls = self._class(priority)
            cls.submitted += 1
            cls.rejected += 1

    def record_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth

    def record_batch(self, size: int, route: str) -> None:
        with self._lock:
            self.batches += 1
            if route == "pool":
                self.pool_batches += 1
            else:
                self.inline_batches += 1
            self.coalesced_requests += size - 1
            self._batch_sizes.append(size)

    def record_retry(self, timed_out: bool) -> None:
        with self._lock:
            self.retries += 1
            if timed_out:
                self.timeouts += 1

    def record_degraded(self, priority: str = "normal",
                        under_load: bool = False) -> None:
        with self._lock:
            self.degraded += 1
            if under_load:
                self.load_degraded += 1
            self._class(priority).degraded += 1

    def record_exec(self, wall_s: float) -> None:
        """One batch execution's wall time (feeds the deadline predictor)."""
        with self._lock:
            self._exec_wall.append(wall_s)

    def mean_exec_s(self) -> float:
        """Rolling mean batch-execution wall time (0.0 with no samples)."""
        with self._lock:
            if not self._exec_wall:
                return 0.0
            return sum(self._exec_wall) / len(self._exec_wall)

    def rolling_p99_ms(self) -> float:
        """p99 latency (ms) over the current window (autoscaler signal)."""
        with self._lock:
            lat = sorted(self._latencies)
        return percentile(lat, 99) * 1e3

    def record_scale(self, up: bool) -> None:
        """One autoscaler resize of the device group."""
        with self._lock:
            if up:
                self.scale_ups += 1
            else:
                self.scale_downs += 1

    def record_queue_fallback(self) -> None:
        """A batch the queue backend handed back to the BSP simulator."""
        with self._lock:
            self.queue_fallbacks += 1

    def record_fused(self, batches: int) -> None:
        """One fused executor pass covering ``batches`` coalesced batches."""
        with self._lock:
            self.fused_passes += 1
            self.fused_batches += batches

    def record_cache(self, hits: int, misses: int) -> None:
        with self._lock:
            self.cache_hits += hits
            self.cache_misses += misses

    def record_mutation(self) -> None:
        """One committed workload-stream mutation batch."""
        with self._lock:
            self.mutations += 1

    def record_response(self, status: str, latency_s: float,
                        priority: str = "normal") -> None:
        """A response delivered to an *admitted* request (any status)."""
        with self._lock:
            self.served += 1
            cls = self._class(priority)
            if status == "ok":
                self.succeeded += 1
                cls.succeeded += 1
                cls.latencies.append(latency_s)
            elif status == "rejected":
                self.drain_rejected += 1
                cls.rejected += 1
            elif status == "shed":
                self.shed += 1
                cls.shed += 1
            else:
                self.failed += 1
                cls.failed += 1
            self._latencies.append(latency_s)

    def invariant_violations(self) -> list[str]:
        """Human-readable accounting violations (empty when consistent).

        Call at a quiescent point — with requests in flight, ``submitted``
        legitimately runs ahead of ``served + admission_rejected``.
        """
        with self._lock:
            problems = []
            if self.submitted != self.served + self.admission_rejected:
                problems.append(
                    f"submitted ({self.submitted}) != served "
                    f"({self.served}) + admission_rejected "
                    f"({self.admission_rejected})"
                )
            terminal = (self.succeeded + self.failed + self.drain_rejected
                        + self.shed)
            if self.served != terminal:
                problems.append(
                    f"served ({self.served}) != succeeded "
                    f"({self.succeeded}) + failed ({self.failed}) + "
                    f"drain_rejected ({self.drain_rejected}) + "
                    f"shed ({self.shed})"
                )
            if self.admission_rejected < self.quota_rejected \
                    + self.class_rejected:
                problems.append(
                    f"admission_rejected ({self.admission_rejected}) < "
                    f"quota_rejected ({self.quota_rejected}) + "
                    f"class_rejected ({self.class_rejected})"
                )
            per_class_submitted = sum(
                c.submitted for c in self.per_class.values()
            )
            if self.per_class and per_class_submitted != self.submitted:
                problems.append(
                    f"per-class submitted ({per_class_submitted}) != "
                    f"submitted ({self.submitted})"
                )
            return problems

    # ------------------------------------------------------------- reading
    def snapshot(self) -> dict:
        """Point-in-time view of every counter plus derived aggregates."""
        with self._lock:
            lat = sorted(self._latencies)
            sizes = list(self._batch_sizes)
            probes = self.cache_hits + self.cache_misses
            return {
                "requests": {
                    "submitted": self.submitted,
                    "served": self.served,
                    "succeeded": self.succeeded,
                    "rejected": self.admission_rejected + self.drain_rejected,
                    "admission_rejected": self.admission_rejected,
                    "quota_rejected": self.quota_rejected,
                    "class_rejected": self.class_rejected,
                    "drain_rejected": self.drain_rejected,
                    "shed": self.shed,
                    "failed": self.failed,
                    "degraded": self.degraded,
                    "load_degraded": self.load_degraded,
                    "retries": self.retries,
                    "timeouts": self.timeouts,
                },
                "classes": {
                    name: cls.snapshot()
                    for name, cls in sorted(self.per_class.items())
                },
                "autoscaler": {
                    "scale_ups": self.scale_ups,
                    "scale_downs": self.scale_downs,
                },
                "batching": {
                    "batches": self.batches,
                    "inline_batches": self.inline_batches,
                    "pool_batches": self.pool_batches,
                    "coalesced_requests": self.coalesced_requests,
                    "queue_fallbacks": self.queue_fallbacks,
                    "fused_batches": self.fused_batches,
                    "fused_passes": self.fused_passes,
                    "mean_batch": (
                        round(sum(sizes) / len(sizes), 3) if sizes else 0.0
                    ),
                    "max_batch": max(sizes) if sizes else 0,
                },
                "queue": {
                    "depth": self.queue_depth,
                    "max_depth": self.max_queue_depth,
                },
                "mutations": self.mutations,
                "plan_cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": (
                        round(self.cache_hits / probes, 4) if probes else 0.0
                    ),
                },
                "latency_ms": {
                    "count": len(lat),
                    "mean": (
                        round(sum(lat) / len(lat) * 1e3, 3) if lat else 0.0
                    ),
                    "p50": round(percentile(lat, 50) * 1e3, 3),
                    "p95": round(percentile(lat, 95) * 1e3, 3),
                    "p99": round(percentile(lat, 99) * 1e3, 3),
                    "max": round(lat[-1] * 1e3, 3) if lat else 0.0,
                },
            }
