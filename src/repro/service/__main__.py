"""CLI demo of the serving layer.

Runs a fingerprint-heavy closed-loop load through a service and prints
the throughput/latency comparison against the per-request baseline plus
the full metrics snapshot::

    python -m repro.service
    python -m repro.service --requests 400 --clients 32 --max-batch 32
    python -m repro.service --skip-baseline      # service numbers only
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.handle import serve
from repro.service.loadgen import (
    build_request_mix,
    mix_profile,
    run_closed_loop,
    run_unbatched,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a synthetic template-query load and report "
                    "throughput, latency percentiles and service metrics.",
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--distinct", type=int, default=6,
                        help="distinct (workload, template) identities")
    parser.add_argument("--hot-fraction", type=float, default=0.75,
                        help="request share of the hot identities")
    parser.add_argument("--outer-size", type=int, default=6000,
                        help="outer iterations per generated workload")
    parser.add_argument("--clients", type=int, default=16,
                        help="closed-loop client threads")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--window-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skip-baseline", action="store_true",
                        help="skip the sequential per-request baseline")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist analyses/plans/run results under DIR, "
                             "shared by the service and its pool workers "
                             "(see docs/performance.md)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="disable the disk artifact cache even if "
                             "REPRO_CACHE_DIR is set in the environment")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.cache_dir and args.no_disk_cache:
        print("--cache-dir and --no-disk-cache are mutually exclusive",
              file=sys.stderr)
        return 2
    cache_dir = "" if args.no_disk_cache else args.cache_dir
    mix = build_request_mix(
        args.requests,
        distinct=args.distinct,
        hot_fraction=args.hot_fraction,
        outer_size=args.outer_size,
        seed=args.seed,
    )
    print("request mix:", json.dumps(mix_profile(mix)))

    if not args.skip_baseline:
        baseline = run_unbatched(mix)
        print("\nper-request repro.run baseline:")
        print(json.dumps(baseline, indent=2))

    with serve(
        workers=args.workers,
        max_batch=args.max_batch,
        batch_window_s=args.window_ms / 1e3,
        cache_dir=cache_dir,
    ) as svc:
        batched = run_closed_loop(svc, mix, clients=args.clients)
        stats = svc.stats()

    print("\nmicro-batched service:")
    print(json.dumps(batched, indent=2))
    print("\nservice stats:")
    print(json.dumps(stats, indent=2))
    if not args.skip_baseline and batched["wall_s"]:
        speedup = baseline["wall_s"] / batched["wall_s"]
        print(f"\nthroughput: {speedup:.2f}x the per-request baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
