"""Admission-control primitives: the priority-class queue.

The service used to hold pending work in one ``asyncio.Queue``; with
priority classes the pending set is a bank of per-class FIFOs drained
strictly highest-class-first.  :class:`PriorityClassQueue` keeps the
``asyncio.Queue`` surface the batch loop already speaks (``put_nowait`` /
``get`` / ``get_nowait`` / ``empty`` / ``qsize``) plus
:meth:`requeue_front` for the stop-mid-window path, which must hand
collected-but-undispatched requests back *ahead of* later arrivals.

The queue is single-consumer (the batch loop); producers may be any
number of ``submit`` coroutines on the same event loop.  Bounds are not
enforced here — admission control rejects before ``put_nowait`` — so the
deques can stay unbounded and putting never blocks.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.service.request import PRIORITIES

__all__ = ["PriorityClassQueue"]


class PriorityClassQueue:
    """Multi-class FIFO: strict priority across classes, FIFO within.

    Items are ``(request, future)`` pairs; the class is read off
    ``request.priority``.  ``get()`` is cancellation-safe: an item is
    popped synchronously after the wakeup ``await``, so a cancelled
    ``wait_for(queue.get(), ...)`` never loses an item.
    """

    def __init__(self, classes: tuple[str, ...] = PRIORITIES) -> None:
        self._classes = tuple(classes)
        self._queues: dict[str, deque] = {c: deque() for c in self._classes}
        self._wakeup = asyncio.Event()
        self._size = 0

    def put_nowait(self, item) -> None:
        """Enqueue ``(request, future)`` at the tail of its class."""
        request = item[0]
        self._queues[request.priority].append(item)
        self._size += 1
        self._wakeup.set()

    def requeue_front(self, items) -> None:
        """Put items back at the *head* of their classes, preserving order.

        Used when the batch loop is cancelled mid-collection: the items
        were already dequeued once and must not fall behind requests that
        arrived after them.
        """
        for item in reversed(list(items)):
            self._queues[item[0].priority].appendleft(item)
            self._size += 1
        if self._size:
            self._wakeup.set()

    def _pop(self):
        for name in self._classes:
            queue = self._queues[name]
            if queue:
                self._size -= 1
                return queue.popleft()
        return None

    def get_nowait(self):
        """Pop the head of the highest non-empty class; raises when empty."""
        item = self._pop()
        if item is None:
            raise asyncio.QueueEmpty
        return item

    async def get(self):
        """Pop the head of the highest non-empty class, waiting if empty."""
        while True:
            item = self._pop()
            if item is not None:
                return item
            self._wakeup.clear()
            await self._wakeup.wait()

    def empty(self) -> bool:
        return self._size == 0

    def qsize(self) -> int:
        return self._size

    def sizes(self) -> dict[str, int]:
        """Pending items per class (for snapshots)."""
        return {name: len(q) for name, q in self._queues.items()}
