"""Closed-loop load generation for the serving layer.

Builds a *fingerprint-heavy* request mix — a few hot (workload, template)
identities dominate, mirroring production template-serving traffic where
many users query the same graphs — and drives it through either

* :func:`run_unbatched` — the status-quo path: one ``repro.run`` per
  request in a plain loop (plan cache on), or
* :func:`run_closed_loop` — ``clients`` concurrent closed-loop callers
  against a :class:`~repro.service.handle.ServiceHandle`, each issuing
  its next request only after the previous response arrives.

Both report throughput and latency percentiles in the same shape so the
benchmark and the CLI demo can print them side by side.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time

import numpy as np

from repro.service.metrics import percentiles
from repro.service.request import workload_cost

__all__ = [
    "build_request_mix",
    "build_slo_mix",
    "run_closed_loop",
    "run_open_loop",
    "run_unbatched",
    "slo_summary",
]

#: templates cycled over the distinct workloads of a mix (fixed pairing:
#: workload i always travels with template i mod len — so each distinct
#: workload is one batch identity)
DEFAULT_TEMPLATES = ("dbuf-global", "dual-queue", "dbuf-shared", "thread-mapped")


def build_request_mix(
    n_requests: int,
    *,
    distinct: int = 6,
    hot_fraction: float = 0.75,
    hot_count: int = 2,
    outer_size: int = 6000,
    templates=DEFAULT_TEMPLATES,
    seed: int = 0,
) -> list[tuple[str, object]]:
    """A shuffled list of ``(template_name, workload)`` requests.

    ``hot_count`` of the ``distinct`` workload identities receive
    ``hot_fraction`` of all requests (the skew micro-batching exploits);
    the rest are uniform over the cold identities.
    """
    from repro.core.workload import AccessStream, NestedLoopWorkload

    if not 0 < hot_count <= distinct:
        raise ValueError("hot_count must be in 1..distinct")
    rng = np.random.default_rng(seed)
    identities = []
    for i in range(distinct):
        trips = rng.zipf(1.7, size=outer_size).clip(max=4 * 64).astype(np.int64)
        nnz = int(trips.sum())
        workload = NestedLoopWorkload(
            name=f"mix-{i}",
            trip_counts=trips,
            streams=[
                AccessStream("x", rng.integers(0, nnz, size=nnz) * 4),
                AccessStream("y", rng.integers(0, nnz, size=nnz) * 4,
                             kind="store", staged_in_shared=True),
            ],
        )
        identities.append((templates[i % len(templates)], workload))

    weights = np.empty(distinct)
    weights[:hot_count] = hot_fraction / hot_count
    if distinct > hot_count:
        weights[hot_count:] = (1 - hot_fraction) / (distinct - hot_count)
    else:
        weights[:] = 1.0 / distinct
    weights /= weights.sum()
    picks = rng.choice(distinct, size=n_requests, p=weights)
    return [identities[p] for p in picks]


def _summarize(latencies_s, wall_s: float, responses=None) -> dict:
    lat_ms = [v * 1e3 for v in latencies_s]
    out = {
        "requests": len(lat_ms),
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(lat_ms) / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            k: round(v, 3) for k, v in percentiles(lat_ms).items()
        },
    }
    if lat_ms:
        out["latency_ms"]["mean"] = round(sum(lat_ms) / len(lat_ms), 3)
    if responses is not None:
        ok = sum(1 for r in responses if r.ok)
        sizes = [r.batch_size for r in responses if r.ok]
        out["ok"] = ok
        out["failed"] = len(responses) - ok
        out["mean_batch"] = (
            round(sum(sizes) / len(sizes), 2) if sizes else 0.0
        )
    return out


def run_unbatched(mix, *, device=None, engine: str = "fast") -> dict:
    """The baseline: sequential per-request ``repro.run`` (cache warm)."""
    import repro
    from repro.gpusim.config import KEPLER_K20

    device = device or KEPLER_K20
    latencies = []
    start = time.perf_counter()
    for template, workload in mix:
        t0 = time.perf_counter()
        repro.run(workload, template, device=device, engine=engine)
        latencies.append(time.perf_counter() - t0)
    wall = time.perf_counter() - start
    return _summarize(latencies, wall)


def run_closed_loop(handle, mix, *, clients: int = 16) -> dict:
    """Drive the mix through a service with ``clients`` closed-loop callers.

    Each client thread blocks on its current request before drawing the
    next one, so at most ``clients`` requests are ever in flight — the
    standard closed-loop load model.  Latency is the service-measured
    admission-to-response time of each request.
    """
    work: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
    for item in mix:
        work.put(item)
    responses = []
    responses_lock = threading.Lock()

    def client() -> None:
        while True:
            try:
                template, workload = work.get_nowait()
            except queue_mod.Empty:
                return
            response = handle.request(template, workload)
            with responses_lock:
                responses.append(response)

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}")
        for i in range(max(1, clients))
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return _summarize([r.latency_s for r in responses], wall, responses)


def build_slo_mix(
    n_requests: int,
    *,
    tenants=("acme", "globex", "initech"),
    priority_weights=(("high", 0.2), ("normal", 0.5), ("low", 0.3)),
    deadlines_s=None,
    distinct: int = 6,
    outer_size: int = 6000,
    templates=DEFAULT_TEMPLATES,
    seed: int = 0,
) -> list[tuple[str, object, dict]]:
    """A shuffled multi-tenant mix: ``(template, workload, submit_kwargs)``.

    Built on :func:`build_request_mix`'s identities, each request is
    additionally stamped with a tenant (uniform over ``tenants``), a
    priority class (drawn from ``priority_weights``) and, when
    ``deadlines_s`` maps its class to a deadline, a per-request
    ``deadline_s``.  The kwargs dict feeds straight into
    ``ServiceHandle.submit`` — the same mix can drive an SLO-aware and a
    baseline service (the baseline simply ignores nothing: strip the
    kwargs with :func:`strip_slo` semantics by passing
    ``deadlines_s=None`` and one priority class).
    """
    base = build_request_mix(
        n_requests, distinct=distinct, outer_size=outer_size,
        templates=templates, seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    names = [name for name, _ in priority_weights]
    weights = np.array([w for _, w in priority_weights], dtype=float)
    weights /= weights.sum()
    classes = rng.choice(len(names), size=n_requests, p=weights)
    tenant_picks = rng.integers(0, len(tenants), size=n_requests)
    mix = []
    for (template, workload), cls, tp in zip(base, classes, tenant_picks):
        priority = names[cls]
        kwargs = {"tenant": tenants[tp], "priority": priority}
        if deadlines_s and priority in deadlines_s:
            kwargs["deadline_s"] = deadlines_s[priority]
        mix.append((template, workload, kwargs))
    return mix


def run_open_loop(handle, mix, *, rate_rps: float, labels=None) -> dict:
    """Drive a mix at a fixed arrival rate, not waiting for responses.

    The open-loop model: requests arrive on a pacing clock regardless of
    how the service is coping, so overload actually builds a backlog
    (a closed loop would self-throttle and never expose tail behaviour
    under saturation).  Mix items may be ``(template, workload)`` or
    ``(template, workload, submit_kwargs)``.

    ``labels`` optionally overrides how the per-class summary groups
    responses (one label per mix item, in order) — how a *baseline*
    service that was handed no priorities is still scored per intended
    class.
    """
    interval = 1.0 / rate_rps
    futures = []
    start = time.perf_counter()
    next_at = start
    for item in mix:
        template, workload = item[0], item[1]
        kwargs = item[2] if len(item) > 2 else {}
        now = time.perf_counter()
        if now < next_at:
            time.sleep(next_at - now)
        futures.append(handle.submit(template, workload, **kwargs))
        next_at += interval
    responses = [f.result() for f in futures]
    wall = time.perf_counter() - start
    ok_lat = [r.latency_s for r in responses if r.ok]
    out = _summarize(ok_lat, wall, responses)
    out["offered_rps"] = round(rate_rps, 2)
    out["classes"] = slo_summary(responses, labels=labels)
    return out


def slo_summary(responses, labels=None) -> dict:
    """Per-priority-class outcome + latency breakdown of a response list.

    Latency percentiles cover only ``ok`` responses — a shed or rejected
    request never produced a result, so folding its (tiny) turnaround
    into the class percentile would flatter the very overload the class
    split exists to expose.  ``labels`` (parallel to ``responses``)
    overrides the grouping key; default is each response's own priority.
    """
    if labels is None:
        labels = [r.priority for r in responses]
    per_class: dict[str, dict] = {}
    lat: dict[str, list] = {}
    for r, label in zip(responses, labels):
        cls = per_class.setdefault(label, {
            "requests": 0, "ok": 0, "rejected": 0, "shed": 0,
            "failed": 0, "degraded": 0,
        })
        cls["requests"] += 1
        if r.ok:
            cls["ok"] += 1
            if r.degraded:
                cls["degraded"] += 1
            lat.setdefault(label, []).append(r.latency_s * 1e3)
        elif r.status == "rejected":
            cls["rejected"] += 1
        elif r.status == "shed":
            cls["shed"] += 1
        else:
            cls["failed"] += 1
    for priority, cls in per_class.items():
        values = lat.get(priority, [])
        cls["latency_ms"] = {
            k: round(v, 3) for k, v in percentiles(values).items()
        }
    return dict(sorted(per_class.items()))


def mix_profile(mix) -> dict:
    """Shape of a request mix (for bench records): identity skew + size.

    Accepts both plain ``(template, workload)`` mixes and SLO mixes
    carrying a third ``submit_kwargs`` element.
    """
    counts: dict[str, int] = {}
    for item in mix:
        template, workload = item[0], item[1]
        key = f"{template}:{workload.name}"
        counts[key] = counts.get(key, 0) + 1
    return {
        "requests": len(mix),
        "distinct": len(counts),
        "hottest_share": (
            round(max(counts.values()) / len(mix), 3) if mix else 0.0
        ),
        "mean_cost": (
            round(sum(workload_cost(item[1]) for item in mix) / len(mix), 1)
            if mix else 0.0
        ),
    }
