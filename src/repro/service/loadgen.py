"""Closed-loop load generation for the serving layer.

Builds a *fingerprint-heavy* request mix — a few hot (workload, template)
identities dominate, mirroring production template-serving traffic where
many users query the same graphs — and drives it through either

* :func:`run_unbatched` — the status-quo path: one ``repro.run`` per
  request in a plain loop (plan cache on), or
* :func:`run_closed_loop` — ``clients`` concurrent closed-loop callers
  against a :class:`~repro.service.handle.ServiceHandle`, each issuing
  its next request only after the previous response arrives.

Both report throughput and latency percentiles in the same shape so the
benchmark and the CLI demo can print them side by side.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time

import numpy as np

from repro.service.metrics import percentiles
from repro.service.request import workload_cost

__all__ = ["build_request_mix", "run_closed_loop", "run_unbatched"]

#: templates cycled over the distinct workloads of a mix (fixed pairing:
#: workload i always travels with template i mod len — so each distinct
#: workload is one batch identity)
DEFAULT_TEMPLATES = ("dbuf-global", "dual-queue", "dbuf-shared", "thread-mapped")


def build_request_mix(
    n_requests: int,
    *,
    distinct: int = 6,
    hot_fraction: float = 0.75,
    hot_count: int = 2,
    outer_size: int = 6000,
    templates=DEFAULT_TEMPLATES,
    seed: int = 0,
) -> list[tuple[str, object]]:
    """A shuffled list of ``(template_name, workload)`` requests.

    ``hot_count`` of the ``distinct`` workload identities receive
    ``hot_fraction`` of all requests (the skew micro-batching exploits);
    the rest are uniform over the cold identities.
    """
    from repro.core.workload import AccessStream, NestedLoopWorkload

    if not 0 < hot_count <= distinct:
        raise ValueError("hot_count must be in 1..distinct")
    rng = np.random.default_rng(seed)
    identities = []
    for i in range(distinct):
        trips = rng.zipf(1.7, size=outer_size).clip(max=4 * 64).astype(np.int64)
        nnz = int(trips.sum())
        workload = NestedLoopWorkload(
            name=f"mix-{i}",
            trip_counts=trips,
            streams=[
                AccessStream("x", rng.integers(0, nnz, size=nnz) * 4),
                AccessStream("y", rng.integers(0, nnz, size=nnz) * 4,
                             kind="store", staged_in_shared=True),
            ],
        )
        identities.append((templates[i % len(templates)], workload))

    weights = np.empty(distinct)
    weights[:hot_count] = hot_fraction / hot_count
    if distinct > hot_count:
        weights[hot_count:] = (1 - hot_fraction) / (distinct - hot_count)
    else:
        weights[:] = 1.0 / distinct
    weights /= weights.sum()
    picks = rng.choice(distinct, size=n_requests, p=weights)
    return [identities[p] for p in picks]


def _summarize(latencies_s, wall_s: float, responses=None) -> dict:
    lat_ms = [v * 1e3 for v in latencies_s]
    out = {
        "requests": len(lat_ms),
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(lat_ms) / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            k: round(v, 3) for k, v in percentiles(lat_ms).items()
        },
    }
    if lat_ms:
        out["latency_ms"]["mean"] = round(sum(lat_ms) / len(lat_ms), 3)
    if responses is not None:
        ok = sum(1 for r in responses if r.ok)
        sizes = [r.batch_size for r in responses if r.ok]
        out["ok"] = ok
        out["failed"] = len(responses) - ok
        out["mean_batch"] = (
            round(sum(sizes) / len(sizes), 2) if sizes else 0.0
        )
    return out


def run_unbatched(mix, *, device=None, engine: str = "fast") -> dict:
    """The baseline: sequential per-request ``repro.run`` (cache warm)."""
    import repro
    from repro.gpusim.config import KEPLER_K20

    device = device or KEPLER_K20
    latencies = []
    start = time.perf_counter()
    for template, workload in mix:
        t0 = time.perf_counter()
        repro.run(workload, template, device=device, engine=engine)
        latencies.append(time.perf_counter() - t0)
    wall = time.perf_counter() - start
    return _summarize(latencies, wall)


def run_closed_loop(handle, mix, *, clients: int = 16) -> dict:
    """Drive the mix through a service with ``clients`` closed-loop callers.

    Each client thread blocks on its current request before drawing the
    next one, so at most ``clients`` requests are ever in flight — the
    standard closed-loop load model.  Latency is the service-measured
    admission-to-response time of each request.
    """
    work: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
    for item in mix:
        work.put(item)
    responses = []
    responses_lock = threading.Lock()

    def client() -> None:
        while True:
            try:
                template, workload = work.get_nowait()
            except queue_mod.Empty:
                return
            response = handle.request(template, workload)
            with responses_lock:
                responses.append(response)

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}")
        for i in range(max(1, clients))
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return _summarize([r.latency_s for r in responses], wall, responses)


def mix_profile(mix) -> dict:
    """Shape of a request mix (for bench records): identity skew + size."""
    counts: dict[str, int] = {}
    for template, workload in mix:
        key = f"{template}:{workload.name}"
        counts[key] = counts.get(key, 0) + 1
    return {
        "requests": len(mix),
        "distinct": len(counts),
        "hottest_share": (
            round(max(counts.values()) / len(mix), 3) if mix else 0.0
        ),
        "mean_cost": (
            round(sum(workload_cost(w) for _, w in mix) / len(mix), 1)
            if mix else 0.0
        ),
    }
