"""Micro-batching: coalesce pending requests, route small vs large.

The batcher is the request-level analogue of the paper's dual-queue
template.  A collection window's worth of pending requests is grouped by
:meth:`Request.batch_key` — workload fingerprint, template, engine,
device, params — and each group becomes one :class:`Batch`: **one** plan
build and **one** executor pass whose summary answers every member.
Small batches (by :func:`~repro.service.request.workload_cost`) stay on
the inline fast path — a worker thread of the event loop, no pickling;
large ones go to the process pool, the request-level "load-balanced
phase".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.service.request import Request
from repro.service.workers import BatchSpec

__all__ = ["Batch", "MicroBatcher"]


@dataclass
class Batch:
    """One coalesced unit of execution plus the futures awaiting it."""

    key: tuple
    spec: BatchSpec
    route: str  # "inline" | "pool"
    requests: list[Request] = field(default_factory=list)
    futures: list = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def priority(self) -> str:
        """The batch's priority class (homogeneous: part of the key)."""
        return self.requests[0].priority if self.requests else "normal"

    @property
    def deadline_at(self) -> float | None:
        """Tightest absolute member deadline (None when none carries one)."""
        deadlines = [r.deadline_at for r in self.requests
                     if getattr(r, "deadline_at", None) is not None]
        return min(deadlines) if deadlines else None


class MicroBatcher:
    """Groups ``(request, future)`` pairs into executable batches."""

    def __init__(self, inline_cost_threshold: int = 1_000_000,
                 cache_dir: str | None = None) -> None:
        if inline_cost_threshold < 0:
            raise ServiceError("inline_cost_threshold cannot be negative")
        self.inline_cost_threshold = inline_cost_threshold
        #: stamped onto every BatchSpec so pool workers configure the same
        #: disk artifact cache as the service process (see BatchSpec)
        self.cache_dir = cache_dir

    def route_of(self, request: Request) -> str:
        """Small/large split: cheap work runs inline, heavy work pools.

        Instance-templates always run inline — they may not pickle, and
        the service cannot prove they do.
        """
        if not isinstance(request.template, str):
            return "inline"
        if request.cost > self.inline_cost_threshold:
            return "pool"
        return "inline"

    def group(self, pending: list[tuple]) -> list[Batch]:
        """Coalesce pending ``(request, future)`` pairs into batches.

        Batches come back in first-arrival order of their first member,
        so dispatch order tracks admission order.
        """
        batches: dict[tuple, Batch] = {}
        for request, future in pending:
            key = request.batch_key()
            batch = batches.get(key)
            if batch is None:
                spec = BatchSpec(
                    template=(
                        request.template
                        if isinstance(request.template, str)
                        else request.template_obj
                    ),
                    workload=request.workload,
                    kind=request.kind,
                    device=request.device,
                    params=request.params,
                    engine=request.engine,
                    cache_dir=self.cache_dir,
                    backend=request.backend,
                )
                batch = Batch(
                    key=key, spec=spec, route=self.route_of(request)
                )
                batches[key] = batch
            batch.requests.append(request)
            batch.futures.append(future)
        return list(batches.values())
