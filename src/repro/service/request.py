"""Request/response model of the serving layer.

A :class:`Request` is one "simulate this template on this workload" query
— the unit the service admits, batches and answers.  A :class:`Response`
is everything the caller gets back: the simulated result summary plus the
serving metadata (latency, batch size, retry count, degradation flag).

Requests resolve their template and workload family eagerly, so malformed
queries fail in the caller's context instead of inside the batch loop.
The **batch key** — what the micro-batcher groups on — is the same
content-addressed identity the plan cache uses: workload fingerprint,
canonical template name, engine, device, and the (frozen, hashable)
template parameters.  Two structurally identical workloads submitted as
different objects coalesce into one batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import TemplateParams
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.registry import resolve
from repro.core.workload import NestedLoopWorkload
from repro.errors import ConfigError, WorkloadError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import resolve_engine
from repro.ir.select import auto_select, is_auto

__all__ = [
    "Request",
    "Response",
    "workload_kind",
    "workload_cost",
    "DEGRADE_FALLBACK",
    "PRIORITIES",
    "PRIORITY_RANK",
]

#: fallback template per workload family when a dynamic-parallelism
#: template keeps failing (the graceful-degradation path)
DEGRADE_FALLBACK = {"nested-loop": "thread-mapped", "tree": "flat"}

#: admission priority classes, highest first — the batch loop always
#: drains a higher class before touching a lower one
PRIORITIES = ("high", "normal", "low")

#: class name -> scheduling rank (lower rank drains first)
PRIORITY_RANK = {name: rank for rank, name in enumerate(PRIORITIES)}


def workload_kind(workload) -> str:
    """Template family a workload belongs to (``nested-loop`` | ``tree``)."""
    if isinstance(workload, NestedLoopWorkload):
        return "nested-loop"
    if isinstance(workload, RecursiveTreeWorkload):
        return "tree"
    raise WorkloadError(
        "workload must be a NestedLoopWorkload or RecursiveTreeWorkload, "
        f"got {type(workload).__name__}"
    )


def workload_cost(workload) -> int:
    """Rough work estimate used for small/large routing.

    Inner-iteration count for nested loops, node count for trees — the
    quantities the plan build and executor pass actually scale with.
    """
    if isinstance(workload, NestedLoopWorkload):
        return workload.n_pairs
    return workload.tree.n_nodes


@dataclass
class Request:
    """One serving query; constructed by ``TemplateService.submit``.

    ``template`` is a canonical paper name or a template instance (custom
    instances batch only with themselves — their identity enters the batch
    key, since the service cannot prove two instances are equivalent).
    """

    template: object
    workload: object
    device: DeviceConfig = KEPLER_K20
    params: TemplateParams = field(default_factory=TemplateParams)
    engine: str = "fast"
    #: request id assigned at admission (-1 = not yet admitted)
    id: int = -1
    #: event-loop clock at admission (for latency accounting)
    created_s: float = 0.0
    #: ``time.perf_counter()`` at admission (for the tracing layer's
    #: ``service.request`` lifecycle spans; 0.0 = never admitted)
    created_perf: float = 0.0
    #: execution model the batch should run on (``"sim"`` | ``"queue"``;
    #: stamped from ``ServiceConfig.backend`` at submit)
    backend: str = "sim"
    #: tenant this request bills against (admission quotas; "" = untracked)
    tenant: str = ""
    #: priority class: ``"high"`` | ``"normal"`` | ``"low"`` — enters the
    #: batch key, so batches are priority-homogeneous
    priority: str = "normal"
    #: relative deadline in seconds from admission (None = no deadline);
    #: the absolute event-loop deadline lands in ``deadline_at``
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        from repro.backends import resolve_backend

        self.kind = workload_kind(self.workload)
        resolve_engine(self.engine, error=ConfigError)
        resolve_backend(self.backend, error=ConfigError)
        if self.priority not in PRIORITY_RANK:
            raise ConfigError(
                f"unknown priority {self.priority!r}; "
                f"known: {', '.join(PRIORITIES)}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        #: absolute deadline on the service's event-loop clock, stamped
        #: at admission (None until admitted or when no deadline applies)
        self.deadline_at: float | None = None
        self.selection = None
        if is_auto(self.template):
            # resolve the auto choice at admission: the batch then carries
            # a concrete template, coalesces with equivalent named
            # requests, and the degradation path sees real capabilities
            self.selection = auto_select(
                self.workload, self.device, self.params, self.engine,
                backend=self.backend,
            )
            self.template = self.selection.template
            self.params = self.selection.params
        if isinstance(self.template, str):
            self.template_obj = resolve(self.template, kind=self.kind)
            self._template_key = self.template_obj.name
        else:
            self.template_obj = self.template
            # custom instances only coalesce with themselves
            self._template_key = (self.template_obj.name, id(self.template))
        self.cost = workload_cost(self.workload)

    def batch_key(self) -> tuple:
        """Identity the micro-batcher coalesces on (content-addressed).

        ``priority`` is part of the key: a batch must be
        priority-homogeneous so shed/degrade decisions apply to the whole
        batch (tenants still coalesce freely — quotas act at admission).
        """
        return (
            self.workload.fingerprint(),
            self._template_key,
            self.engine,
            self.device,
            self.params,
            self.backend,
            self.priority,
        )


@dataclass
class Response:
    """Everything one request's caller gets back.

    ``status`` is ``"ok"``, ``"rejected"`` (admission control turned the
    request away — see ``reason``), ``"shed"`` (admitted, then dropped by
    deadline-aware scheduling because the deadline could not be met) or
    ``"failed"`` (execution kept failing after retries and no degradation
    path applied).  A degraded response has ``status == "ok"`` with
    ``degraded=True`` and ``template`` naming the fallback that actually
    ran.  Every response — rejections included — carries a real monotonic
    ``id``, so client-side correlation works on all paths.
    """

    id: int
    status: str
    template: str = ""
    workload: str = ""
    degraded: bool = False
    reason: str | None = None
    #: simulated execution time of the underlying run (None if no run)
    time_ms: float | None = None
    #: profiler metrics of the underlying run (``ProfileMetrics.as_dict``)
    metrics: dict = field(default_factory=dict)
    #: wall-clock seconds from admission to completion
    latency_s: float = 0.0
    #: number of requests answered by the same underlying run
    batch_size: int = 1
    #: execution attempts (1 = first try succeeded; 0 = never executed)
    attempts: int = 0
    #: where the run happened: "inline" | "pool" | "" (never ran)
    route: str = ""
    #: whether the plan build was served from the plan cache
    cache_hit: bool = False
    #: device the batch was routed to (0 on a single-device service)
    device: int = 0
    #: priority class the request carried (echoed for correlation)
    priority: str = "normal"
    #: tenant the request billed against (echoed for correlation)
    tenant: str = ""

    @property
    def ok(self) -> bool:
        """True when the request produced a (possibly degraded) result."""
        return self.status == "ok"
