"""Versioned workload streams: mutations and snapshot-pinned serving.

A :class:`WorkloadStream` is the serving-side face of the mutation API
(:mod:`repro.core.mutation`).  It holds a named, *mutating* workload as a
sequence of immutable snapshots: every ``mutate(batch)`` derives the next
head with the functional :meth:`NestedLoopWorkload.mutated
<repro.core.workload.NestedLoopWorkload.mutated>` path — fresh trace
arrays, the previous head untouched — so any snapshot a request pinned
remains valid for as long as it is retained.  That is the torn-read
guarantee: an in-flight batch resolved against version ``v`` keeps
executing against exactly ``v``'s arrays no matter how many mutations
land while it runs.

The stream keeps the last ``keep_versions`` snapshots (a bounded version
window, like an MVCC horizon).  Pinning a version that has slid out of
the window is a structured :class:`~repro.errors.ServiceError` — the
caller resubmits against a retained version — never a silent serve of
different data.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.workload import NestedLoopWorkload
from repro.errors import ServiceError

__all__ = ["WorkloadStream"]


class WorkloadStream:
    """One named, versioned workload under a mutation stream.

    Not thread-safe by itself: the service mutates and resolves streams
    on its event loop (one thread), which serializes ``mutate`` against
    ``get``.  Snapshots themselves are immutable, so *executing* against
    a resolved snapshot needs no further coordination.
    """

    def __init__(self, name: str, workload: NestedLoopWorkload,
                 keep_versions: int = 8) -> None:
        if not name:
            raise ServiceError("workload stream needs a non-empty name")
        if not isinstance(workload, NestedLoopWorkload):
            raise ServiceError(
                "workload streams carry NestedLoopWorkloads (the mutation "
                f"API is nested-loop only), got {type(workload).__name__}"
            )
        if keep_versions < 1:
            raise ServiceError("keep_versions must be >= 1")
        self.name = name
        self.keep_versions = int(keep_versions)
        self.mutations = 0
        self._versions: OrderedDict[int, NestedLoopWorkload] = OrderedDict()
        self._versions[workload.version] = workload
        self._head = workload

    # ------------------------------------------------------------- state
    @property
    def head(self) -> NestedLoopWorkload:
        """The latest snapshot."""
        return self._head

    @property
    def version(self) -> int:
        """Version of the latest snapshot."""
        return self._head.version

    def versions(self) -> list[int]:
        """Retained snapshot versions, oldest first."""
        return list(self._versions)

    # --------------------------------------------------------- mutation
    def mutate(self, batch):
        """Apply one :class:`~repro.core.mutation.MutationBatch`.

        Derives the next head functionally and retires snapshots beyond
        the version window (never the new head).  Returns the
        :class:`~repro.core.mutation.MutationDelta`.
        """
        child, delta = self._head.mutated(batch)
        self._versions[child.version] = child
        self._head = child
        while len(self._versions) > self.keep_versions:
            self._versions.popitem(last=False)
        self.mutations += 1
        return delta

    # ---------------------------------------------------------- serving
    def get(self, version: int | None = None) -> NestedLoopWorkload:
        """Resolve a snapshot: the head, or a pinned retained version."""
        if version is None:
            return self._head
        snapshot = self._versions.get(int(version))
        if snapshot is None:
            raise ServiceError(
                f"version {version} of stream {self.name!r} is not retained "
                f"(kept: {self.versions()})"
            )
        return snapshot

    def snapshot(self) -> dict:
        """Plain-dict stats for ``service.snapshot()``."""
        return {
            "version": self.version,
            "mutations": self.mutations,
            "retained": len(self._versions),
            "keep_versions": self.keep_versions,
            "outer_size": self._head.outer_size,
            "n_pairs": self._head.n_pairs,
        }
