"""Batch execution: the worker function and the process-pool wrapper.

:func:`execute_batch` is the one function that actually runs a template —
module-level and driven by a picklable :class:`BatchSpec`, so the same
code serves the inline fast path (a worker thread of the event loop) and
the :class:`WorkerPool` (a ``ProcessPoolExecutor``).  Pool workers keep
their own process-local plan caches, which warm up across batches exactly
like the bench runner's workers do.

The pool wrapper owns the messy parts of using processes as a serving
substrate: per-call timeouts, detecting a broken pool (a worker died
mid-call) and transparently respawning it, and recycling the pool after a
timeout so a hung worker cannot pin a slot forever.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.backends import SimBackend
from repro.core.params import TemplateParams
from repro.core.plancache import default_cache
from repro.core.registry import resolve
from repro.errors import ServiceError
from repro.gpusim.config import DeviceConfig, KEPLER_K20

__all__ = [
    "BatchSpec",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "WorkerPool",
    "execute_batch",
    "execute_batch_fused",
]


class WorkerTimeoutError(ServiceError):
    """A batch execution exceeded the per-request timeout."""


class WorkerCrashError(ServiceError):
    """A pool worker died (or the pool broke) while executing a batch."""


@dataclass
class BatchSpec:
    """Everything one batch execution needs — picklable when the template
    is given by name (instance-templates are routed inline)."""

    template: object  # canonical name or template instance
    workload: object
    kind: str
    device: DeviceConfig = KEPLER_K20
    params: TemplateParams = field(default_factory=TemplateParams)
    engine: str = "fast"
    #: disk artifact cache for the executing process: None leaves the
    #: process default alone, "" disables it, a path enables it
    cache_dir: str | None = None
    #: device this batch was routed to by the service's DeviceGroup;
    #: None on a single-device service (no per-device obs counters)
    device_index: int | None = None
    #: execution model: "sim" (bulk-synchronous) or "queue" (persistent
    #: task queues, single-device; see docs/taskqueue.md)
    backend: str = "sim"


def execute_batch(spec: BatchSpec) -> dict:
    """Run one batch's template once; return a picklable result summary.

    The summary — not the full :class:`TemplateRun` — crosses the process
    boundary: launch graphs of large workloads are megabytes, and every
    request in the batch only needs the timing/metrics payload.

    ``cache_hits``/``cache_misses`` are the plan-cache probe deltas of this
    call in the executing process; under concurrent inline batches the
    attribution is approximate (the counters are process-global).
    ``disk_hits``/``disk_misses`` are the same-call deltas of the disk
    artifact cache (zero when none is configured).
    """
    from repro.core.artifactcache import (
        configure_artifact_cache,
        get_artifact_cache,
    )

    if spec.cache_dir is not None:
        configure_artifact_cache(spec.cache_dir or None)
    disk = get_artifact_cache()
    disk0 = disk.snapshot() if disk is not None else None
    tmpl = (
        resolve(spec.template, kind=spec.kind)
        if isinstance(spec.template, str)
        else spec.template
    )
    stats = default_cache().stats
    hits0, misses0 = stats.hits, stats.misses
    if spec.backend == "queue":
        from repro.queue.backend import QueueBackend

        backend = QueueBackend(spec.device, engine=spec.engine)
    else:
        backend = SimBackend(spec.device, engine=spec.engine,
                             device_index=spec.device_index)
    start = time.perf_counter()
    run = tmpl.run(spec.workload, spec.device, spec.params, executor=backend)
    wall = time.perf_counter() - start
    disk_hits = disk_misses = 0
    if disk is not None:
        disk1 = disk.snapshot()
        disk_hits = disk1["hits"] - disk0["hits"]
        disk_misses = disk1["misses"] - disk0["misses"]
    return {
        "template": run.template,
        "workload": run.workload,
        "time_ms": run.time_ms,
        "metrics": run.metrics.as_dict(),
        "wall_s": wall,
        "cache_hits": stats.hits - hits0,
        "cache_misses": stats.misses - misses0,
        "disk_hits": disk_hits,
        "disk_misses": disk_misses,
        "device": spec.device_index or 0,
    }


def execute_batch_fused(specs: list[BatchSpec]) -> list[dict]:
    """Run several batches as **one** fused executor pass; summaries align
    with ``specs``.

    The fused sibling of :func:`execute_batch`: all specs must share a
    device config, engine, cache_dir and backend ``"sim"`` (the service's
    fusion grouping guarantees this).  Plans resolve per spec through the
    normal cache ladder (:meth:`~repro.core.base.NestedLoopTemplate._prepare`
    — plan cache, disk plan tier, run-tier probe); the run-tier misses
    then execute as a single fused event loop on one
    :class:`SimBackend`, which is bit-identical to running them
    sequentially.  Per-spec cache deltas are measured around each spec's
    own prepare step, so attribution matches the sequential path.

    Templates that don't expose the prepare seam (custom instances) run
    sequentially within the same call.
    """
    from repro.core.artifactcache import (
        configure_artifact_cache,
        get_artifact_cache,
    )

    if not specs:
        return []
    if specs[0].cache_dir is not None:
        configure_artifact_cache(specs[0].cache_dir or None)
    disk = get_artifact_cache()
    stats = default_cache().stats
    backend = SimBackend(specs[0].device, engine=specs[0].engine,
                         device_index=specs[0].device_index)
    start = time.perf_counter()
    summaries: list[dict] = []
    pending: list[tuple[int, object]] = []  # (spec index, _PreparedRun)
    for spec in specs:
        tmpl = (
            resolve(spec.template, kind=spec.kind)
            if isinstance(spec.template, str)
            else spec.template
        )
        hits0, misses0 = stats.hits, stats.misses
        disk0 = disk.snapshot() if disk is not None else None
        prepare = getattr(tmpl, "_prepare", None)
        if prepare is None:
            run = tmpl.run(spec.workload, spec.device, spec.params,
                           executor=backend)
            prep = None
        else:
            prep = prepare(spec.workload, spec.device, spec.params, backend)
            run = prep.finish() if prep.result is not None else None
        disk_hits = disk_misses = 0
        if disk is not None:
            disk1 = disk.snapshot()
            disk_hits = disk1["hits"] - disk0["hits"]
            disk_misses = disk1["misses"] - disk0["misses"]
        summary = {
            "template": None,
            "workload": getattr(spec.workload, "name", ""),
            "time_ms": None,
            "metrics": None,
            "wall_s": 0.0,
            "cache_hits": stats.hits - hits0,
            "cache_misses": stats.misses - misses0,
            "disk_hits": disk_hits,
            "disk_misses": disk_misses,
            "device": spec.device_index or 0,
        }
        if run is not None:
            summary["template"] = run.template
            summary["workload"] = run.workload
            summary["time_ms"] = run.time_ms
            summary["metrics"] = run.metrics.as_dict()
        summaries.append(summary)
        if prep is not None and prep.result is None:
            pending.append((len(summaries) - 1, prep))
    if pending:
        # one fused event loop over every run-tier miss in the window
        results = backend.submit_many([prep.graph for _, prep in pending])
        for (idx, prep), result in zip(pending, results):
            prep.record(result)
            run = prep.finish()
            summaries[idx]["template"] = run.template
            summaries[idx]["workload"] = run.workload
            summaries[idx]["time_ms"] = run.time_ms
            summaries[idx]["metrics"] = run.metrics.as_dict()
    wall = time.perf_counter() - start
    for summary in summaries:
        summary["wall_s"] = wall
    return summaries


class WorkerPool:
    """A ``ProcessPoolExecutor`` hardened for serving.

    Parameters
    ----------
    max_workers:
        pool size (processes under the default factory).
    executor_factory:
        ``f(max_workers) -> Executor``; tests substitute a thread-backed
        executor so fault injection needs no real child processes.
    run_fn:
        the batch function submitted to the executor (default
        :func:`execute_batch`); fault tests substitute crashing/hanging
        stand-ins.
    """

    def __init__(
        self,
        max_workers: int = 2,
        executor_factory=None,
        run_fn=None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._factory = executor_factory or (
            lambda n: ProcessPoolExecutor(max_workers=n)
        )
        self.run_fn = run_fn or execute_batch
        self._pool = None
        self.submitted = 0
        self.completed = 0
        self.crashes = 0
        self.timeouts = 0
        #: plain exceptions raised by run_fn (PlanError, ...): the worker
        #: survived, the batch did not.  Every submission lands in exactly
        #: one of completed/crashes/timeouts/failures.
        self.failures = 0
        self.recycles = 0

    def _ensure(self):
        if self._pool is None:
            self._pool = self._factory(self.max_workers)
        return self._pool

    def resize(self, max_workers: int) -> None:
        """Change the pool size; takes effect at the next (re)spawn.

        The autoscaler calls this alongside device-group resizes.  An
        existing executor is recycled only when *growing* — shrinking
        just lowers the size the next respawn uses, so in-flight batches
        are never abandoned to shed idle capacity.
        """
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if max_workers == self.max_workers:
            return
        grew = max_workers > self.max_workers
        self.max_workers = max_workers
        if grew and self._pool is not None:
            self.recycle()

    def recycle(self) -> None:
        """Replace the executor; old workers finish (or die) detached.

        Called after a timeout: a hung task cannot be cancelled, but a
        fresh pool restores the advertised parallelism immediately.
        """
        pool, self._pool = self._pool, None
        self.recycles += 1
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    async def run(self, spec: BatchSpec, timeout_s: float | None) -> dict:
        """Execute ``spec`` on the pool with a timeout; raises
        :class:`WorkerTimeoutError` / :class:`WorkerCrashError`."""
        self.submitted += 1
        try:
            future = self._ensure().submit(self.run_fn, spec)
        except BrokenExecutor as exc:
            self.crashes += 1
            self.recycle()
            raise WorkerCrashError(f"worker pool broken at submit: {exc}") from exc
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(future), timeout_s
            )
        except asyncio.TimeoutError:
            future.cancel()
            self.timeouts += 1
            self.recycle()
            raise WorkerTimeoutError(
                f"batch exceeded {timeout_s:g}s on the worker pool"
            ) from None
        except BrokenExecutor as exc:
            self.crashes += 1
            self.recycle()
            raise WorkerCrashError(f"worker process died: {exc}") from exc
        except asyncio.CancelledError:
            raise
        except BaseException:
            # run_fn raised (e.g. PlanError): a failed batch, not a dead
            # worker — count it so snapshot() totals reconcile
            self.failures += 1
            raise
        self.completed += 1
        return result

    def shutdown(self) -> None:
        """Tear the pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def snapshot(self) -> dict:
        """Pool counters for ``service.stats()``."""
        return {
            "max_workers": self.max_workers,
            "submitted": self.submitted,
            "completed": self.completed,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "recycles": self.recycles,
        }

    def invariant_violations(self) -> list[str]:
        """Accounting violations (empty when consistent and quiescent)."""
        settled = self.completed + self.crashes + self.timeouts + self.failures
        if self.submitted != settled:
            return [
                f"pool submitted ({self.submitted}) != completed "
                f"({self.completed}) + crashes ({self.crashes}) + "
                f"timeouts ({self.timeouts}) + failures ({self.failures})"
            ]
        return []
