"""Single-source shortest path (SSSP), Harish-Narayanan style.

The baseline GPU implementation ([5] in the paper) is level-synchronous
Bellman-Ford over CSR: every round launches a kernel over *all* nodes; a
mask marks the nodes improved last round, and only those relax their
out-edges (inner loop of length ``f(i)``, 0 for unmasked nodes).  Each
relaxation gathers ``dist[target]`` and issues an atomicMin when it
improves — the scattered stores and atomics behind the Table I numbers.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppRun, combine_rounds
from repro.core.params import TemplateParams
from repro.core.registry import resolve
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.reference import sssp_serial
from repro.errors import GraphError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.backends import backend_for
from repro.graphs.csr import CSRGraph, concat_ranges

__all__ = ["SSSPApp"]

INF = np.float64(np.inf)


class SSSPApp:
    """SSSP under any nested-loop parallelization template."""

    name = "sssp"

    def __init__(self, graph: CSRGraph, source: int = 0,
                 max_rounds: int | None = None) -> None:
        if not (0 <= source < graph.n_nodes):
            raise GraphError(f"source {source} out of range")
        self.graph = graph
        self.source = source
        self.max_rounds = max_rounds
        self.weights = (
            graph.weights if graph.weights is not None
            else np.ones(graph.n_edges)
        )
        if np.any(self.weights < 0):
            raise GraphError("SSSP requires non-negative weights")

    # ------------------------------------------------------------ functional
    def _rounds(self):
        """Generate (mask, dist-before, improvements) per relaxation round.

        The functional fixpoint is identical for every template (atomicMin
        is order-independent); the mask sequence drives both the result
        and the per-round workload traces.
        """
        g = self.graph
        dist = np.full(g.n_nodes, INF)
        dist[self.source] = 0.0
        frontier = np.array([self.source], dtype=np.int64)
        limit = self.max_rounds if self.max_rounds is not None else g.n_nodes
        rounds = 0
        while frontier.size and rounds < limit:
            rounds += 1
            degs = g.out_degrees[frontier]
            edge_idx = concat_ranges(g.row_offsets[frontier], degs)
            srcs = np.repeat(frontier, degs)
            targets = g.col_indices[edge_idx]
            cand = dist[srcs] + self.weights[edge_idx]
            improving = cand < dist[targets]
            yield frontier, edge_idx, targets, improving, dist
            if not np.any(improving):
                break
            order = np.argsort(targets[improving], kind="stable")
            t_sorted = targets[improving][order]
            c_sorted = cand[improving][order]
            first = np.ones(t_sorted.size, dtype=bool)
            first[1:] = t_sorted[1:] != t_sorted[:-1]
            group_min = np.minimum.reduceat(c_sorted, np.flatnonzero(first))
            uniq = t_sorted[first]
            better = group_min < dist[uniq]
            dist[uniq[better]] = group_min[better]
            frontier = uniq[better]

    def compute(self) -> np.ndarray:
        """Distances at fixpoint (template-invariant).

        atomicMin relaxation converges to the same fixpoint regardless of
        schedule, so the serial reference *is* the functional result of
        every template (tests pin this against scipy's Dijkstra).
        """
        return sssp_serial(self.graph, self.source, self.max_rounds).result

    # --------------------------------------------------------------- workload
    def round_workload(self, frontier: np.ndarray, edge_idx: np.ndarray,
                       targets: np.ndarray, improving: np.ndarray) -> NestedLoopWorkload:
        """The Fig. 1(a) trace of one relaxation round.

        The outer loop covers all nodes ([5] is topology-driven); unmasked
        nodes contribute zero inner iterations but still occupy a thread.
        """
        g = self.graph
        trips = np.zeros(g.n_nodes, dtype=np.int64)
        trips[frontier] = g.out_degrees[frontier]
        n_pairs = edge_idx.size
        col_base = 0
        w_base = 4 * g.n_edges + 256
        d_base = w_base + 8 * g.n_edges + 256
        atomic = np.where(improving, targets, -1)
        return NestedLoopWorkload(
            name=f"sssp-round({g.name})",
            trip_counts=trips,
            streams=[
                AccessStream("col-index", col_base + edge_idx * 4, "load", 4),
                AccessStream("weight", w_base + edge_idx * 8, "load", 8),
                AccessStream("dist-gather", d_base + targets * 8, "load", 8),
                AccessStream("dist-update", d_base + targets * 8, "store", 8,
                             staged_in_shared=True),
            ],
            atomic_targets=atomic,
            inner_insts=7.0,
            outer_insts=8.0,
            outer_load_bytes=12,  # offsets + mask + own distance
        )

    # -------------------------------------------------------------------- run
    def run(
        self,
        template: str = "baseline",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Execute all relaxation rounds under one template."""
        params = params or TemplateParams()
        tmpl = resolve(template, kind="nested-loop")
        executor = backend_for(config)
        runs = []
        for frontier, edge_idx, targets, improving, _ in self._rounds():
            wl = self.round_workload(frontier, edge_idx, targets, improving)
            runs.append(tmpl.run(wl, config, params, executor))
        total_ms, metrics = combine_rounds(runs)
        serial = sssp_serial(self.graph, self.source, self.max_rounds)
        return AppRun(
            app=self.name,
            template=template,
            dataset=self.graph.name,
            result=serial.result,
            gpu_time_ms=total_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=metrics,
            meta={"rounds": len(runs),
                  "device_kernel_calls": metrics.device_kernel_calls},
        )
