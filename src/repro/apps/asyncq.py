"""Asynchronous (queue-native) graph and tree applications.

The paper's applications are bulk-synchronous: one kernel per BFS level /
relaxation round, a host barrier between rounds.  The applications here
are their *asynchronous* counterparts for the persistent-queue backend
(:mod:`repro.queue`): every improvement pushes relaxation requests for
its neighbors straight onto the work queues — no rounds, no barriers,
one kernel launch for the whole traversal.

Correctness rests on monotonicity: distance/level updates are atomicMin
relaxations, so *any* schedule converges to the same fixpoint — the
serial reference result, bit for bit.  Schedules differ only in how much
work they do: a request may be **stale** by the time a worker pops it (a
better distance already landed), costing a cheap check-and-drop.  The
request log of one seeded schedule therefore maps exactly onto a
:class:`~repro.queue.tasks.TaskGraph`: live requests are executed tasks,
stale requests are cancelled tasks, and the spawn edges are the pushes.

Each app also builds the matching *bulk-synchronous* execution — the same
per-visit costs arranged as one host launch per level-synchronous round —
so queue and BSP runs are apples-to-apples: the difference is purely
launch/barrier overhead vs queue/termination overhead plus the schedule's
work inflation.  On high-diameter graphs (``grid_graph``) the BSP side
pays thousands of launch round-trips for tiny frontiers, which is the
regime ``benchmarks/bench_queue_vs_bsp.py`` sweeps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppRun
from repro.backends import backend_for
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig, OpCounts
from repro.cpu.reference import bfs_serial, sssp_serial
from repro.errors import GraphError, WorkloadError
from repro.gpusim.coalesce import MemoryTraffic, contiguous_transactions
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.costmodel import (
    effective_segment_cycles,
    resident_warps_estimate,
)
from repro.gpusim.kernels import (
    KernelCosts,
    Launch,
    LaunchGraph,
    ProfileCounters,
)
from repro.gpusim.profiler import ProfileMetrics, profile
from repro.gpusim.warps import WarpExecStats
from repro.graphs.csr import CSRGraph, concat_ranges
from repro.queue.backend import QueueBackend, QueueExecutionResult
from repro.queue.model import QueueConfig
from repro.queue.tasks import TaskGraph
from repro.trees.structure import Tree

__all__ = [
    "AsyncBFSApp",
    "AsyncSSSPApp",
    "AsyncTreeWalkApp",
    "RequestLog",
    "async_relax_requests",
]

#: threads of the modeled relaxation block (one visit = one small block)
_VISIT_BLOCK = 64


@dataclass
class RequestLog:
    """Every relaxation request of one asynchronous schedule, in pop order.

    Request ``k`` asked to set ``node[k]`` to ``cand[k]``; it was pushed
    by live request ``parent[k]`` (-1 for the initial source request).
    ``live[k]`` says whether the candidate still improved the node when a
    worker popped it — stale requests become cancelled tasks.  Pop order
    is spawn-consistent: a request's parent always appears earlier.
    """

    node: np.ndarray
    cand: np.ndarray
    parent: np.ndarray
    live: np.ndarray

    def __post_init__(self) -> None:
        self.node = np.asarray(self.node, dtype=np.int64)
        self.cand = np.asarray(self.cand, dtype=np.float64)
        self.parent = np.asarray(self.parent, dtype=np.int64)
        self.live = np.asarray(self.live, dtype=bool)
        if not (self.node.shape == self.cand.shape == self.parent.shape
                == self.live.shape):
            raise WorkloadError("request arrays must align")
        if self.n_requests == 0:
            raise WorkloadError("a traversal has at least the root request")

    @property
    def n_requests(self) -> int:
        return self.node.size

    @property
    def n_live(self) -> int:
        return int(np.count_nonzero(self.live))

    def inflation(self, n_reached: int) -> float:
        """Live visits per reached node (1.0 = work-efficient)."""
        return self.n_live / max(n_reached, 1)


def async_relax_requests(
    graph: CSRGraph,
    source: int = 0,
    weights: np.ndarray | None = None,
    chunk: int = 256,
    seed: int = 0,
) -> tuple[RequestLog, np.ndarray]:
    """Simulate one asynchronous relaxation schedule; log every request.

    Pending requests live in delta-stepping buckets of width ``max
    weight`` and drain lowest-bucket-first, FIFO within a bucket, in
    chunks of ``chunk`` — the near-priority order Atos-style persistent
    workers achieve with bucketed queues (for unit weights this is exact
    level order); ``seed`` permutes each chunk before processing,
    modeling a different nondeterministic worker interleaving.  Requests
    in a chunk resolve with sequential atomicMin semantics: a request is
    live only if its candidate beats both the global distance and every
    earlier same-chunk request for the node (its atomicMin returned an
    improvement).  Live requests push a request for every neighbor they
    improve; the rest are stale check-and-drops.  Returns the request log
    and the fixpoint distance array — which is schedule-independent
    (``seed`` changes the log, never the distances).
    """
    if chunk < 1:
        raise WorkloadError("chunk must be >= 1")
    if not (0 <= source < graph.n_nodes):
        raise GraphError(f"source {source} out of range")
    g = graph
    if weights is None:
        weights = np.ones(g.n_edges)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (g.n_edges,):
            raise WorkloadError("weights must have one entry per edge")
        if np.any(weights < 0):
            raise GraphError("relaxation requires non-negative weights")
    rng = np.random.default_rng(seed)

    dist = np.full(g.n_nodes, np.inf)
    delta = float(weights.max()) if weights.size else 1.0
    if delta <= 0:
        delta = 1.0
    #: bucket index -> FIFO of (nodes, cands, parents) request batches
    buckets: dict[int, deque] = {}

    def push(n_arr: np.ndarray, c_arr: np.ndarray,
             p_arr: np.ndarray, front: bool = False) -> None:
        bidx = np.floor_divide(c_arr, delta).astype(np.int64)
        for b in np.unique(bidx):
            m = bidx == b
            dq = buckets.setdefault(int(b), deque())
            batch = (n_arr[m], c_arr[m], p_arr[m])
            dq.appendleft(batch) if front else dq.append(batch)

    push(np.array([source], dtype=np.int64), np.array([0.0]),
         np.array([-1], dtype=np.int64))

    log_node: list[np.ndarray] = []
    log_cand: list[np.ndarray] = []
    log_parent: list[np.ndarray] = []
    log_live: list[np.ndarray] = []
    n_requests = 0  # request ids double as task ids (pop order)

    while buckets:
        take_n, take_c, take_p = [], [], []
        taken = 0
        while buckets and taken < chunk:
            b = min(buckets)
            dq = buckets[b]
            n_arr, c_arr, p_arr = dq.popleft()
            if not dq:
                del buckets[b]
            room = chunk - taken
            if n_arr.size > room:
                push(n_arr[room:], c_arr[room:], p_arr[room:], front=True)
                n_arr, c_arr, p_arr = n_arr[:room], c_arr[:room], p_arr[:room]
            take_n.append(n_arr)
            take_c.append(c_arr)
            take_p.append(p_arr)
            taken += n_arr.size
        nodes = np.concatenate(take_n)
        cands = np.concatenate(take_c)
        parents = np.concatenate(take_p)
        if seed:
            # a different seed = a different worker interleaving
            perm = rng.permutation(nodes.size)
            nodes, cands, parents = nodes[perm], cands[perm], parents[perm]
        # sequential atomicMin: a request lands only if it beats the
        # global distance AND every earlier same-chunk write to the node
        live = np.zeros(nodes.size, dtype=bool)
        chunk_best: dict[int, float] = {}
        for k in range(nodes.size):
            nd = int(nodes[k])
            cur = chunk_best.get(nd)
            if cur is None:
                cur = float(dist[nd])
            if cands[k] < cur:
                live[k] = True
                chunk_best[nd] = float(cands[k])
        log_node.append(nodes)
        log_cand.append(cands)
        log_parent.append(parents)
        log_live.append(live)
        req_ids = np.arange(n_requests, n_requests + nodes.size,
                            dtype=np.int64)
        n_requests += nodes.size
        if not np.any(live):
            continue
        v_nodes = nodes[live]
        v_cands = cands[live]
        v_ids = req_ids[live]
        np.minimum.at(dist, v_nodes, v_cands)
        # expand: push a request for every neighbor this visit improves
        degs = g.out_degrees[v_nodes]
        idx = concat_ranges(g.row_offsets[v_nodes], degs)
        if idx.size == 0:
            continue
        nbrs = g.col_indices[idx]
        nbr_cands = np.repeat(v_cands, degs) + weights[idx]
        nbr_parents = np.repeat(v_ids, degs)
        improving = nbr_cands < dist[nbrs]
        if np.any(improving):
            push(nbrs[improving], nbr_cands[improving],
                 nbr_parents[improving])

    log = RequestLog(
        node=np.concatenate(log_node),
        cand=np.concatenate(log_cand),
        parent=np.concatenate(log_parent),
        live=np.concatenate(log_live),
    )
    return log, dist


# ------------------------------------------------------------- cost model
def _visit_cost_cycles(config: DeviceConfig, degs: np.ndarray,
                       weighted: bool) -> np.ndarray:
    """SM-cycles to relax one node's out-edges (one small block per visit).

    Same recipe as the recursive-BFS launch forest: coalesced adjacency
    read, scattered distance gathers, one atomicMin attempt per edge,
    plus the weight stream for weighted relaxations.
    """
    cfg = config
    d = np.maximum(degs, 1)
    resident = resident_warps_estimate(
        cfg, _VISIT_BLOCK, 1, concurrent_grids=cfg.max_concurrent_kernels,
    )
    seg = effective_segment_cycles(cfg, resident)
    col_tx = contiguous_transactions(
        d, element_bytes=4,
        lanes_per_warp=cfg.warp_size,
        segment_bytes=cfg.mem_segment_bytes,
    )
    mem = (col_tx + d) * seg
    if weighted:
        w_tx = contiguous_transactions(
            d, element_bytes=8,
            lanes_per_warp=cfg.warp_size,
            segment_bytes=cfg.mem_segment_bytes,
        )
        mem = mem + w_tx * seg
    wpb = -(-d // cfg.warp_size)
    compute = wpb * 8.0 / cfg.warp_throughput_per_cycle
    atomics = wpb * cfg.atomic_cycles
    return mem + compute + atomics


def _relax_counters(config: DeviceConfig, degs: np.ndarray,
                    weighted: bool) -> ProfileCounters:
    """Aggregated profiler counters of one traversal's live visits."""
    cfg = config
    d = np.maximum(degs, 1)
    wpb = -(-d // cfg.warp_size)
    col_tx = contiguous_transactions(
        d, element_bytes=4,
        lanes_per_warp=cfg.warp_size,
        segment_bytes=cfg.mem_segment_bytes,
    )
    counters = ProfileCounters(warp=WarpExecStats(warp_size=cfg.warp_size))
    counters.warp.add_counts(int(wpb.sum() * 5), int(d.sum() * 5))
    bytes_per_edge = 12 if weighted else 8  # col id + dist (+ weight)
    counters.load_traffic = MemoryTraffic(
        requested_bytes=int(d.sum()) * bytes_per_edge,
        transactions=int(col_tx.sum() + d.sum()),
        segment_bytes=cfg.mem_segment_bytes,
    )
    counters.atomic.n_atomics = int(d.sum())
    counters.atomic.max_address_multiplicity = 1
    counters.host_launches = 1
    return counters


def _metrics_from(counters: ProfileCounters, result,
                  config: DeviceConfig) -> ProfileMetrics:
    """Profiler metrics for a task-graph execution (no LaunchGraph)."""
    warp = counters.warp
    ld = counters.load_traffic
    eff = (warp.active_slots / (warp.issued_steps * warp.warp_size)
           if warp.issued_steps else 1.0)
    gld = (min(1.0, ld.requested_bytes / (ld.transactions * ld.segment_bytes))
           if ld.transactions else 1.0)
    denom = max(result.cycles * config.sm_count, 1e-9)
    util = min(1.0, result.sm_busy_cycles / denom)
    return ProfileMetrics(
        warp_execution_efficiency=eff,
        gld_efficiency=gld,
        gst_efficiency=1.0,
        warp_occupancy=util,
        atomic_ops=counters.atomic.n_atomics,
        kernel_calls=1,
        device_kernel_calls=0,
        time_ms=result.time_ms,
        sm_utilization=util,
    )


# ----------------------------------------------------------- applications
class _AsyncRelaxApp:
    """Shared machinery of the asynchronous SSSP and BFS applications."""

    name = "async-relax"
    weighted = False

    def __init__(self, graph: CSRGraph, source: int = 0,
                 chunk: int = 256, seed: int = 0) -> None:
        if not (0 <= source < graph.n_nodes):
            raise GraphError(f"source {source} out of range")
        self.graph = graph
        self.source = source
        self.chunk = chunk
        self.seed = seed
        self._log, self._dist = async_relax_requests(
            graph, source, self._weights(), chunk, seed
        )

    def _weights(self) -> np.ndarray | None:
        raise NotImplementedError

    def _serial(self):
        raise NotImplementedError

    @property
    def log(self) -> RequestLog:
        """The seeded schedule's request log (drives the task graph)."""
        return self._log

    def distances(self) -> np.ndarray:
        """The asynchronous fixpoint (must equal :meth:`compute`)."""
        return self._result_of(self._dist)

    def compute(self) -> np.ndarray:
        """Serial-reference fixpoint (template/schedule-invariant)."""
        return self._serial().result

    def _result_of(self, dist: np.ndarray) -> np.ndarray:
        return dist

    # -------------------------------------------------------- queue side
    def task_graph(self, config: DeviceConfig = KEPLER_K20) -> TaskGraph:
        """The schedule as a queue task population.

        Live requests are executed tasks costing one visit's relaxation;
        stale requests are cancelled tasks (the model charges only the
        check); spawn edges follow the log's pushes.
        """
        log = self._log
        work = np.zeros(log.n_requests)
        work[log.live] = _visit_cost_cycles(
            config, self.graph.out_degrees[log.node[log.live]], self.weighted
        )
        return TaskGraph(
            name=f"{self.name}({self.graph.name})",
            work_cycles=work,
            spawned_by=log.parent,
            cancelled=~log.live,
            counters=_relax_counters(
                config, self.graph.out_degrees[log.node[log.live]],
                self.weighted,
            ),
        )

    # ---------------------------------------------------------- BSP side
    def _frontiers(self):
        """Level-synchronous rounds: the frontier relaxed per kernel."""
        g = self.graph
        weights = self._weights()
        if weights is None:
            weights = np.ones(g.n_edges)
        dist = np.full(g.n_nodes, np.inf)
        dist[self.source] = 0.0
        frontier = np.array([self.source], dtype=np.int64)
        while frontier.size:
            yield frontier
            degs = g.out_degrees[frontier]
            idx = concat_ranges(g.row_offsets[frontier], degs)
            if idx.size == 0:
                return
            srcs = np.repeat(frontier, degs)
            targets = g.col_indices[idx]
            cand = dist[srcs] + weights[idx]
            improving = cand < dist[targets]
            if not np.any(improving):
                return
            order = np.argsort(targets[improving], kind="stable")
            t_sorted = targets[improving][order]
            c_sorted = cand[improving][order]
            first = np.ones(t_sorted.size, dtype=bool)
            first[1:] = t_sorted[1:] != t_sorted[:-1]
            group_min = np.minimum.reduceat(c_sorted, np.flatnonzero(first))
            uniq = t_sorted[first]
            better = group_min < dist[uniq]
            dist[uniq[better]] = group_min[better]
            frontier = uniq[better]

    def launch_graph(self, config: DeviceConfig = KEPLER_K20) -> LaunchGraph:
        """The BSP comparator: one host launch per round, same visit costs.

        Every round's frontier becomes one kernel whose blocks carry
        exactly the per-visit cycles the queue tasks carry — so a queue
        vs BSP comparison isolates launch/barrier overhead against
        queue/termination overhead plus schedule inflation.
        """
        graph = LaunchGraph()
        first = True
        resident = resident_warps_estimate(
            config, _VISIT_BLOCK, 1,
            concurrent_grids=config.max_concurrent_kernels,
        )
        for frontier in self._frontiers():
            cycles = _visit_cost_cycles(
                config, self.graph.out_degrees[frontier], self.weighted
            )
            counters = ProfileCounters()
            if first:
                counters = _relax_counters(
                    config,
                    self.graph.out_degrees[self._log.node[self._log.live]],
                    self.weighted,
                )
            graph.add(Launch(
                name=f"{self.name}-round",
                block_size=_VISIT_BLOCK,
                costs=KernelCosts(block_cycles=cycles,
                                  block_floor=np.zeros_like(cycles)),
                counters=counters,
                resident_warps_hint=float(resident),
            ))
            first = False
        return graph

    # --------------------------------------------------------------- run
    def run(
        self,
        backend: str = "queue",
        config: DeviceConfig = KEPLER_K20,
        queue_config: QueueConfig | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Execute the traversal on one execution model.

        ``backend="queue"`` drains the schedule's task graph through the
        persistent workers; ``backend="sim"`` runs the level-synchronous
        launch-per-round comparator on the BSP simulator.
        """
        serial = self._serial()
        meta = {
            "requests": self._log.n_requests,
            "stale": self._log.n_requests - self._log.n_live,
            "inflation": self._log.inflation(
                int(np.count_nonzero(np.isfinite(self._dist)))
            ),
        }
        if backend == "queue":
            qb = QueueBackend(config, queue_config=queue_config)
            tasks = self.task_graph(config)
            result: QueueExecutionResult = qb.submit_tasks(tasks)
            metrics = _metrics_from(tasks.counters, result, config)
            meta.update(
                n_workers=result.n_workers,
                steals=result.steals,
                termination_cycles=result.termination_cycles,
                termination_overhead=result.termination_overhead,
            )
        elif backend == "sim":
            graph = self.launch_graph(config)
            result = backend_for(config).submit(graph)
            metrics = profile(graph, result, config)
            meta.update(rounds=len(graph.launches))
        else:
            raise WorkloadError(
                f"unknown async-app backend {backend!r}; known: queue, sim"
            )
        return AppRun(
            app=self.name,
            template=backend,
            dataset=self.graph.name,
            result=self.compute(),
            gpu_time_ms=result.time_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=metrics,
            meta=meta,
        )


class AsyncSSSPApp(_AsyncRelaxApp):
    """Asynchronous SSSP: barrier-free atomicMin relaxation."""

    name = "sssp-async"
    weighted = True

    def _weights(self) -> np.ndarray:
        g = self.graph
        w = g.weights if g.weights is not None else np.ones(g.n_edges)
        if np.any(w < 0):
            raise GraphError("SSSP requires non-negative weights")
        return np.asarray(w, dtype=np.float64)

    def _serial(self):
        return sssp_serial(self.graph, self.source)


class AsyncBFSApp(_AsyncRelaxApp):
    """Asynchronous BFS: unordered unit-weight relaxation."""

    name = "bfs-async"
    weighted = False

    def _weights(self) -> None:
        return None

    def _serial(self):
        return bfs_serial(self.graph, self.source)

    def _result_of(self, dist: np.ndarray) -> np.ndarray:
        return np.where(np.isfinite(dist), dist, -1).astype(np.int64)


class AsyncTreeWalkApp:
    """Recursive tree walk on the queue: each node's task spawns its
    children — the pure frontier-push recursion the BSP model can only
    approximate with one launch per level."""

    name = "treewalk-async"

    #: issued instructions charged per visited node (payload work)
    NODE_INSTS = 12.0

    def __init__(self, tree: Tree) -> None:
        self.tree = tree

    def compute(self) -> np.ndarray:
        """Per-node depth (the walk's functional result)."""
        return self.tree.levels

    def _node_cost(self, config: DeviceConfig) -> np.ndarray:
        degs = self.tree.out_degrees
        return _visit_cost_cycles(config, degs, weighted=False)

    def task_graph(self, config: DeviceConfig = KEPLER_K20) -> TaskGraph:
        """One task per node; ``spawned_by`` is the parent (level order
        guarantees topological task ids)."""
        return TaskGraph(
            name=f"{self.name}({self.tree.name})",
            work_cycles=self._node_cost(config),
            spawned_by=self.tree.parents,
            counters=_relax_counters(config, self.tree.out_degrees,
                                     weighted=False),
        )

    def launch_graph(self, config: DeviceConfig = KEPLER_K20) -> LaunchGraph:
        """BSP comparator: one host launch per tree level."""
        graph = LaunchGraph()
        cost = self._node_cost(config)
        resident = resident_warps_estimate(
            config, _VISIT_BLOCK, 1,
            concurrent_grids=config.max_concurrent_kernels,
        )
        for level in range(self.tree.depth):
            nodes = self.tree.level_nodes(level)
            cycles = cost[nodes]
            counters = ProfileCounters()
            if level == 0:
                counters = _relax_counters(config, self.tree.out_degrees,
                                           weighted=False)
            graph.add(Launch(
                name=f"{self.name}-level",
                block_size=_VISIT_BLOCK,
                costs=KernelCosts(block_cycles=cycles,
                                  block_floor=np.zeros_like(cycles)),
                counters=counters,
                resident_warps_hint=float(resident),
            ))
        return graph

    def run(
        self,
        backend: str = "queue",
        config: DeviceConfig = KEPLER_K20,
        queue_config: QueueConfig | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Execute the walk on one execution model (queue or BSP)."""
        n = self.tree.n_nodes
        ops = OpCounts(alu=n * self.NODE_INSTS, rand_loads=float(n),
                       stores=float(n), branches=float(n), calls=float(n))
        meta = {"n_nodes": n, "depth": self.tree.depth}
        if backend == "queue":
            qb = QueueBackend(config, queue_config=queue_config)
            tasks = self.task_graph(config)
            result = qb.submit_tasks(tasks)
            metrics = _metrics_from(tasks.counters, result, config)
            meta.update(
                n_workers=result.n_workers,
                steals=result.steals,
                termination_overhead=result.termination_overhead,
            )
        elif backend == "sim":
            graph = self.launch_graph(config)
            result = backend_for(config).submit(graph)
            metrics = profile(graph, result, config)
            meta.update(rounds=len(graph.launches))
        else:
            raise WorkloadError(
                f"unknown async-app backend {backend!r}; known: queue, sim"
            )
        return AppRun(
            app=self.name,
            template=backend,
            dataset=self.tree.name,
            result=self.compute(),
            gpu_time_ms=result.time_ms,
            cpu_time_ms=cpu.time_ms(ops),
            metrics=metrics,
            meta=meta,
        )
