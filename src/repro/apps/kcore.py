"""k-core decomposition by iterative peeling (streaming application).

Matula-Beck peeling: repeatedly remove every remaining node whose degree
is <= k and decrement its surviving neighbors, raising k whenever the
minimum surviving degree exceeds it.  Each cascade round is an irregular
nested loop — outer over the peeled nodes, inner over their (full CSR)
adjacency with an aliveness check and an atomic degree decrement — with
a frontier whose size and skew change every round.  Core numbers are a
classic streaming-graph quantity (they shift locally under edge
insert/delete), which is why this app anchors the mutation benchmarks in
docs/streaming.md.  Wired through ``repro.run`` so every round goes
through IR auto-selection.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppRun, combine_rounds
from repro.core.params import TemplateParams
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.reference import kcore_serial, simple_undirected
from repro.errors import GraphError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.graphs.csr import CSRGraph, concat_ranges

__all__ = ["KCoreApp"]


class KCoreApp:
    """Core numbers under any nested-loop template, one run per cascade."""

    name = "kcore"

    def __init__(self, graph: CSRGraph) -> None:
        if graph.n_nodes == 0:
            raise GraphError("empty graph")
        self.graph = graph
        self._simple = simple_undirected(graph)
        self._serial = None

    # ----------------------------------------------------------- functional
    def compute(self) -> np.ndarray:
        """Core number per node (template-invariant result)."""
        return self._serial_run().result

    def _serial_run(self):
        if self._serial is None:
            self._serial = kcore_serial(self.graph)
        return self._serial

    # -------------------------------------------------------------- rounds
    def _rounds(self):
        """Yield ``(peel, idx, dst, live)`` per cascade round.

        Mirrors :func:`~repro.cpu.reference.kcore_serial` exactly so the
        round structure (and therefore the per-round workloads) is the
        one the reference result came from.
        """
        simple = self._simple
        deg = simple.out_degrees.copy()
        alive = np.ones(simple.n_nodes, dtype=bool)
        k = 0
        while alive.any():
            k = max(k, int(deg[alive].min()))
            while True:
                peel = np.flatnonzero(alive & (deg <= k))
                if peel.size == 0:
                    break
                alive[peel] = False
                idx = concat_ranges(simple.row_offsets[peel],
                                    simple.out_degrees[peel])
                dst = simple.col_indices[idx]
                live = alive[dst]
                yield peel, idx, dst, live
                np.add.at(deg, dst[live], -1)

    def _round_workload(self, peel, idx, dst, live) -> NestedLoopWorkload:
        simple = self._simple
        trips = np.zeros(simple.n_nodes, dtype=np.int64)
        trips[peel] = simple.out_degrees[peel]
        deg_base = 4 * simple.n_edges + 256
        return NestedLoopWorkload(
            name=f"kcore-round({self.graph.name})",
            trip_counts=trips,
            streams=[
                AccessStream("col-index", idx * 4, "load", 4),
                AccessStream("degree-gather", deg_base + dst * 4, "load", 4),
                AccessStream("degree-update", deg_base + dst * 4, "store", 4,
                             staged_in_shared=True),
            ],
            atomic_targets=np.where(live, dst, -1),
            inner_insts=7.0,      # aliveness check + decrement + bookkeeping
            outer_insts=9.0,
            outer_load_bytes=12,  # row extent + own degree
            outer_store_bytes=8,  # core[u], alive[u]
        )

    # ------------------------------------------------------------------ run
    def run(
        self,
        template: str = "auto",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
        *,
        engine: str | None = None,
        backend=None,
    ) -> AppRun:
        """Peel to completion under one template (default: auto-selected)."""
        from repro.api import run as run_workload

        runs = [
            run_workload(self._round_workload(*round_), template,
                         device=config, params=params, engine=engine,
                         backend=backend)
            for round_ in self._rounds()
        ]
        total_ms, metrics = combine_rounds(runs)
        serial = self._serial_run()
        selection = getattr(runs[0], "selection", None) if runs else None
        return AppRun(
            app=self.name,
            template=(selection.template if selection is not None
                      else template),
            dataset=self.graph.name,
            result=serial.result,
            gpu_time_ms=total_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=metrics,
            meta={"rounds": len(runs),
                  "max_core": serial.meta["max_core"]},
        )
