"""PageRank (pull formulation).

"Each iteration of the outer loop processes a different webpage (node in
a graph); the inner loop collects ranks from the neighbors of the
considered node" (paper §III.A, after [7]).  Collecting from neighbors
means pulling over in-edges, so the irregular trip counts are the
*in*-degrees.  Every power iteration has an identical trace, so the
template graph is built once and executed once per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppRun, combine_rounds
from repro.core.params import TemplateParams
from repro.core.registry import resolve
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.reference import pagerank_serial
from repro.errors import GraphError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.backends import backend_for

__all__ = ["PageRankApp"]


class PageRankApp:
    """PageRank under any nested-loop parallelization template."""

    name = "pagerank"

    def __init__(self, graph, damping: float = 0.85, n_iters: int = 20) -> None:
        if not (0.0 < damping < 1.0):
            raise GraphError("damping must lie in (0, 1)")
        if n_iters < 1:
            raise GraphError("n_iters must be >= 1")
        self.graph = graph
        self.damping = damping
        self.n_iters = n_iters
        self._reverse = graph.reverse()

    # ----------------------------------------------------------- functional
    def compute(self) -> np.ndarray:
        """Ranks after ``n_iters`` power iterations (template-invariant)."""
        return pagerank_serial(self.graph, self.damping, self.n_iters).result

    # ------------------------------------------------------------- workload
    def workload(self) -> NestedLoopWorkload:
        """One power iteration's trace: pull ranks over in-edges."""
        rev = self._reverse
        m = rev.n_edges
        edge_idx = np.arange(m, dtype=np.int64)
        col_base = 0
        r_base = 4 * m + 256
        deg_base = r_base + 8 * rev.n_nodes + 256
        return NestedLoopWorkload(
            name=f"pagerank({self.graph.name})",
            trip_counts=rev.out_degrees,  # = in-degrees of the graph
            streams=[
                AccessStream("in-neighbor", col_base + edge_idx * 4, "load", 4),
                AccessStream("rank-gather", r_base + rev.col_indices * 8,
                             "load", 8),
                AccessStream("outdeg-gather", deg_base + rev.col_indices * 4,
                             "load", 4),
            ],
            inner_insts=6.0,
            outer_insts=12.0,
            outer_load_bytes=8,
            outer_store_bytes=8,   # new rank
        )

    # ------------------------------------------------------------------ run
    def run(
        self,
        template: str = "baseline",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Execute ``n_iters`` identical iterations under one template."""
        params = params or TemplateParams()
        tmpl = resolve(template, kind="nested-loop")
        executor = backend_for(config)
        one = tmpl.run(self.workload(), config, params, executor)
        # iterations are identical and serialized on the default stream
        runs = [one] * self.n_iters
        total_ms, metrics = combine_rounds(runs)
        serial = pagerank_serial(self.graph, self.damping, self.n_iters)
        return AppRun(
            app=self.name,
            template=template,
            dataset=self.graph.name,
            result=serial.result,
            gpu_time_ms=total_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=metrics,
            meta={"iterations": self.n_iters},
        )
