"""Triangle counting by forward-edge intersection (streaming application).

The canonical irregular nested loop for streaming graph workloads: for
every forward edge ``(u, v)`` (``u < v`` on the simple undirected view),
intersect the two forward adjacency lists — each common ``w`` closes a
triangle, discovered exactly once at its lowest-id edge.  The outer loop
runs over nodes, the inner loop over each node's forward neighbors, and
the trip-count skew follows the degree distribution, which is exactly
the imbalance the paper's load-balancing templates target.  Unlike the
paper's seven applications this one is wired through ``repro.run`` (the
IR/auto-select path) rather than a hand-resolved template, so it also
exercises template *selection* under mutation (docs/streaming.md).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppRun
from repro.core.params import TemplateParams
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.reference import _forward_oriented, simple_undirected, triangles_serial
from repro.errors import GraphError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.graphs.csr import CSRGraph

__all__ = ["TrianglesApp"]


class TrianglesApp:
    """Per-node triangle counts under any nested-loop template."""

    name = "triangles"

    def __init__(self, graph: CSRGraph) -> None:
        if graph.n_nodes == 0:
            raise GraphError("empty graph")
        self.graph = graph
        self._fwd = _forward_oriented(simple_undirected(graph))
        self._serial = None
        self._workload: NestedLoopWorkload | None = None

    # ----------------------------------------------------------- functional
    def compute(self) -> np.ndarray:
        """Per-node triangle counts (template-invariant result)."""
        return self._serial_run().result

    def _serial_run(self):
        if self._serial is None:
            self._serial = triangles_serial(self.graph)
        return self._serial

    # ------------------------------------------------------------- workload
    def workload(self) -> NestedLoopWorkload:
        """The trace of the intersection loop nest (built once).

        Outer iteration = node ``u``; trip count = forward degree; per
        forward edge the kernel streams the column index, probes the row
        extent of ``v`` and atomically bumps the triangle counter of the
        closing vertex.
        """
        if self._workload is not None:
            return self._workload
        fwd = self._fwd
        m = fwd.n_edges
        edge_idx = np.arange(m, dtype=np.int64)
        off_base = 4 * m + 256
        cnt_base = off_base + 8 * (fwd.n_nodes + 1) + 256
        self._workload = NestedLoopWorkload(
            name=f"triangles({self.graph.name})",
            trip_counts=fwd.out_degrees,
            streams=[
                AccessStream("col-index", edge_idx * 4, "load", 4),
                AccessStream("row-probe", off_base + fwd.col_indices * 8,
                             "load", 8),
                AccessStream("count-update", cnt_base + fwd.col_indices * 8,
                             "store", 8, staged_in_shared=True),
            ],
            atomic_targets=fwd.col_indices.astype(np.int64),
            inner_insts=14.0,     # sorted-merge step dominates the edge work
            outer_insts=10.0,
            outer_load_bytes=16,  # own row extent + first neighbor prefetch
        )
        return self._workload

    # ------------------------------------------------------------------ run
    def run(
        self,
        template: str = "auto",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
        *,
        engine: str | None = None,
        backend=None,
    ) -> AppRun:
        """Count triangles under a template (default: auto-selected)."""
        from repro.api import run as run_workload

        tmpl_run = run_workload(self.workload(), template, device=config,
                                params=params, engine=engine, backend=backend)
        serial = self._serial_run()
        selection = getattr(tmpl_run, "selection", None)
        return AppRun(
            app=self.name,
            template=(selection.template if selection is not None
                      else template),
            dataset=self.graph.name,
            result=serial.result,
            gpu_time_ms=tmpl_run.time_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=tmpl_run.metrics,
            meta={"total": serial.meta["total"],
                  "forward_edges": self._fwd.n_edges,
                  "schedule": tmpl_run.schedule},
        )
