"""Breadth-first search: flat (level-synchronous) and recursive variants.

The flat code variant is the thread-mapped, work-efficient, level-by-level
traversal of [5]: one kernel per level, no atomics.

The recursive variants are *unordered* ([11] in the paper): traversing a
node recursively traverses every neighbor whose level decreases, so nodes
can be re-visited with successively smaller levels, and level updates need
atomics.  Scheduling is nondeterministic; we model it with a LIFO-chunk
wave simulation (depth-first flavored, like the serialized traversal the
paper describes) that yields the exact *visit forest*: who was visited,
with what level, spawned by whom.  That forest then instantiates the
rec-naive / rec-hier launch skeletons, with or without extra per-block
streams (Fig. 9's four recursive configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppRun, combine_rounds
from repro.core.params import TemplateParams
from repro.core.registry import resolve
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.reference import bfs_recursive_serial, bfs_serial
from repro.errors import GraphError, WorkloadError
from repro.gpusim.coalesce import MemoryTraffic, contiguous_transactions
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.costmodel import (
    effective_segment_cycles,
    resident_warps_estimate,
)
from repro.backends import backend_for
from repro.gpusim.kernels import KernelCosts, Launch, LaunchGraph, ProfileCounters
from repro.gpusim.profiler import profile
from repro.gpusim.warps import WarpExecStats
from repro.graphs.csr import CSRGraph, concat_ranges

__all__ = ["BFSApp", "RecursiveBFSApp", "VisitForest", "unordered_bfs_visits"]


class BFSApp:
    """Flat, work-efficient, level-synchronous BFS (the paper's baseline)."""

    name = "bfs"

    def __init__(self, graph: CSRGraph, source: int = 0) -> None:
        if not (0 <= source < graph.n_nodes):
            raise GraphError(f"source {source} out of range")
        self.graph = graph
        self.source = source

    def compute(self) -> np.ndarray:
        """Per-node levels (-1 unreachable); template-invariant."""
        return bfs_serial(self.graph, self.source).result

    def _level_frontiers(self):
        g = self.graph
        level = np.full(g.n_nodes, -1, dtype=np.int64)
        level[self.source] = 0
        frontier = np.array([self.source], dtype=np.int64)
        depth = 0
        while frontier.size:
            yield frontier
            degs = g.out_degrees[frontier]
            idx = concat_ranges(g.row_offsets[frontier], degs)
            if idx.size == 0:
                return
            new = np.unique(g.col_indices[idx][level[g.col_indices[idx]] == -1])
            if new.size == 0:
                return
            depth += 1
            level[new] = depth
            frontier = new

    def _level_workload(self, frontier: np.ndarray) -> NestedLoopWorkload:
        g = self.graph
        trips = np.zeros(g.n_nodes, dtype=np.int64)
        trips[frontier] = g.out_degrees[frontier]
        idx = concat_ranges(g.row_offsets[frontier], g.out_degrees[frontier])
        targets = g.col_indices[idx]
        lvl_base = 4 * g.n_edges + 256
        return NestedLoopWorkload(
            name=f"bfs-level({g.name})",
            trip_counts=trips,
            streams=[
                AccessStream("col-index", idx * 4, "load", 4),
                AccessStream("level-gather", lvl_base + targets * 4, "load", 4),
                AccessStream("level-set", lvl_base + targets * 4, "store", 4,
                             staged_in_shared=True),
            ],
            inner_insts=5.0,
            outer_insts=8.0,
            outer_load_bytes=12,
        )

    def run(
        self,
        template: str = "baseline",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Level-synchronous BFS under a nested-loop template."""
        params = params or TemplateParams()
        tmpl = resolve(template, kind="nested-loop")
        executor = backend_for(config)
        runs = [
            tmpl.run(self._level_workload(frontier), config, params, executor)
            for frontier in self._level_frontiers()
        ]
        total_ms, metrics = combine_rounds(runs)
        serial = bfs_serial(self.graph, self.source)
        return AppRun(
            app=self.name,
            template=template,
            dataset=self.graph.name,
            result=serial.result,
            gpu_time_ms=total_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=metrics,
            meta={"levels": len(runs)},
        )


# --------------------------------------------------------------- visit model
@dataclass
class VisitForest:
    """The exact visit forest of one unordered traversal.

    ``node[k]`` was visited with level ``level[k]``, spawned by visit
    ``parent[k]`` (-1 for the root visit).  ``children_count[k]`` is the
    number of visits ``k`` spawned.
    """

    node: np.ndarray
    level: np.ndarray
    parent: np.ndarray

    def __post_init__(self) -> None:
        self.node = np.asarray(self.node, dtype=np.int64)
        self.level = np.asarray(self.level, dtype=np.int64)
        self.parent = np.asarray(self.parent, dtype=np.int64)
        if not (self.node.shape == self.level.shape == self.parent.shape):
            raise WorkloadError("visit arrays must align")
        if self.n_visits == 0:
            raise WorkloadError("a traversal has at least the root visit")
        self.children_count = np.zeros(self.n_visits, dtype=np.int64)
        valid = self.parent >= 0
        np.add.at(self.children_count, self.parent[valid], 1)

    @property
    def n_visits(self) -> int:
        """Total visits (= nested launches of rec-naive, +1 for the host)."""
        return self.node.size

    def inflation(self, n_reached: int) -> float:
        """Visits per reached node (1.0 = work-efficient)."""
        return self.n_visits / max(n_reached, 1)


def unordered_bfs_visits(
    graph: CSRGraph, source: int = 0, chunk: int = 1024, seed: int = 0
) -> tuple[VisitForest, np.ndarray]:
    """Simulate an unordered (recursive) BFS and record every visit.

    Pending traversal requests are processed LIFO in chunks of ``chunk``
    (the depth-first-flavored order the nondeterministic recursion
    exhibits).  A request is a real visit if its candidate level still
    improves the node when processed; visits push requests for every
    neighbor they improve.  Returns the visit forest and the final level
    array — which must equal the level-synchronous BFS fixpoint.
    """
    if chunk < 1:
        raise WorkloadError("chunk must be >= 1")
    if not (0 <= source < graph.n_nodes):
        raise GraphError(f"source {source} out of range")
    g = graph
    INF = np.iinfo(np.int64).max
    level = np.full(g.n_nodes, INF, dtype=np.int64)
    # pending stack of (node, candidate level, parent visit id)
    stack_nodes = [np.array([source], dtype=np.int64)]
    stack_cands = [np.array([0], dtype=np.int64)]
    stack_parents = [np.array([-1], dtype=np.int64)]
    pending = 1

    visits_node: list[np.ndarray] = []
    visits_level: list[np.ndarray] = []
    visits_parent: list[np.ndarray] = []
    n_visits = 0

    while pending:
        # pop up to `chunk` items off the tail (LIFO)
        take_nodes, take_cands, take_parents = [], [], []
        taken = 0
        while stack_nodes and taken < chunk:
            n_arr, c_arr, p_arr = stack_nodes.pop(), stack_cands.pop(), stack_parents.pop()
            room = chunk - taken
            if n_arr.size > room:
                stack_nodes.append(n_arr[:-room])
                stack_cands.append(c_arr[:-room])
                stack_parents.append(p_arr[:-room])
                n_arr, c_arr, p_arr = n_arr[-room:], c_arr[-room:], p_arr[-room:]
            take_nodes.append(n_arr)
            take_cands.append(c_arr)
            take_parents.append(p_arr)
            taken += n_arr.size
        pending -= taken
        nodes = np.concatenate(take_nodes)
        cands = np.concatenate(take_cands)
        parents = np.concatenate(take_parents)
        # a request is live if it still improves the node (all requests in
        # the chunk read the same pre-chunk state: they run "in parallel")
        live = cands < level[nodes]
        if not np.any(live):
            continue
        v_nodes = nodes[live]
        v_cands = cands[live]
        v_parents = parents[live]
        visits_node.append(v_nodes)
        visits_level.append(v_cands)
        visits_parent.append(v_parents)
        visit_ids = np.arange(n_visits, n_visits + v_nodes.size, dtype=np.int64)
        n_visits += v_nodes.size
        # commit the minimum level per node
        np.minimum.at(level, v_nodes, v_cands)
        # expand: push requests for neighbors that would improve *now*
        degs = g.out_degrees[v_nodes]
        idx = concat_ranges(g.row_offsets[v_nodes], degs)
        if idx.size == 0:
            continue
        nbrs = g.col_indices[idx]
        nbr_cands = np.repeat(v_cands, degs) + 1
        nbr_parents = np.repeat(visit_ids, degs)
        improving = nbr_cands < level[nbrs]
        if np.any(improving):
            stack_nodes.append(nbrs[improving])
            stack_cands.append(nbr_cands[improving])
            stack_parents.append(nbr_parents[improving])
            pending += int(np.count_nonzero(improving))

    final = np.where(level == INF, -1, level)
    forest = VisitForest(
        node=np.concatenate(visits_node),
        level=np.concatenate(visits_level),
        parent=np.concatenate(visits_parent),
    )
    return forest, final


# --------------------------------------------------------- recursive timing
class RecursiveBFSApp:
    """Unordered recursive BFS on GPU: rec-naive / rec-hier, +- streams."""

    name = "bfs-recursive"

    def __init__(self, graph: CSRGraph, source: int = 0, chunk: int = 1024) -> None:
        self.graph = graph
        self.source = source
        self._forest, self._levels = unordered_bfs_visits(graph, source, chunk)

    @property
    def forest(self) -> VisitForest:
        """The simulated visit forest (shared by both variants)."""
        return self._forest

    def compute(self) -> np.ndarray:
        """Fixpoint levels — must equal the flat traversal's result."""
        return self._levels

    # -------------------------------------------------------- launch forest
    def _build_graph(
        self,
        config: DeviceConfig,
        params: TemplateParams,
        hierarchical: bool,
    ) -> LaunchGraph:
        """One launch per visit, under either recursion shape.

        * naive: the launch is a single block probing the visit's
          neighbors; its threads spawn child launches for every neighbor
          they improved — children share the parent block's NULL stream
          (serialized) unless ``streams_per_block`` > 1.
        * hierarchical: the launch's *blocks* are the visit's neighbors
          and its threads their neighbors (two levels per launch).  Child
          launches are issued one-per-block, so siblings run concurrently
          without extra streams — but probing work is duplicated across
          levels, which is the "less work-efficient" cost the paper
          attributes to this variant.
        """
        g = self.graph
        forest = self._forest
        cfg = config
        launch_index = np.full(forest.n_visits, -1, dtype=np.int64)

        degs = g.out_degrees[forest.node]
        resident = resident_warps_estimate(
            cfg, 64, 1,
            concurrent_grids=cfg.max_concurrent_kernels,
        )
        seg = effective_segment_cycles(cfg, resident)
        # per-visit probe cost: read neighbor list (coalesced) + gather
        # levels (scattered) + one atomicMin attempt per neighbor
        col_tx = contiguous_transactions(
            np.maximum(degs, 1), element_bytes=4,
            lanes_per_warp=cfg.warp_size,
            segment_bytes=cfg.mem_segment_bytes,
        )
        probe_mem = (col_tx + np.maximum(degs, 1)) * seg
        wpb = -(-np.maximum(degs, 1) // cfg.warp_size)
        probe_compute = wpb * 8.0 / cfg.warp_throughput_per_cycle
        probe_atomics = wpb * cfg.atomic_cycles  # atomicMin per probe warp
        visit_cycles = probe_mem + probe_compute + probe_atomics
        issue_cycles = forest.children_count * cfg.device_launch_issue_cycles

        # sibling order for device-stream serialization
        order = np.argsort(forest.parent, kind="stable")
        sibling_rank = np.zeros(forest.n_visits, dtype=np.int64)
        sorted_parents = forest.parent[order]
        new_grp = np.ones(order.size, dtype=bool)
        new_grp[1:] = sorted_parents[1:] != sorted_parents[:-1]
        grp_start = np.maximum.accumulate(
            np.where(new_grp, np.arange(order.size), 0)
        )
        sibling_rank[order] = np.arange(order.size) - grp_start

        graph = LaunchGraph()
        counters = ProfileCounters(warp=WarpExecStats(warp_size=cfg.warp_size))
        counters.warp.add_counts(int(wpb.sum() * 5), int(degs.sum() * 5))
        counters.load_traffic = MemoryTraffic(
            requested_bytes=int(degs.sum()) * 8,
            transactions=int(col_tx.sum() + degs.sum()),
            segment_bytes=cfg.mem_segment_bytes,
        )
        counters.atomic.n_atomics = int(degs.sum())
        counters.atomic.max_address_multiplicity = 1

        children_of: dict[int, list[int]] = {}
        for k, p in enumerate(forest.parent.tolist()):
            if p >= 0:
                children_of.setdefault(p, []).append(k)

        floor_scale = cfg.warp_throughput_per_cycle
        first = True
        for v in range(forest.n_visits):
            kids = children_of.get(v, [])
            if hierarchical:
                # One launch per visit, but organized hierarchically: the
                # first block probes this visit's neighborhood; one cheap
                # block per improved child marshals that child's nested
                # launch.  Probing is charged exactly once per visit (as
                # in naive) — the hierarchical advantage is that nested
                # launches issue from distinct blocks, i.e. distinct NULL
                # streams, so siblings run concurrently without extra
                # streams (the paper's §III.C observation).
                cells = [visit_cycles[v]]
                cells.extend(
                    150.0 + cfg.device_launch_issue_cycles for _ in kids
                )
                block_cycles = np.array(cells)
                bsize = 64
            else:
                block_cycles = np.array([visit_cycles[v] + issue_cycles[v]])
                bsize = min(max(int(degs[v]), 32), 1024)
            wpb_here = -(-bsize // cfg.warp_size)
            costs = KernelCosts(
                block_cycles=np.asarray(block_cycles, dtype=np.float64),
                block_floor=np.asarray(block_cycles, dtype=np.float64)
                * max(floor_scale / wpb_here, 1.0),
            )
            parent_visit = int(forest.parent[v])
            if parent_visit < 0:
                counters.host_launches += 1
                launch = Launch(
                    name="bfs-rec",
                    block_size=bsize,
                    costs=costs,
                    counters=counters if first else ProfileCounters(),
                    resident_warps_hint=float(resident),
                )
            else:
                counters.device_launches += 1
                rank = int(sibling_rank[v])
                if hierarchical:
                    # issued by this child's marshalling block (block 0 is
                    # the parent's probe block): distinct per-block NULL
                    # streams -> siblings run concurrently
                    pblock = 1 + rank
                    stream = 0
                else:
                    pblock = 0
                    stream = rank % params.streams_per_block
                launch = Launch(
                    name="bfs-rec",
                    block_size=bsize,
                    costs=costs,
                    parent=int(launch_index[parent_visit]),
                    parent_block=int(pblock),
                    device_stream=stream,
                    counters=ProfileCounters(),
                    resident_warps_hint=float(resident),
                )
            launch_index[v] = graph.add(launch)
            first = False
        return graph

    def run(
        self,
        variant: str = "rec-hier",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Execute one recursive variant; CPU baseline is *recursive* serial.

        Fig. 9 reports recursive-GPU **slowdowns** over recursive serial
        CPU, i.e. ``1 / AppRun.speedup``.
        """
        if variant not in ("rec-naive", "rec-hier"):
            raise WorkloadError(f"unknown recursive BFS variant {variant!r}")
        params = params or TemplateParams()
        graph = self._build_graph(config, params, variant == "rec-hier")
        result = backend_for(config).submit(graph)
        metrics = profile(graph, result, config)
        serial = bfs_recursive_serial(self.graph, self.source)
        return AppRun(
            app=self.name,
            template=variant + ("-stream" if params.streams_per_block > 1 else ""),
            dataset=self.graph.name,
            result=self._levels,
            gpu_time_ms=result.time_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=metrics,
            meta={
                "visits": self._forest.n_visits,
                "inflation": self._forest.inflation(
                    int(np.count_nonzero(self._levels >= 0))
                ),
            },
        )
