"""``repro.apps`` — the paper's seven applications + the sort case study."""

from repro.apps.asyncq import (
    AsyncBFSApp,
    AsyncSSSPApp,
    AsyncTreeWalkApp,
    RequestLog,
    async_relax_requests,
)
from repro.apps.base import AppRun, combine_rounds
from repro.apps.bc import BCApp
from repro.apps.cc import CCApp, cc_serial
from repro.apps.bfs import (
    BFSApp,
    RecursiveBFSApp,
    VisitForest,
    unordered_bfs_visits,
)
from repro.apps.kcore import KCoreApp
from repro.apps.mis import MISApp
from repro.apps.pagerank import PageRankApp
from repro.apps.sort import (
    SORT_VARIANTS,
    PartitionRecord,
    SortApp,
    merge_sort,
    quicksort,
)
from repro.apps.spmv import SpMVApp
from repro.apps.sssp import SSSPApp
from repro.apps.triangles import TrianglesApp
from repro.apps.tree_desc import TreeDescendantsApp
from repro.apps.tree_height import TreeHeightsApp

__all__ = [
    "AppRun", "combine_rounds",
    "SpMVApp", "SSSPApp", "PageRankApp", "BCApp", "CCApp", "cc_serial",
    "TrianglesApp", "KCoreApp", "MISApp",
    "BFSApp", "RecursiveBFSApp", "VisitForest", "unordered_bfs_visits",
    "AsyncSSSPApp", "AsyncBFSApp", "AsyncTreeWalkApp",
    "RequestLog", "async_relax_requests",
    "TreeDescendantsApp", "TreeHeightsApp",
    "SortApp", "SORT_VARIANTS", "merge_sort", "quicksort", "PartitionRecord",
]
