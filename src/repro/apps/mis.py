"""Maximal independent set by deterministic Luby rounds (streaming app).

Every round, each remaining node publishes its id to its remaining
neighbors (atomicMin into a ``best`` array); the nodes that stay below
every neighbor's id are local minima, enter the set, and knock out their
neighborhoods.  With static id priorities this computes exactly the
lexicographically-first MIS the sequential greedy scan produces — but as
a sequence of irregular nested loops whose frontier shrinks and whose
degree skew concentrates in the tail, the regime where the paper's
load-balancing templates separate from thread-mapping.  Wired through
``repro.run`` so every round goes through IR auto-selection; the serial
reference is :func:`~repro.cpu.reference.mis_serial`.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppRun, combine_rounds
from repro.core.params import TemplateParams
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.reference import mis_serial, simple_undirected
from repro.errors import GraphError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.graphs.csr import CSRGraph, concat_ranges

__all__ = ["MISApp"]


class MISApp:
    """Lexicographically-first MIS under any nested-loop template."""

    name = "mis"

    def __init__(self, graph: CSRGraph) -> None:
        if graph.n_nodes == 0:
            raise GraphError("empty graph")
        self.graph = graph
        self._simple = simple_undirected(graph)
        self._serial = None

    # ----------------------------------------------------------- functional
    def compute(self) -> np.ndarray:
        """Boolean membership mask (template-invariant result)."""
        return self._serial_run().result

    def _serial_run(self):
        if self._serial is None:
            self._serial = mis_serial(self.graph)
        return self._serial

    # -------------------------------------------------------------- rounds
    def _rounds(self):
        """Yield ``(frontier, idx, dst, live)`` per Luby round.

        Mirrors :func:`~repro.cpu.reference.mis_serial` exactly: the
        frontier is the remaining nodes, and the round's inner loop scans
        each frontier node's full adjacency with an aliveness filter.
        """
        simple = self._simple
        n = simple.n_nodes
        alive = np.ones(n, dtype=bool)
        while alive.any():
            frontier = np.flatnonzero(alive)
            degs = simple.out_degrees[frontier]
            idx = concat_ranges(simple.row_offsets[frontier], degs)
            src = np.repeat(frontier, degs)
            dst = simple.col_indices[idx]
            live = alive[dst]
            yield frontier, idx, dst, live
            best = np.full(n, n, dtype=np.int64)
            np.minimum.at(best, src[live], dst[live])
            winners = frontier[frontier < best[frontier]]
            alive[winners] = False
            kill = concat_ranges(simple.row_offsets[winners],
                                 simple.out_degrees[winners])
            alive[simple.col_indices[kill]] = False

    def _round_workload(self, frontier, idx, dst, live) -> NestedLoopWorkload:
        simple = self._simple
        trips = np.zeros(simple.n_nodes, dtype=np.int64)
        trips[frontier] = simple.out_degrees[frontier]
        best_base = 4 * simple.n_edges + 256
        return NestedLoopWorkload(
            name=f"mis-round({self.graph.name})",
            trip_counts=trips,
            streams=[
                AccessStream("col-index", idx * 4, "load", 4),
                AccessStream("priority-gather", best_base + dst * 8,
                             "load", 8),
                AccessStream("priority-update", best_base + dst * 8,
                             "store", 8, staged_in_shared=True),
            ],
            atomic_targets=np.where(live, dst, -1),
            inner_insts=6.0,      # aliveness check + atomicMin
            outer_insts=8.0,
            outer_load_bytes=12,  # row extent + own alive flag
            outer_store_bytes=4,  # in_set[u] on winning rounds
        )

    # ------------------------------------------------------------------ run
    def run(
        self,
        template: str = "auto",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
        *,
        engine: str | None = None,
        backend=None,
    ) -> AppRun:
        """Run Luby rounds to a fixpoint (default: auto-selected)."""
        from repro.api import run as run_workload

        runs = [
            run_workload(self._round_workload(*round_), template,
                         device=config, params=params, engine=engine,
                         backend=backend)
            for round_ in self._rounds()
        ]
        total_ms, metrics = combine_rounds(runs)
        serial = self._serial_run()
        selection = getattr(runs[0], "selection", None) if runs else None
        return AppRun(
            app=self.name,
            template=(selection.template if selection is not None
                      else template),
            dataset=self.graph.name,
            result=serial.result,
            gpu_time_ms=total_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=metrics,
            meta={"rounds": len(runs),
                  "set_size": serial.meta["set_size"]},
        )
