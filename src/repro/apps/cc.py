"""Connected components by label propagation (bonus application).

Not part of the paper's evaluation, but squarely in its target class —
the related work it builds on (Burtscher et al., Nasre et al.) evaluates
connected components alongside SSSP/BFS.  Label propagation is another
irregular nested loop: every round, each node pushes its component label
to its neighbors (atomicMin), until no label changes.  Included as a
worked example of wrapping a *new* application around the template
machinery (docs/extending.md walks through this code).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppRun, combine_rounds
from repro.core.params import TemplateParams
from repro.core.registry import resolve
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig, OpCounts
from repro.cpu.reference import SerialRun
from repro.errors import GraphError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.backends import backend_for
from repro.graphs.csr import CSRGraph, concat_ranges

__all__ = ["CCApp", "cc_serial"]


def cc_serial(graph: CSRGraph) -> SerialRun:
    """Serial label propagation over the *symmetrized* adjacency.

    Components are defined on the undirected view (standard for CC);
    labels start as node ids and contract to the component minimum.
    """
    n = graph.n_nodes
    labels = np.arange(n, dtype=np.int64)
    rounds = 0
    edges_touched = 0
    sym = _symmetric(graph)
    frontier = np.arange(n, dtype=np.int64)
    while frontier.size and rounds < n:
        rounds += 1
        degs = sym.out_degrees[frontier]
        idx = concat_ranges(sym.row_offsets[frontier], degs)
        edges_touched += idx.size
        if idx.size == 0:
            break
        src = np.repeat(frontier, degs)
        dst = sym.col_indices[idx]
        cand = labels[src]
        improving = cand < labels[dst]
        if not np.any(improving):
            break
        order = np.argsort(dst[improving], kind="stable")
        t = dst[improving][order]
        c = cand[improving][order]
        first = np.ones(t.size, dtype=bool)
        first[1:] = t[1:] != t[:-1]
        group_min = np.minimum.reduceat(c, np.flatnonzero(first))
        uniq = t[first]
        better = group_min < labels[uniq]
        labels[uniq[better]] = group_min[better]
        frontier = uniq[better]
    ops = OpCounts(
        alu=2.0 * edges_touched,
        seq_loads=1.0 * edges_touched,
        rand_loads=2.0 * edges_touched,
        stores=0.3 * edges_touched + n,
        branches=1.0 * edges_touched,
    )
    return SerialRun(result=labels, ops=ops,
                     meta={"rounds": rounds, "edges_touched": edges_touched})


def _symmetric(graph: CSRGraph) -> CSRGraph:
    """The undirected view: edges plus their reverses."""
    from repro.graphs.csr import expand_rows

    rows = expand_rows(graph.row_offsets)
    src = np.concatenate([rows, graph.col_indices])
    dst = np.concatenate([graph.col_indices, rows])
    return CSRGraph.from_edges(graph.n_nodes, src, dst,
                               name=f"{graph.name}+sym")


class CCApp:
    """Connected components under any nested-loop template."""

    name = "cc"

    def __init__(self, graph: CSRGraph) -> None:
        if graph.n_nodes == 0:
            raise GraphError("empty graph")
        self.graph = graph
        self._sym = _symmetric(graph)

    # ----------------------------------------------------------- functional
    def compute(self) -> np.ndarray:
        """Component labels (min node id per component)."""
        return cc_serial(self.graph).result

    # -------------------------------------------------------------- rounds
    def _rounds(self):
        sym = self._sym
        n = sym.n_nodes
        labels = np.arange(n, dtype=np.int64)
        frontier = np.arange(n, dtype=np.int64)
        while frontier.size:
            degs = sym.out_degrees[frontier]
            idx = concat_ranges(sym.row_offsets[frontier], degs)
            src = np.repeat(frontier, degs)
            dst = sym.col_indices[idx]
            cand = labels[src]
            improving = cand < labels[dst]
            yield frontier, idx, dst, improving
            if not np.any(improving):
                break
            order = np.argsort(dst[improving], kind="stable")
            t = dst[improving][order]
            c = cand[improving][order]
            first = np.ones(t.size, dtype=bool)
            first[1:] = t[1:] != t[:-1]
            group_min = np.minimum.reduceat(c, np.flatnonzero(first))
            uniq = t[first]
            better = group_min < labels[uniq]
            labels[uniq[better]] = group_min[better]
            frontier = uniq[better]

    def _round_workload(self, frontier, idx, dst, improving) -> NestedLoopWorkload:
        sym = self._sym
        trips = np.zeros(sym.n_nodes, dtype=np.int64)
        trips[frontier] = sym.out_degrees[frontier]
        lbl_base = 4 * sym.n_edges + 256
        return NestedLoopWorkload(
            name=f"cc-round({self.graph.name})",
            trip_counts=trips,
            streams=[
                AccessStream("col-index", idx * 4, "load", 4),
                AccessStream("label-gather", lbl_base + dst * 4, "load", 4),
                AccessStream("label-update", lbl_base + dst * 4, "store", 4,
                             staged_in_shared=True),
            ],
            atomic_targets=np.where(improving, dst, -1),
            inner_insts=6.0,
            outer_insts=8.0,
            outer_load_bytes=12,
        )

    # ------------------------------------------------------------------ run
    def run(
        self,
        template: str = "baseline",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Run label propagation to fixpoint under one template."""
        params = params or TemplateParams()
        tmpl = resolve(template, kind="nested-loop")
        executor = backend_for(config)
        runs = [
            tmpl.run(self._round_workload(*round_), config, params, executor)
            for round_ in self._rounds()
        ]
        total_ms, metrics = combine_rounds(runs)
        serial = cc_serial(self.graph)
        return AppRun(
            app=self.name,
            template=template,
            dataset=self.graph.name,
            result=serial.result,
            gpu_time_ms=total_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=metrics,
            meta={"rounds": len(runs),
                  "components": int(np.unique(serial.result).size)},
        )
