"""Common application scaffolding.

Every application exposes the same surface: a functional (vectorized)
computation whose result is verified against scipy/networkx/serial
references, a :class:`~repro.core.workload.NestedLoopWorkload` trace per
round for the template machinery, and a serial CPU baseline for speedups.
:class:`AppRun` bundles one (application, template) execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import TemplateRun
from repro.gpusim.profiler import ProfileMetrics

__all__ = ["AppRun", "combine_rounds"]


@dataclass
class AppRun:
    """Result of running one application under one template."""

    app: str
    template: str
    dataset: str
    result: np.ndarray
    gpu_time_ms: float
    cpu_time_ms: float
    metrics: ProfileMetrics
    meta: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Serial-CPU time over simulated GPU time."""
        if self.gpu_time_ms <= 0:
            return float("inf")
        return self.cpu_time_ms / self.gpu_time_ms


def combine_rounds(rounds: list[TemplateRun]) -> tuple[float, ProfileMetrics]:
    """Total time + work-weighted metrics over a multi-round execution.

    Iterative applications (SSSP rounds, PageRank iterations, BC sources)
    launch the template once per round; the end-to-end time is the sum and
    the profiler metrics are aggregated the way the Visual Profiler would
    (ratios re-derived from summed raw counters).
    """
    if not rounds:
        raise ValueError("combine_rounds needs at least one round")
    total_ms = sum(r.result.time_ms for r in rounds)
    counters = [r.graph.aggregate_counters() for r in rounds]
    issued = sum(c.warp.issued_steps for c in counters)
    active = sum(c.warp.active_slots for c in counters)
    ld_req = sum(c.load_traffic.requested_bytes for c in counters)
    ld_tx = sum(c.load_traffic.transactions for c in counters)
    st_req = sum(c.store_traffic.requested_bytes for c in counters)
    st_tx = sum(c.store_traffic.transactions for c in counters)
    seg = counters[0].load_traffic.segment_bytes
    atomics = sum(r.metrics.atomic_ops for r in rounds)
    kcalls = sum(r.metrics.kernel_calls for r in rounds)
    dcalls = sum(r.metrics.device_kernel_calls for r in rounds)
    warp_size = counters[0].warp.warp_size
    weight = sum(max(r.result.cycles, 1e-9) for r in rounds)
    occupancy = sum(
        r.metrics.warp_occupancy * max(r.result.cycles, 1e-9) for r in rounds
    ) / weight
    util = sum(
        r.result.sm_utilization * max(r.result.cycles, 1e-9) for r in rounds
    ) / weight
    metrics = ProfileMetrics(
        warp_execution_efficiency=(
            active / (issued * warp_size) if issued else 1.0
        ),
        gld_efficiency=min(1.0, ld_req / (ld_tx * seg)) if ld_tx else 1.0,
        gst_efficiency=min(1.0, st_req / (st_tx * seg)) if st_tx else 1.0,
        warp_occupancy=occupancy,
        atomic_ops=atomics,
        kernel_calls=kcalls,
        device_kernel_calls=dcalls,
        time_ms=total_ms,
        sm_utilization=util,
    )
    return total_ms, metrics
