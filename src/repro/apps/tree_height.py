"""Tree Heights application (paper Fig. 8).

"Each leaf node within the tree is assigned height 1, and the height of a
non-leaf node is defined as 1 + the maximum height across its children."
Same mapping structure as Tree Descendants (the paper generated the code
from the same templates); only the reduction operator differs (max vs
sum), which costs one extra compare per hop.
"""

from __future__ import annotations

import numpy as np

from repro.apps.tree_desc import TreeDescendantsApp
from repro.core.recursive import RecursiveTreeWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.trees import best_serial_heights
from repro.trees.metrics import node_heights

__all__ = ["TreeHeightsApp"]


class TreeHeightsApp(TreeDescendantsApp):
    """Tree heights under flat / rec-naive / rec-hier templates."""

    name = "tree-heights"
    kind = "heights"

    def compute(self) -> np.ndarray:
        """Node heights (template-invariant)."""
        return node_heights(self.tree)

    def workload(self) -> RecursiveTreeWorkload:
        """The recursive workload descriptor (max-reduction flavor)."""
        return RecursiveTreeWorkload(self.tree, self.kind, inner_insts=7.0)

    def cpu_baseline(self, cpu: CPUConfig = XEON_E5_2620) -> float:
        """Serial time of the better CPU variant (ms)."""
        return cpu.time_ms(best_serial_heights(self.tree).ops)
