"""The sort case study (paper Fig. 2).

The paper motivates its skepticism about naive dynamic parallelism with
the CUDA SDK's sorting samples: *Simple QuickSort* and *Advanced
QuickSort* (both recursive, built on nested launches) against a flat,
non-recursive *MergeSort* — and the flat kernel wins at every size.

We implement all three:

* functional results are produced by real algorithms (vectorized pairwise
  run-merging for mergesort; explicit-stack pivot partitioning for the
  quicksorts, with selection/bitonic leaf sorts);
* timing comes from the recursion/pass structure the functional run
  actually produced: one kernel per merge pass vs. one nested launch per
  partition call (depth-limited, leaf kernels included).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.dynpar import require_device_support
from repro.backends import backend_for
from repro.gpusim.kernels import KernelCosts, Launch, LaunchGraph
from repro.gpusim.profiler import ProfileMetrics, profile

__all__ = [
    "merge_sort",
    "quicksort",
    "PartitionRecord",
    "SortApp",
    "SORT_VARIANTS",
]

SORT_VARIANTS = ("mergesort", "quicksort-simple", "quicksort-advanced")

#: value span assumed by the per-row searchsorted trick (int32 inputs)
_ROW_SPAN = np.int64(1) << 33


def _merge_pass(values: np.ndarray, width: int) -> np.ndarray:
    """Merge adjacent sorted runs of ``width`` into runs of ``2*width``.

    Fully vectorized across run pairs: rows are lifted into disjoint key
    ranges (row_id * SPAN + value) so one global ``searchsorted`` computes
    every row's merge positions at once.
    """
    n = values.size
    if width >= n:
        return values
    pair = 2 * width
    n_pairs = -(-n // pair)
    padded = np.full(n_pairs * pair, np.iinfo(np.int64).max // 2, dtype=np.int64)
    padded[:n] = values
    rows = padded.reshape(n_pairs, pair)
    a = rows[:, :width]
    b = rows[:, width:]
    row_ids = np.arange(n_pairs, dtype=np.int64)[:, None]
    a_keys = (row_ids * _ROW_SPAN + a).ravel()
    b_keys = (row_ids * _ROW_SPAN + b).ravel()
    # position of each A element among B (and vice versa) per row
    a_rank_in_b = np.searchsorted(b_keys, a_keys, side="left") - row_ids.ravel().repeat(width) * width
    b_rank_in_a = np.searchsorted(a_keys, b_keys, side="right") - row_ids.ravel().repeat(width) * width
    out = np.empty_like(rows)
    col = np.tile(np.arange(width, dtype=np.int64), n_pairs).reshape(n_pairs, width)
    a_pos = col + a_rank_in_b.reshape(n_pairs, width)
    b_pos = col + b_rank_in_a.reshape(n_pairs, width)
    np.put_along_axis(out, a_pos, a, axis=1)
    np.put_along_axis(out, b_pos, b, axis=1)
    return out.ravel()[:n]


def merge_sort(values: np.ndarray, base_width: int = 32) -> tuple[np.ndarray, list[int]]:
    """Bottom-up mergesort; returns (sorted array, pass widths).

    The base case sorts ``base_width`` runs in registers/shared memory
    (one thread-block each); subsequent passes double the run width.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise WorkloadError("merge_sort expects a 1-D array")
    if values.size == 0:
        return values.astype(np.int64), []
    v = values.astype(np.int64, copy=True)
    n = v.size
    base = min(base_width, n)
    n_runs = -(-n // base)
    padded = np.full(n_runs * base, np.iinfo(np.int64).max // 2, dtype=np.int64)
    padded[:n] = v
    padded = np.sort(padded.reshape(n_runs, base), axis=1).ravel()
    v = padded[:n]
    widths = [base]
    width = base
    while width < n:
        v = _merge_pass(v, width)
        width *= 2
        widths.append(width)
    return v, widths


@dataclass
class PartitionRecord:
    """One partition call in a quicksort recursion."""

    offset: int
    size: int
    depth: int
    parent: int            # index of the parent record, -1 for the root
    is_leaf: bool = False  # handled by the flat leaf sort instead


def quicksort(
    values: np.ndarray,
    max_depth: int = 16,
    leaf_size: int = 64,
    median_of_three: bool = False,
    seed: int = 0,
) -> tuple[np.ndarray, list[PartitionRecord]]:
    """Depth-limited quicksort; returns (sorted array, recursion records).

    Mirrors the CUDA SDK samples: each partition call would be a nested
    kernel; once ``max_depth`` is hit or a segment is below ``leaf_size``,
    a flat leaf kernel (Selection or Bitonic sort) finishes the segment.
    ``median_of_three`` selects the Advanced variant's pivot strategy.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise WorkloadError("quicksort expects a 1-D array")
    v = values.astype(np.int64, copy=True)
    records: list[PartitionRecord] = []
    if v.size == 0:
        return v, records
    stack: list[tuple[int, int, int, int]] = [(0, v.size, 0, -1)]
    while stack:
        lo, hi, depth, parent = stack.pop()
        size = hi - lo
        me = len(records)
        if size <= leaf_size or depth >= max_depth:
            records.append(PartitionRecord(lo, size, depth, parent, is_leaf=True))
            v[lo:hi] = np.sort(v[lo:hi])
            continue
        records.append(PartitionRecord(lo, size, depth, parent))
        seg = v[lo:hi]
        if median_of_three:
            cand = np.array([seg[0], seg[size // 2], seg[-1]])
            pivot = int(np.sort(cand)[1])
        else:
            pivot = int(seg[size // 2])
        less = seg[seg < pivot]
        equal = seg[seg == pivot]
        greater = seg[seg > pivot]
        v[lo: lo + less.size] = less
        v[lo + less.size: lo + less.size + equal.size] = equal
        v[lo + less.size + equal.size: hi] = greater
        left = (lo, lo + less.size, depth + 1, me)
        right = (lo + less.size + equal.size, hi, depth + 1, me)
        if left[1] - left[0] > 1:
            stack.append(left)
        elif left[1] - left[0] >= 0:
            pass
        if right[1] - right[0] > 1:
            stack.append(right)
    return v, records


@dataclass
class SortRun:
    """Timing + structure of one simulated sort execution."""

    variant: str
    n: int
    time_ms: float
    kernel_calls: int
    device_kernel_calls: int
    metrics: ProfileMetrics
    result: np.ndarray = field(repr=False, default=None)


class SortApp:
    """The Fig. 2 sort comparison on the simulated device."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.ndim != 1 or values.size == 0:
            raise WorkloadError("SortApp expects a non-empty 1-D array")
        self.values = values.astype(np.int64)

    # ------------------------------------------------------------ mergesort
    def _mergesort_graph(self, config: DeviceConfig) -> tuple[LaunchGraph, np.ndarray]:
        result, widths = merge_sort(self.values)
        n = self.values.size
        graph = LaunchGraph()
        block = 256
        for i, width in enumerate(widths):
            # each pass streams the whole array in and out, coalesced
            grid = max(1, min(-(-n // (block * 4)), 65_535))
            tx = 2.0 * n * 4 / config.mem_segment_bytes
            compute = n * 8.0 / config.warp_throughput_per_cycle
            total = tx * config.cycles_per_segment + compute
            per_block = np.full(grid, total / grid)
            graph.add(Launch(
                name=f"merge-pass-{i}",
                block_size=block,
                costs=KernelCosts(block_cycles=per_block),
                resident_warps_hint=64.0,
            ))
        return graph, result

    # ----------------------------------------------------------- quicksorts
    def _quicksort_graph(
        self, config: DeviceConfig, advanced: bool
    ) -> tuple[LaunchGraph, np.ndarray]:
        require_device_support(
            config, "quicksort-advanced" if advanced else "quicksort-simple"
        )
        result, records = quicksort(
            self.values,
            max_depth=16 if advanced else 12,
            leaf_size=1024 if advanced else 64,
            median_of_three=advanced,
        )
        graph = LaunchGraph()
        launch_of: dict[int, int] = {}
        seg_cycles = config.cycles_per_segment
        for k, rec in enumerate(records):
            if rec.is_leaf:
                if advanced:
                    # bitonic sort leaf: k log^2 k compares, one block
                    logk = max(1, int(np.ceil(np.log2(max(rec.size, 2)))))
                    work = rec.size * logk * logk * 2.0
                else:
                    # selection sort leaf: quadratic single-thread-block
                    work = rec.size * rec.size / 2.0
                mem = 2.0 * rec.size * 4 / config.mem_segment_bytes * seg_cycles * 4
                cycles = work / config.warp_throughput_per_cycle + mem
                bsize = 64
            else:
                # partition pass: stream the segment, scatter halves
                mem = 3.0 * rec.size * 4 / config.mem_segment_bytes * seg_cycles * 2
                cycles = rec.size * 4.0 / config.warp_throughput_per_cycle + mem
                bsize = 128
            costs = KernelCosts(
                block_cycles=np.array([max(cycles, 50.0)]),
                block_floor=np.array([max(cycles, 50.0)]),
            )
            if rec.parent < 0:
                launch = Launch(
                    name="qsort-root", block_size=bsize, costs=costs,
                )
            else:
                launch = Launch(
                    name="qsort-part" if not rec.is_leaf else "qsort-leaf",
                    block_size=bsize,
                    costs=costs,
                    parent=launch_of[rec.parent],
                    parent_block=0,
                    # SDK samples put left/right children in separate
                    # device streams so siblings overlap
                    device_stream=k % 2,
                )
            launch_of[k] = graph.add(launch)
        return graph, result

    # ------------------------------------------------------------------ run
    def run(self, variant: str, config: DeviceConfig = KEPLER_K20) -> SortRun:
        """Sort under one of the three Fig. 2 implementations."""
        if variant not in SORT_VARIANTS:
            raise WorkloadError(
                f"unknown sort variant {variant!r}; known: {SORT_VARIANTS}"
            )
        if variant == "mergesort":
            graph, result = self._mergesort_graph(config)
        else:
            graph, result = self._quicksort_graph(
                config, advanced=(variant == "quicksort-advanced")
            )
        exec_result = backend_for(config).submit(graph)
        metrics = profile(graph, exec_result, config)
        expected = np.sort(self.values)
        if not np.array_equal(result, expected):
            raise WorkloadError(f"{variant} produced an unsorted result")
        return SortRun(
            variant=variant,
            n=self.values.size,
            time_ms=exec_result.time_ms,
            kernel_calls=exec_result.n_launches,
            device_kernel_calls=exec_result.n_device_launches,
            metrics=metrics,
            result=result,
        )
