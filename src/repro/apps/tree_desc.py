"""Tree Descendants application (paper Fig. 3, Figs. 7).

Counts, for every node, the nodes in its subtree (itself included — the
paper initializes the descendants array to all 1s).  Runs under the three
recursive parallelization templates and reports speedup over the better
of the two serial CPU variants, as the paper's Fig. 7 does.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppRun
from repro.core.params import TemplateParams
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.registry import resolve
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.trees import best_serial_descendants
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.trees.metrics import subtree_sizes
from repro.trees.structure import Tree

__all__ = ["TreeDescendantsApp"]


class TreeDescendantsApp:
    """Tree descendants under flat / rec-naive / rec-hier templates."""

    name = "tree-descendants"
    kind = "descendants"

    def __init__(self, tree: Tree) -> None:
        self.tree = tree

    def compute(self) -> np.ndarray:
        """Descendant counts (template-invariant)."""
        return subtree_sizes(self.tree)

    def workload(self) -> RecursiveTreeWorkload:
        """The recursive workload descriptor."""
        return RecursiveTreeWorkload(self.tree, self.kind)

    def cpu_baseline(self, cpu: CPUConfig = XEON_E5_2620) -> float:
        """Serial time of the better CPU variant (ms)."""
        return cpu.time_ms(best_serial_descendants(self.tree).ops)

    def run(
        self,
        template: str = "rec-hier",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Execute under one recursive template."""
        tmpl_run = resolve(template, kind="tree").run(
            self.workload(), config, params or TemplateParams()
        )
        return AppRun(
            app=self.name,
            template=template,
            dataset=self.tree.name,
            result=self.compute(),
            gpu_time_ms=tmpl_run.time_ms,
            cpu_time_ms=self.cpu_baseline(cpu),
            metrics=tmpl_run.metrics,
            meta={"n_nodes": self.tree.n_nodes, "depth": self.tree.depth},
        )
