"""Sparse matrix-vector multiplication (SpMV).

"SpMV calculates the product of a sparse matrix and a dense vector [...]
Since the sparse matrix is represented in Compressed Sparse Row format,
the nested loop within the matrix multiplication algorithm is irregular."
(paper §III.A).  Per nonzero, the kernel streams the column index and the
value, gathers ``x[col]``, and accumulates into a register; the row result
is stored once per row.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppRun
from repro.core.params import TemplateParams
from repro.core.registry import resolve
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.reference import spmv_serial
from repro.errors import GraphError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.graphs.csr import CSRGraph

__all__ = ["SpMVApp"]


class SpMVApp:
    """CSR SpMV under any nested-loop parallelization template."""

    name = "spmv"

    def __init__(self, graph: CSRGraph, x: np.ndarray | None = None,
                 seed: int = 0) -> None:
        self.graph = graph
        if x is None:
            rng = np.random.default_rng(seed)
            x = rng.random(graph.n_nodes)
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (graph.n_nodes,):
            raise GraphError("x must have one entry per matrix row")
        self.x = x
        self._values = (
            graph.weights if graph.weights is not None
            else np.ones(graph.n_edges)
        )
        # graph and x are fixed per app instance, so the functional result,
        # the serial reference and the workload trace are all run-invariant
        self._result: np.ndarray | None = None
        self._serial = None
        self._workload: NestedLoopWorkload | None = None

    # ----------------------------------------------------------- functional
    def compute(self) -> np.ndarray:
        """y = A @ x, vectorized (template-invariant result)."""
        if self._result is None:
            y = np.zeros(self.graph.n_nodes)
            rows = np.repeat(
                np.arange(self.graph.n_nodes), self.graph.out_degrees
            )
            np.add.at(y, rows, self._values * self.x[self.graph.col_indices])
            self._result = y
        return self._result

    # ------------------------------------------------------------- workload
    def workload(self) -> NestedLoopWorkload:
        """The Fig. 1(a) trace of the SpMV loop nest (built once)."""
        if self._workload is not None:
            return self._workload
        g = self.graph
        nnz = g.n_edges
        edge_idx = np.arange(nnz, dtype=np.int64)
        # distinct arrays live at distinct (simulated) base addresses
        col_base = 0
        val_base = 4 * nnz + 256
        x_base = val_base + 8 * nnz + 256
        self._workload = NestedLoopWorkload(
            name=f"spmv({g.name})",
            trip_counts=g.out_degrees,
            streams=[
                AccessStream("col-index", col_base + edge_idx * 4, "load", 4),
                AccessStream("value", val_base + edge_idx * 8, "load", 8),
                AccessStream("x-gather", x_base + g.col_indices * 8, "load", 8),
            ],
            inner_insts=6.0,       # fma + index math + loop bookkeeping
            outer_insts=10.0,
            outer_load_bytes=8,    # row_offsets[i], row_offsets[i+1]
            outer_store_bytes=8,   # y[i]
        )
        return self._workload

    # ------------------------------------------------------------------ run
    def run(
        self,
        template: str = "baseline",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Execute SpMV under a template; returns timing + verified result."""
        params = params or TemplateParams()
        tmpl_run = resolve(template, kind="nested-loop").run(self.workload(), config, params)
        if self._serial is None:
            self._serial = spmv_serial(self.graph, self.x)
        serial = self._serial
        return AppRun(
            app=self.name,
            template=template,
            dataset=self.graph.name,
            result=self.compute(),
            gpu_time_ms=tmpl_run.time_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=tmpl_run.metrics,
            meta={"nnz": self.graph.n_edges,
                  "schedule": tmpl_run.schedule},
        )
