"""Betweenness centrality (Brandes, two phases).

"Our parallel implementation is based on [6] and operates in two phases.
First, it constructs the shortest paths tree using BFS (we consider
unweighted graphs); second, it computes the BC value by traversing the
shortest path tree.  Both phases present irregular nested loops and
scattered memory accesses." (paper §III.A).

Each phase is level-synchronous: one kernel per BFS level per source, an
outer loop over all nodes with a level mask.  Exact BC sums over all
sources; ``n_sources`` samples them for benchmark-scale runs (speedups
stay ratios over the same source set).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppRun, combine_rounds
from repro.core.params import TemplateParams
from repro.core.registry import resolve
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.cpu.costmodel import XEON_E5_2620, CPUConfig
from repro.cpu.reference import bc_serial
from repro.errors import GraphError
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.backends import backend_for
from repro.graphs.csr import CSRGraph, concat_ranges

__all__ = ["BCApp"]


class BCApp:
    """Betweenness centrality under any nested-loop template."""

    name = "bc"

    def __init__(self, graph: CSRGraph, n_sources: int | None = 8,
                 seed: int = 0) -> None:
        self.graph = graph
        if n_sources is None:
            self.sources = np.arange(graph.n_nodes, dtype=np.int64)
        else:
            if n_sources < 1:
                raise GraphError("n_sources must be >= 1")
            rng = np.random.default_rng(seed)
            n_sources = min(n_sources, graph.n_nodes)
            self.sources = rng.choice(graph.n_nodes, size=n_sources,
                                      replace=False).astype(np.int64)

    # ----------------------------------------------------------- functional
    def compute(self) -> np.ndarray:
        """BC scores over the configured sources (template-invariant)."""
        return bc_serial(self.graph, self.sources).result

    # -------------------------------------------------------------- phases
    def _source_levels(self, source: int):
        """Yield per-level frontiers of one source's BFS (forward order)."""
        g = self.graph
        dist = np.full(g.n_nodes, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            yield frontier
            degs = g.out_degrees[frontier]
            idx = concat_ranges(g.row_offsets[frontier], degs)
            if idx.size == 0:
                return
            tgt = g.col_indices[idx]
            new = np.unique(tgt[dist[tgt] == -1])
            if new.size == 0:
                return
            dist[new] = dist[frontier[0]] + 1
            frontier = new

    def _phase_workload(self, frontier: np.ndarray, phase: str) -> NestedLoopWorkload:
        """One level's trace: masked outer loop over all nodes."""
        g = self.graph
        trips = np.zeros(g.n_nodes, dtype=np.int64)
        trips[frontier] = g.out_degrees[frontier]
        degs = g.out_degrees[frontier]
        edge_idx = concat_ranges(g.row_offsets[frontier], degs)
        targets = g.col_indices[edge_idx]
        col_base = 0
        sigma_base = 4 * g.n_edges + 256
        delta_base = sigma_base + 8 * g.n_nodes + 256
        streams = [
            AccessStream("col-index", col_base + edge_idx * 4, "load", 4),
            AccessStream("sigma-gather", sigma_base + targets * 8, "load", 8),
        ]
        atomic = targets.copy()
        if phase == "backward":
            streams.append(
                AccessStream("delta-gather", delta_base + targets * 8,
                             "load", 8)
            )
        return NestedLoopWorkload(
            name=f"bc-{phase}({g.name})",
            trip_counts=trips,
            streams=streams,
            atomic_targets=atomic,
            inner_insts=8.0 if phase == "backward" else 6.0,
            outer_insts=8.0,
            outer_load_bytes=12,
        )

    # ------------------------------------------------------------------ run
    def run(
        self,
        template: str = "baseline",
        config: DeviceConfig = KEPLER_K20,
        params: TemplateParams | None = None,
        cpu: CPUConfig = XEON_E5_2620,
    ) -> AppRun:
        """Both phases over all configured sources under one template."""
        params = params or TemplateParams()
        tmpl = resolve(template, kind="nested-loop")
        executor = backend_for(config)
        runs = []
        for source in self.sources.tolist():
            levels = list(self._source_levels(source))
            for frontier in levels:                     # forward BFS
                runs.append(tmpl.run(
                    self._phase_workload(frontier, "forward"),
                    config, params, executor,
                ))
            for frontier in reversed(levels[1:]):       # dependency sweep
                runs.append(tmpl.run(
                    self._phase_workload(frontier, "backward"),
                    config, params, executor,
                ))
        total_ms, metrics = combine_rounds(runs)
        serial = bc_serial(self.graph, self.sources)
        return AppRun(
            app=self.name,
            template=template,
            dataset=self.graph.name,
            result=serial.result,
            gpu_time_ms=total_ms,
            cpu_time_ms=cpu.time_ms(serial.ops),
            metrics=metrics,
            meta={"n_sources": int(self.sources.size),
                  "kernels": len(runs)},
        )
