"""Figure 7: Tree Descendants on synthetic trees of depth 4.

Paper: (a) speedup of flat / rec-naive / rec-hier over the better serial
CPU variant, sweeping node outdegree at sparsity 0; (b) sweeping sparsity
at fixed outdegree; (c) profiling data (warp utilization, atomics,
nested kernel calls).

Expected shapes: rec-naive is far below 1x everywhere (many tiny nested
launches); flat saturates beyond moderate outdegrees (hot-root atomics);
rec-hier overtakes flat at large outdegrees and degrades as sparsity
grows (warp utilization drops).

Scaling note: the paper sweeps outdegree 32-512 — at depth 4, outdegree
512 means 135M nodes, so the default sweep uses scaled outdegrees with
identical tree shape semantics.
"""

from __future__ import annotations

from repro.apps.tree_desc import TreeDescendantsApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.trees.generator import generate_tree

TEMPLATES = ("flat", "rec-naive", "rec-hier")
DEPTH = 4


def outdegree_sweep(config: ExperimentConfig) -> list[int]:
    """Outdegrees scaled so the largest tree stays below ~1M nodes."""
    if config.scale >= 0.5:
        return [16, 32, 64, 96]
    return [8, 16, 32, 64]


SPARSITY_SWEEP = (0.0, 1.0, 2.0, 3.0, 4.0)


def _run_tree_experiment(app_cls, config: ExperimentConfig, tag: str):
    degrees = outdegree_sweep(config)
    speed_deg = ResultTable(
        title=f"{tag}a: speedup over best serial CPU (sparsity=0)",
        columns=["outdegree"] + list(TEMPLATES),
    )
    prof = ResultTable(
        title=f"{tag}c: profiling data",
        columns=["sweep", "value", "flat warp%", "flat atomics",
                 "naive warp%", "naive kcalls", "hier warp%", "hier kcalls"],
    )

    def profile_row(sweep: str, value, app):
        runs = {t: app.run(t, config.device) for t in TEMPLATES}
        speed = [runs[t].speedup for t in TEMPLATES]
        prof.add_row(
            sweep, value,
            round(runs["flat"].metrics.warp_execution_efficiency * 100, 1),
            runs["flat"].metrics.atomic_ops,
            round(runs["rec-naive"].metrics.warp_execution_efficiency * 100, 1),
            runs["rec-naive"].metrics.kernel_calls,
            round(runs["rec-hier"].metrics.warp_execution_efficiency * 100, 1),
            runs["rec-hier"].metrics.kernel_calls,
        )
        return speed

    for d in degrees:
        tree = generate_tree(DEPTH, d, sparsity=0.0, seed=config.seed)
        speed = profile_row("outdegree", d, app_cls(tree))
        speed_deg.add_row(d, *speed)

    top = degrees[-1]
    speed_sparse = ResultTable(
        title=f"{tag}b: speedup over best serial CPU (outdegree={top})",
        columns=["sparsity"] + list(TEMPLATES),
    )
    for s in SPARSITY_SWEEP:
        tree = generate_tree(DEPTH, top, sparsity=s, seed=config.seed)
        speed = profile_row("sparsity", s, app_cls(tree))
        speed_sparse.add_row(s, *speed)

    speed_deg.add_note(
        "paper shape: rec-naive << 1x; flat saturates with outdegree "
        "(atomics); rec-hier grows with outdegree and overtakes flat"
    )
    speed_sparse.add_note(
        "paper shape: flat stable vs sparsity; rec-hier degrades as the "
        "tree gets more irregular"
    )
    prof.add_note(
        "paper: flat atomics = node-ancestor pairs; naive kcalls = "
        "1 + internal nodes below root; hier kcalls = 1 + nodes with "
        "grandchildren"
    )
    return [speed_deg, speed_sparse, prof]


@register(
    id="fig7",
    title="Tree Descendants: speedups and profiling",
    paper_ref="Figure 7 (a-c)",
    description="Recursive templates on synthetic trees (descendants).",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    return _run_tree_experiment(TreeDescendantsApp, config, "fig7")
