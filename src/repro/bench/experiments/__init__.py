"""Experiment modules: importing this package registers every experiment."""

from repro.bench.experiments import (  # noqa: F401
    ablations,
    baselines,
    fig2_sort,
    fig4_spmv_blocksize,
    fig5_sssp,
    fig6_nested_loops,
    fig7_tree_descendants,
    fig8_tree_heights,
    fig9_recursive_bfs,
    service_throughput,
    table1_sssp_profile,
    table2_warp_efficiency,
)
