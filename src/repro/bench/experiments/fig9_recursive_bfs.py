"""Figure 9: recursive BFS slowdowns over recursive serial CPU.

Paper: random graphs of 50,000 nodes, out-degree uniform in a growing
range (1.6M-27M edges); y-axis is the *slowdown* of the GPU recursive
variants (naive / hierarchical, with and without one extra stream per
block) over the recursive serial CPU implementation.  Expected shapes:

* the flat GPU variant beats recursive serial CPU by 11-14x;
* both recursive GPU variants are catastrophically slower (the paper
  reports 700-14,000x);
* one extra stream per block helps the naive variant but not (or hurts)
  the hierarchical one.
"""

from __future__ import annotations

from repro.apps.bfs import BFSApp, RecursiveBFSApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.core.params import TemplateParams
from repro.bench.experiments.common import random_graph_for
from repro.cpu.costmodel import XEON_E5_2620
from repro.cpu.reference import bfs_recursive_serial

DEGREE_RANGES = ((16, 48), (32, 96), (64, 192), (128, 384))


@register(
    id="fig9",
    title="Recursive BFS: slowdown over recursive serial CPU",
    paper_ref="Figure 9",
    description="Naive/hierarchical recursive BFS, +- extra streams.",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    table = ResultTable(
        title="fig9: recursive BFS slowdown over recursive serial CPU",
        columns=["degree range", "edges", "flat speedup",
                 "naive", "naive+stream", "hier", "hier+stream"],
    )
    for rng_lo, rng_hi in DEGREE_RANGES:
        graph = random_graph_for(config, (rng_lo, rng_hi))
        cpu_rec_ms = XEON_E5_2620.time_ms(bfs_recursive_serial(graph).ops)
        flat = BFSApp(graph).run("baseline", config.device)
        rec = RecursiveBFSApp(graph)
        one = TemplateParams(streams_per_block=1)
        two = TemplateParams(streams_per_block=2)
        naive = rec.run("rec-naive", config.device, one)
        naive_s = rec.run("rec-naive", config.device, two)
        hier = rec.run("rec-hier", config.device, one)
        hier_s = rec.run("rec-hier", config.device, two)
        table.add_row(
            f"{rng_lo}-{rng_hi}",
            graph.n_edges,
            cpu_rec_ms / flat.gpu_time_ms,
            naive.gpu_time_ms / cpu_rec_ms,
            naive_s.gpu_time_ms / cpu_rec_ms,
            hier.gpu_time_ms / cpu_rec_ms,
            hier_s.gpu_time_ms / cpu_rec_ms,
        )
    table.add_note(
        "paper shape: flat 11-14x faster than recursive serial CPU; both "
        "recursive variants 700-14,000x slower; extra streams help naive, "
        "not hier"
    )
    table.add_note(
        f"graphs scaled to {config.scale:g}/0.15 of the paper's 50k nodes"
    )
    return [table]
