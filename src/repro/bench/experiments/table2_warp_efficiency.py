"""Table II: dbuf-shared warp execution efficiency vs lbTHRES.

Paper values:

    app        lb=32   lb=64   lb=256  lb=1024  baseline
    SSSP       75.6%   71.9%   45.3%   37.2%    35.6%
    BC         75.8%   56.7%   17.1%   10.8%    10.3%
    PageRank   91.5%   87.0%   63.4%   50.9%    50.8%
    SpMV       94.4%   82.3%   71.5%   51.5%    51.0%

Expected shape: warp efficiency falls monotonically toward the baseline
as lbTHRES grows (less work is moved to the block-mapped phase), and it
always improves on the baseline.
"""

from __future__ import annotations

from repro.apps.bc import BCApp
from repro.apps.pagerank import PageRankApp
from repro.apps.spmv import SpMVApp
from repro.apps.sssp import SSSPApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.common import citeseer_for, params_for, wiki_vote_for

LB_SWEEP = (32, 64, 256, 1024)


@register(
    id="table2",
    title="Warp execution efficiency of dbuf-shared vs lbTHRES",
    paper_ref="Table II",
    description="dbuf-shared warp efficiency per app and lbTHRES.",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    citeseer = citeseer_for(config)
    apps = {
        "SSSP": SSSPApp(citeseer),
        "BC": BCApp(wiki_vote_for(config), n_sources=4, seed=config.seed),
        "PageRank": PageRankApp(citeseer, n_iters=5),
        "SpMV": SpMVApp(citeseer, seed=config.seed),
    }
    table = ResultTable(
        title="table2: dbuf-shared warp execution efficiency [%]",
        columns=["app"] + [f"lb={lbt}" for lbt in LB_SWEEP] + ["baseline"],
    )
    for name, app in apps.items():
        row = [name]
        for lbt in LB_SWEEP:
            run_ = app.run("dbuf-shared", config.device, params_for(lbt))
            row.append(round(run_.metrics.warp_execution_efficiency * 100, 1))
        base = app.run("baseline", config.device)
        row.append(round(base.metrics.warp_execution_efficiency * 100, 1))
        table.add_row(*row)
    table.add_note(
        "paper shape: monotone decrease toward the baseline as lbTHRES "
        "grows; always above the baseline"
    )
    return [table]
