"""Shared helpers for the experiment modules."""

from __future__ import annotations

from repro.bench.registry import ExperimentConfig
from repro.core.params import TemplateParams
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import citeseer_like, uniform_random_graph, wiki_vote_like

__all__ = [
    "scaled",
    "citeseer_for",
    "wiki_vote_for",
    "random_graph_for",
    "params_for",
    "LB_SWEEP",
    "FIG6_TEMPLATES",
]

#: the lbTHRES sweep used by Figs. 5/6 and Table II
LB_SWEEP = (32, 64, 128, 256, 1024)

#: templates shown in Figs. 4/6 (dpar-naive is "not shown for readability")
FIG6_TEMPLATES = ("dual-queue", "dbuf-global", "dbuf-shared", "dpar-opt")


def scaled(full_value: int, config: ExperimentConfig, reference: float = 1.0,
           minimum: int = 1) -> int:
    """Scale a paper-sized quantity by ``config.scale / reference``."""
    return max(minimum, int(round(full_value * config.scale / reference)))


def citeseer_for(config: ExperimentConfig, weighted: bool = True) -> CSRGraph:
    """The CiteSeer-profile dataset at the experiment scale."""
    return citeseer_like(scale=config.scale, seed=config.seed, weighted=weighted)


def wiki_vote_for(config: ExperimentConfig) -> CSRGraph:
    """Wiki-Vote is small enough to always run at full size."""
    return wiki_vote_like(seed=config.seed)


def random_graph_for(config: ExperimentConfig,
                     degree_range: tuple[int, int]) -> CSRGraph:
    """Fig. 9's uniform random graph, node count scaled."""
    n = scaled(50_000, config, reference=0.15, minimum=2000)
    return uniform_random_graph(n, degree_range, seed=config.seed)


def params_for(lb_threshold: int, **kw) -> TemplateParams:
    """Template parameters with a given lbTHRES."""
    return TemplateParams(lb_threshold=lb_threshold, **kw)


def speedup_over(base_ms: float, time_ms: float) -> float:
    """Speedup of a variant over a baseline time."""
    return base_ms / time_ms if time_ms > 0 else float("inf")
