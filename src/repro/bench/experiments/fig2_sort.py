"""Figure 2: execution time of the three sort implementations.

Paper: Simple QuickSort and Advanced QuickSort (recursive, dynamic
parallelism) vs. a flat MergeSort kernel, arrays of 300k-2M elements,
y-axis log10.  Expected shape: MergeSort fastest at every size; Advanced
beats Simple.
"""

from __future__ import annotations

import numpy as np

from repro.apps.sort import SORT_VARIANTS, SortApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.common import scaled

#: the paper's array sizes
PAPER_SIZES = (300_000, 500_000, 1_000_000, 2_000_000)


@register(
    id="fig2",
    title="Sort execution time (Simple/Advanced QuickSort vs MergeSort)",
    paper_ref="Figure 2",
    description="Flat MergeSort beats both dynamic-parallelism QuickSorts.",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    table = ResultTable(
        title="fig2: sort execution time [ms]",
        columns=["elements", "quicksort-simple", "quicksort-advanced",
                 "mergesort"],
    )
    rng = np.random.default_rng(config.seed)
    for full_size in PAPER_SIZES:
        n = scaled(full_size, config, reference=0.15)
        values = rng.integers(0, 1 << 31, size=n)
        app = SortApp(values)
        times = {v: app.run(v, config.device).time_ms for v in SORT_VARIANTS}
        table.add_row(n, times["quicksort-simple"],
                      times["quicksort-advanced"], times["mergesort"])
    table.add_note(
        "paper shape: mergesort < advanced quicksort < simple quicksort "
        "at every size (log10 y-axis)"
    )
    table.add_note(
        f"array sizes scaled by {config.scale:g}/0.15 of the paper's "
        "300k-2M range"
    )
    return [table]
