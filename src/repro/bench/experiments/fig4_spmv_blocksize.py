"""Figure 4: SpMV speedup vs block-mapped block size, per lbTHRES.

Paper: SpMV on CiteSeer; block sizes on the x-axis for the block-mapped
code portions, one chart per lbTHRES in {64, 128, 192}.  Expected shape:
performance is largely insensitive to block size but driven by lbTHRES;
small blocks do better at small lbTHRES (blocks larger than lbTHRES waste
threads on iterations of size ~lbTHRES).

The sweep decomposes into independent (lbTHRES, block-size) cells plus the
baseline, registered as variants so ``repro-bench fig4 --jobs N`` fans the
cells out across worker processes.
"""

from __future__ import annotations

from repro.apps.spmv import SpMVApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.common import FIG6_TEMPLATES, citeseer_for, params_for

LB_SETTINGS = (64, 128, 192)
BLOCK_SIZES = (64, 128, 192, 256)

#: (scale, seed) -> SpMVApp; worker processes build the dataset once and
#: reuse it across the variants they are handed
_APP_CACHE: dict[tuple[float, int], SpMVApp] = {}


def _app_for(config: ExperimentConfig) -> SpMVApp:
    key = (config.scale, config.seed)
    app = _APP_CACHE.get(key)
    if app is None:
        app = SpMVApp(citeseer_for(config), seed=config.seed)
        _APP_CACHE[key] = app
    return app


def variants(config: ExperimentConfig) -> list:
    """The baseline plus one variant per (lbTHRES, block size) cell."""
    return [("base",)] + [
        ("cell", lbt, block) for lbt in LB_SETTINGS for block in BLOCK_SIZES
    ]


def run_variant(config: ExperimentConfig, key) -> tuple:
    """One independent piece: baseline time, or all templates of one cell."""
    app = _app_for(config)
    if key[0] == "base":
        return ("base", app.run("baseline", config.device).gpu_time_ms)
    _, lbt, block = key
    times = [
        app.run(tmpl, config.device, params_for(lbt, lb_block=block)).gpu_time_ms
        for tmpl in FIG6_TEMPLATES
    ]
    return ("cell", lbt, block, times)


def merge(config: ExperimentConfig, parts: list) -> list[ResultTable]:
    """Assemble the per-lbTHRES tables from the variant results."""
    base = next(p[1] for p in parts if p[0] == "base")
    cells = {(p[1], p[2]): p[3] for p in parts if p[0] == "cell"}
    tables = []
    for lbt in LB_SETTINGS:
        table = ResultTable(
            title=f"fig4: SpMV speedup over baseline (lbTHRES={lbt})",
            columns=["block size"] + list(FIG6_TEMPLATES),
        )
        for block in BLOCK_SIZES:
            table.add_row(*[block] + [base / t for t in cells[(lbt, block)]])
        table.add_note(
            "paper shape: performance insensitive to block size, dominated "
            "by lbTHRES; dpar-naive omitted (significantly slower)"
        )
        tables.append(table)
    return tables


@register(
    id="fig4",
    title="SpMV speedup vs block size under different lbTHRES",
    paper_ref="Figure 4 (a-c)",
    description="Block-size sensitivity of the load-balancing templates.",
    variants=variants,
    run_variant=run_variant,
    merge=merge,
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact's result tables (see module docstring)."""
    return merge(config, [run_variant(config, key) for key in variants(config)])
