"""Figure 4: SpMV speedup vs block-mapped block size, per lbTHRES.

Paper: SpMV on CiteSeer; block sizes on the x-axis for the block-mapped
code portions, one chart per lbTHRES in {64, 128, 192}.  Expected shape:
performance is largely insensitive to block size but driven by lbTHRES;
small blocks do better at small lbTHRES (blocks larger than lbTHRES waste
threads on iterations of size ~lbTHRES).
"""

from __future__ import annotations

from repro.apps.spmv import SpMVApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.common import FIG6_TEMPLATES, citeseer_for, params_for

LB_SETTINGS = (64, 128, 192)
BLOCK_SIZES = (64, 128, 192, 256)


@register(
    id="fig4",
    title="SpMV speedup vs block size under different lbTHRES",
    paper_ref="Figure 4 (a-c)",
    description="Block-size sensitivity of the load-balancing templates.",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    app = SpMVApp(citeseer_for(config), seed=config.seed)
    base = app.run("baseline", config.device).gpu_time_ms
    tables = []
    for lbt in LB_SETTINGS:
        table = ResultTable(
            title=f"fig4: SpMV speedup over baseline (lbTHRES={lbt})",
            columns=["block size"] + list(FIG6_TEMPLATES),
        )
        for block in BLOCK_SIZES:
            row = [block]
            for tmpl in FIG6_TEMPLATES:
                run_ = app.run(
                    tmpl, config.device,
                    params_for(lbt, lb_block=block),
                )
                row.append(base / run_.gpu_time_ms)
            table.add_row(*row)
        table.add_note(
            "paper shape: performance insensitive to block size, dominated "
            "by lbTHRES; dpar-naive omitted (significantly slower)"
        )
        tables.append(table)
    return tables
