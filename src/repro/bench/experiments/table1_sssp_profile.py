"""Table I: SSSP profiling data at lbTHRES = 32.

Paper values (Nvidia Visual Profiler, CiteSeer):

    variant      warp eff   gld eff   gst eff
    baseline       35.6%     15.8%      3.2%
    dual-queue     74.9%     79.1%      4.8%
    dbuf-shared    75.7%     94.3%     50.4%
    dbuf-global    72.3%     89.1%      8.5%
    dpar-naive     25.3%     45.5%     16.3%
    dpar-opt       70.2%     63.2%     10.9%

Expected shape: every template but dpar-naive raises warp efficiency over
the baseline; dbuf-shared posts the best store efficiency thanks to its
shared-memory staging.
"""

from __future__ import annotations

from repro.apps.sssp import SSSPApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.common import citeseer_for, params_for

VARIANTS = ("baseline", "dual-queue", "dbuf-shared", "dbuf-global",
            "dpar-naive", "dpar-opt")


@register(
    id="table1",
    title="SSSP profiling data (lbTHRES=32)",
    paper_ref="Table I",
    description="Warp/gld/gst efficiency of every template on SSSP.",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    app = SSSPApp(citeseer_for(config))
    table = ResultTable(
        title="table1: SSSP profiling (lbTHRES=32)",
        columns=["variant", "warp efficiency", "gld efficiency",
                 "gst efficiency"],
    )
    for variant in VARIANTS:
        run_ = app.run(variant, config.device, params_for(32))
        m = run_.metrics
        table.add_row(
            variant,
            round(m.warp_execution_efficiency * 100, 1),
            round(m.gld_efficiency * 100, 1),
            round(m.gst_efficiency * 100, 1),
        )
    table.add_note(
        "paper: baseline 35.6/15.8/3.2; dbuf-shared 75.7/94.3/50.4; "
        "dpar-naive is the only variant below baseline warp efficiency"
    )
    return [table]
