"""Baseline GPU speedups over serial CPU (paper §III.B opening).

"The baseline GPU implementations achieve the following speedups over
serial CPU code: 8.2x (SSSP), 2.5x (BC), 15.8x (PageRank) and 2.4x
(SpMV)."
"""

from __future__ import annotations

from repro.apps.bc import BCApp
from repro.apps.pagerank import PageRankApp
from repro.apps.spmv import SpMVApp
from repro.apps.sssp import SSSPApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.common import citeseer_for, wiki_vote_for

PAPER = {"SSSP": 8.2, "BC": 2.5, "PageRank": 15.8, "SpMV": 2.4}


@register(
    id="baselines",
    title="Baseline GPU speedups over serial CPU",
    paper_ref="Section III.B (text)",
    description="Thread-mapped baselines vs the serial references.",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    citeseer = citeseer_for(config)
    apps = {
        "SSSP": SSSPApp(citeseer),
        "BC": BCApp(wiki_vote_for(config), n_sources=4, seed=config.seed),
        "PageRank": PageRankApp(citeseer, n_iters=20),
        "SpMV": SpMVApp(citeseer, seed=config.seed),
    }
    table = ResultTable(
        title="baselines: thread-mapped GPU speedup over serial CPU",
        columns=["app", "measured", "paper"],
    )
    for name, app in apps.items():
        run_ = app.run("baseline", config.device)
        table.add_row(name, run_.speedup, PAPER[name])
    table.add_note("absolute speedups depend on the calibrated cost models; "
                   "orderings and magnitudes should track the paper column")
    return [table]
