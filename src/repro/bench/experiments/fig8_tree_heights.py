"""Figure 8: Tree Heights on the same synthetic trees as Fig. 7.

Same sweeps and expected shapes as Tree Descendants, with the max
reduction instead of the sum; the paper's Fig. 8 numbers track Fig. 7
closely, which this experiment reproduces by construction.
"""

from __future__ import annotations

from repro.apps.tree_height import TreeHeightsApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.fig7_tree_descendants import _run_tree_experiment


@register(
    id="fig8",
    title="Tree Heights: speedups and profiling",
    paper_ref="Figure 8 (a-c)",
    description="Recursive templates on synthetic trees (heights).",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    return _run_tree_experiment(TreeHeightsApp, config, "fig8")
