"""Ablation studies: which modelled mechanisms carry the paper's results.

The reproduction's conclusions should follow from its *mechanisms*, not
from tuned constants.  Each ablation disables or sweeps one mechanism and
shows which paper finding it carries:

* **launch-overhead sweep** — scale the grid-management unit's nested
  launch throughput: dpar-naive's catastrophic cost must come from launch
  machinery (it recovers as launches get cheaper), while dbuf-shared must
  not care at all.
* **dataset-locality sweep** — regenerate the CiteSeer profile with and
  without target-id locality: the block-mapped phases' load efficiency
  (Table I's high gld numbers) must come from the data's locality, not
  from the template.
* **latency-hiding ablation** — give single-warp kernels full latency
  hiding: dpar-naive's penalty shrinks, showing how much of it is the
  tiny-grid memory-latency exposure vs. launch machinery.
* **device sweep** — run the same workload on K20 / K40 / Fermi: the
  delayed buffers deliver load balancing even where dynamic parallelism
  does not exist (the paper's motivation for them).
"""

from __future__ import annotations

import numpy as np

from repro.apps.spmv import SpMVApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.common import citeseer_for, params_for
from repro.gpusim.config import FERMI_C2050, KEPLER_K20, KEPLER_K40
from repro.graphs.generators import degree_sequence_graph, lognormal_degrees


@register(
    id="ablations",
    title="Mechanism ablations (launch overhead, locality, latency, device)",
    paper_ref="DESIGN.md §5 / §7",
    description="Shows which modelled mechanism carries each conclusion.",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    app = SpMVApp(citeseer_for(config), seed=config.seed)
    params = params_for(32)

    # ---------------------------------------------- 1. launch-overhead sweep
    launch_tbl = ResultTable(
        title="ablation: GMU launch throughput vs dpar speedups",
        columns=["launches/us", "dpar-naive", "dpar-opt", "dbuf-shared"],
    )
    for thr in (0.1, 0.5, 2.0, 10.0):
        device = KEPLER_K20.replace(device_launch_throughput_per_us=thr)
        base = app.run("baseline", device).gpu_time_ms
        row = [thr]
        for tmpl in ("dpar-naive", "dpar-opt", "dbuf-shared"):
            row.append(base / app.run(tmpl, device, params).gpu_time_ms)
        launch_tbl.add_row(*row)
    launch_tbl.add_note(
        "dpar-naive recovers as nested launches get cheaper; dbuf-shared "
        "is launch-machinery-free and must stay flat"
    )

    # ---------------------------------------------- 2. dataset-locality sweep
    locality_tbl = ResultTable(
        title="ablation: dataset locality vs load efficiency (dbuf-shared)",
        columns=["locality", "gld efficiency %", "speedup over baseline"],
    )
    n = max(2000, int(434_000 * config.scale))
    degrees = lognormal_degrees(n, 73.9, 1188, 1, sigma=1.0, seed=config.seed)
    for locality in (0.0, 0.3, 0.6, 0.9):
        graph = degree_sequence_graph(
            degrees, seed=config.seed + 1, locality=locality,
            name=f"citeseer-loc{locality:g}",
        )
        rng = np.random.default_rng(config.seed + 2)
        graph.weights = rng.integers(1, 11, size=graph.n_edges).astype(float)
        local_app = SpMVApp(graph, seed=config.seed)
        base = local_app.run("baseline", config.device).gpu_time_ms
        run_ = local_app.run("dbuf-shared", config.device, params)
        locality_tbl.add_row(
            locality,
            round(run_.metrics.gld_efficiency * 100, 1),
            base / run_.gpu_time_ms,
        )
    locality_tbl.add_note(
        "block-mapped gather coalescing (Table I's high gld) requires the "
        "dataset's id locality; the divergence fix alone persists at 0.0"
    )

    # ---------------------------------------------- 3. latency-hiding ablation
    latency_tbl = ResultTable(
        title="ablation: tiny-grid latency exposure (absolute times, ms)",
        columns=["model", "baseline", "dbuf-shared", "dpar-naive"],
    )
    for label, device in (
        ("latency exposed (default)", KEPLER_K20),
        ("latency fully hidden",
         KEPLER_K20.replace(memory_parallelism_per_warp=1000.0)),
    ):
        latency_tbl.add_row(
            label,
            app.run("baseline", device).gpu_time_ms,
            app.run("dbuf-shared", device, params).gpu_time_ms,
            app.run("dpar-naive", device, params).gpu_time_ms,
        )
    latency_tbl.add_note(
        "hiding latency speeds up the memory-bound kernels (baseline, "
        "dbuf) but barely moves dpar-naive: its cost is launch machinery, "
        "and part of each child's remaining time is the latency its "
        "2-warp grid cannot hide"
    )

    # ------------------------------------------------------- 4. device sweep
    device_tbl = ResultTable(
        title="ablation: devices (dbuf works without dynamic parallelism)",
        columns=["device", "dbuf-shared speedup", "dpar-opt speedup"],
    )
    for device in (KEPLER_K20, KEPLER_K40, FERMI_C2050):
        base = app.run("baseline", device).gpu_time_ms
        dbuf = base / app.run("dbuf-shared", device, params).gpu_time_ms
        try:
            dpar = base / app.run("dpar-opt", device, params).gpu_time_ms
            dpar_cell: object = round(dpar, 3)
        except Exception:
            dpar_cell = "unsupported"
        device_tbl.add_row(device.name, dbuf, dpar_cell)
    device_tbl.add_note(
        "the paper's motivation for the delayed buffers: load balancing "
        "'also for devices that do not support nested kernel invocations'"
    )
    return [launch_tbl, locality_tbl, latency_tbl, device_tbl]
