"""Serving-layer throughput: micro-batched service vs per-request runs.

Not a paper artifact — a harness experiment (like ``baselines``) measuring
the request-level analogue of the paper's batching story: a
fingerprint-heavy closed-loop load served by :mod:`repro.service` against
the same mix pushed one ``repro.run`` at a time.  The standalone
``benchmarks/bench_service_throughput.py`` records the full-size
acceptance run; this registry entry keeps a scaled version one
``python -m repro.bench service`` away.
"""

from __future__ import annotations

from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable


@register(
    "service",
    title="Serving-layer throughput (micro-batched vs per-request)",
    paper_ref="serving layer",
    description="Closed-loop fingerprint-heavy load through repro.service "
                "vs sequential repro.run; throughput and latency "
                "percentiles.",
)
def run_service_throughput(config: ExperimentConfig) -> list[ResultTable]:
    from repro.service.handle import serve
    from repro.service.loadgen import (
        build_request_mix,
        mix_profile,
        run_closed_loop,
        run_unbatched,
    )

    n_requests = max(40, int(2400 * config.scale))
    outer_size = max(500, int(120_000 * config.scale))
    mix = build_request_mix(
        n_requests, outer_size=outer_size, seed=config.seed,
    )
    unbatched = run_unbatched(mix, device=config.device)
    with serve(
        device=config.device, max_batch=32, batch_window_s=0.002,
    ) as svc:
        batched = run_closed_loop(svc, mix, clients=16)
        stats = svc.stats()

    table = ResultTable(
        title="Serving throughput, closed-loop fingerprint-heavy mix",
        columns=["mode", "requests", "wall_s", "throughput_rps",
                 "p50_ms", "p95_ms", "p99_ms", "mean_batch"],
    )
    table.add_row(
        "per-request", unbatched["requests"], unbatched["wall_s"],
        unbatched["throughput_rps"], unbatched["latency_ms"]["p50"],
        unbatched["latency_ms"]["p95"], unbatched["latency_ms"]["p99"], 1.0,
    )
    table.add_row(
        "micro-batched", batched["requests"], batched["wall_s"],
        batched["throughput_rps"], batched["latency_ms"]["p50"],
        batched["latency_ms"]["p95"], batched["latency_ms"]["p99"],
        batched["mean_batch"],
    )
    profile = mix_profile(mix)
    table.add_note(
        f"mix: {profile['distinct']} identities over "
        f"{profile['requests']} requests, hottest "
        f"{profile['hottest_share']:.0%}; plan-cache hit rate "
        f"{stats['plan_cache']['hit_rate']:.0%}, "
        f"{stats['batching']['coalesced_requests']} requests coalesced"
    )
    table.add_note(
        "full-size acceptance record: benchmarks/bench_service_throughput.py "
        "-> BENCH_service_throughput.json"
    )
    return [table]
