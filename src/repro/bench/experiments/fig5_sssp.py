"""Figure 5: SSSP speedup of the five load-balancing templates.

Paper: SSSP on CiteSeer, speedup of each code variant over the baseline
thread-mapped implementation, with the number of nested kernel calls of
the dynamic-parallelism variants printed on the bars.  Expected shape:
all load-balancing variants except dpar-naive beat the baseline; the
delayed-buffer and dpar-opt variants win; speedup shrinks as lbTHRES
grows; nothing improves below lbTHRES = 32 (the warp size).
"""

from __future__ import annotations

from repro.apps.sssp import SSSPApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.common import citeseer_for, params_for

TEMPLATES = ("dual-queue", "dbuf-global", "dbuf-shared", "dpar-naive", "dpar-opt")
LB_SWEEP = (32, 64, 128, 256)


@register(
    id="fig5",
    title="SSSP speedups of the load-balancing templates",
    paper_ref="Figure 5",
    description="All templates vs the thread-mapped baseline on CiteSeer.",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    app = SSSPApp(citeseer_for(config))
    base = app.run("baseline", config.device)
    speedups = ResultTable(
        title="fig5: SSSP speedup over baseline",
        columns=["lbTHRES"] + list(TEMPLATES),
    )
    kcalls = ResultTable(
        title="fig5: nested kernel calls (dynamic-parallelism variants)",
        columns=["lbTHRES", "dpar-naive", "dpar-opt"],
    )
    for lbt in LB_SWEEP:
        row = [lbt]
        calls = {}
        for tmpl in TEMPLATES:
            run_ = app.run(tmpl, config.device, params_for(lbt))
            row.append(base.gpu_time_ms / run_.gpu_time_ms)
            if tmpl.startswith("dpar"):
                calls[tmpl] = run_.metrics.device_kernel_calls
        speedups.add_row(*row)
        kcalls.add_row(lbt, calls["dpar-naive"], calls["dpar-opt"])
    speedups.add_note(
        "paper shape: 2-6x for dual-queue/dbuf/dpar-opt, decreasing with "
        "lbTHRES; dpar-naive consistently below 1.0"
    )
    speedups.add_note(
        f"baseline GPU time {base.gpu_time_ms:.3f} ms over "
        f"{base.meta['rounds']} relaxation rounds; baseline speedup over "
        f"serial CPU {base.speedup:.1f}x (paper: 8.2x)"
    )
    return [speedups, kcalls]
