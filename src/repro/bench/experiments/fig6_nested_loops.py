"""Figure 6: BC / PageRank / SpMV speedups vs lbTHRES.

Paper: the four readable load-balancing templates swept over lbTHRES,
speedup over the thread-mapped baseline; BC runs on Wiki-Vote, PageRank
and SpMV on CiteSeer.  Expected shape: speedup decreases with lbTHRES;
dual-queue wins only on BC (small dataset — its queue-construction cost
is amortized); dbuf-shared loses to dbuf-global at small lbTHRES and
catches up at lbTHRES >= 128.
"""

from __future__ import annotations

from repro.apps.bc import BCApp
from repro.apps.pagerank import PageRankApp
from repro.apps.spmv import SpMVApp
from repro.bench.registry import ExperimentConfig, register
from repro.bench.table import ResultTable
from repro.bench.experiments.common import (
    FIG6_TEMPLATES,
    citeseer_for,
    params_for,
    wiki_vote_for,
)

LB_SWEEP = (32, 64, 128, 256, 1024)


def _sweep(app, config: ExperimentConfig, title: str) -> ResultTable:
    base = app.run("baseline", config.device)
    table = ResultTable(
        title=title,
        columns=["lbTHRES"] + list(FIG6_TEMPLATES),
    )
    for lbt in LB_SWEEP:
        row = [lbt]
        for tmpl in FIG6_TEMPLATES:
            run_ = app.run(tmpl, config.device, params_for(lbt))
            row.append(base.gpu_time_ms / run_.gpu_time_ms)
        table.add_row(*row)
    table.add_note(
        f"baseline speedup over serial CPU: {base.speedup:.1f}x"
    )
    return table


@register(
    id="fig6",
    title="BC / PageRank / SpMV speedups vs lbTHRES",
    paper_ref="Figure 6 (a-c)",
    description="lbTHRES sweep of the load-balancing templates per app.",
)
def run(config: ExperimentConfig) -> list[ResultTable]:
    """Regenerate this artifact\'s result tables (see module docstring)."""
    bc = _sweep(
        BCApp(wiki_vote_for(config), n_sources=4, seed=config.seed),
        config, "fig6a: BC speedup over baseline (Wiki-Vote)",
    )
    bc.add_note("paper shape: dual-queue wins only here (small dataset)")
    pr = _sweep(
        PageRankApp(citeseer_for(config), n_iters=20),
        config, "fig6b: PageRank speedup over baseline (CiteSeer)",
    )
    sp = _sweep(
        SpMVApp(citeseer_for(config), seed=config.seed),
        config, "fig6c: SpMV speedup over baseline (CiteSeer)",
    )
    for t in (pr, sp):
        t.add_note(
            "paper shape: dual-queue's construction overhead shows on the "
            "large dataset; dbuf-global > dbuf-shared at small lbTHRES"
        )
    return [bc, pr, sp]
