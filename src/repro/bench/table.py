"""Result tables: the rows/series the paper's figures and tables report.

Each experiment produces one or more :class:`ResultTable` objects whose
columns match the corresponding paper artifact (e.g. Fig. 5's bars become
rows of speedups per lbTHRES).  Tables render as aligned ASCII and export
to CSV/JSON for downstream plotting.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ExperimentError

__all__ = ["ResultTable"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ResultTable:
    """A labelled table of experiment results."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ExperimentError(
                f"row has {len(values)} values, table {self.title!r} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-form note (paper expectation, scaling caveat)."""
        self.notes.append(note)

    def column(self, name: str) -> list:
        """All values of one column."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ExperimentError(
                f"table {self.title!r} has no column {name!r}"
            ) from None
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        """Render as an aligned ASCII table with title and notes."""
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        out.write(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        out.write("\n")
        out.write("-+-".join("-" * w for w in widths))
        out.write("\n")
        for row in cells:
            out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
            out.write("\n")
        for note in self.notes:
            out.write(f"  note: {note}\n")
        return out.getvalue()

    def to_csv(self, path: str | Path) -> None:
        """Write the table as CSV (notes become # comments)."""
        with open(path, "w", newline="") as fh:
            for note in self.notes:
                fh.write(f"# {note}\n")
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            writer.writerows(self.rows)

    def to_json(self) -> str:
        """Serialize the table as a JSON document."""
        return json.dumps({
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            title=data["title"],
            columns=data["columns"],
            rows=data["rows"],
            notes=data.get("notes", []),
        )
