"""``python -m repro.bench`` entry point."""

import sys

from repro.bench.runner import main

sys.exit(main())
