"""``repro.bench`` — experiment registry regenerating every paper artifact."""

from repro.bench.registry import (
    EXPERIMENTS,
    Experiment,
    ExperimentConfig,
    all_experiments,
    get_experiment,
    register,
    run_experiment,
)
from repro.bench.plots import ascii_chart, plottable
from repro.bench.table import ResultTable

__all__ = [
    "ResultTable", "Experiment", "ExperimentConfig", "EXPERIMENTS",
    "register", "get_experiment", "run_experiment", "all_experiments",
    "ascii_chart", "plottable",
]
