"""Experiment registry: one entry per paper table/figure.

Experiments are plain functions ``(config) -> list[ResultTable]``
registered under the ids used throughout DESIGN.md and EXPERIMENTS.md
(``fig2`` ... ``fig9``, ``table1``, ``table2``, ``baselines``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.table import ResultTable
from repro.errors import ExperimentError
from repro.gpusim.config import KEPLER_K20, DeviceConfig

__all__ = ["ExperimentConfig", "Experiment", "EXPERIMENTS", "register", "get_experiment", "run_experiment"]


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``scale`` trades run time for dataset size (1.0 = closest to the
    paper; the default keeps a full sweep laptop-sized).  Experiments
    document per-id what scale changes.
    """

    scale: float = 0.05
    seed: int = 0
    device: DeviceConfig = field(default_factory=lambda: KEPLER_K20)

    def __post_init__(self) -> None:
        if not (0 < self.scale <= 1.0):
            raise ExperimentError("scale must be in (0, 1]")


@dataclass
class Experiment:
    """One reproducible paper artifact."""

    id: str
    title: str
    paper_ref: str
    description: str
    runner: Callable[[ExperimentConfig], list[ResultTable]]

    def run(self, config: ExperimentConfig | None = None) -> list[ResultTable]:
        """Execute and return the result tables."""
        return self.runner(config or ExperimentConfig())


EXPERIMENTS: dict[str, Experiment] = {}


def register(id: str, title: str, paper_ref: str, description: str):
    """Decorator registering an experiment runner under ``id``."""

    def wrap(fn: Callable[[ExperimentConfig], list[ResultTable]]):
        if id in EXPERIMENTS:
            raise ExperimentError(f"experiment {id!r} registered twice")
        EXPERIMENTS[id] = Experiment(
            id=id, title=title, paper_ref=paper_ref,
            description=description, runner=fn,
        )
        return fn

    return wrap


def get_experiment(id: str) -> Experiment:
    """Look up an experiment; importing the experiment package lazily."""
    _ensure_loaded()
    try:
        return EXPERIMENTS[id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(f"unknown experiment {id!r}; known: {known}") from None


def run_experiment(id: str, config: ExperimentConfig | None = None) -> list[ResultTable]:
    """Convenience: look up + run."""
    return get_experiment(id).run(config)


def all_experiments() -> dict[str, Experiment]:
    """The full registry (loads experiment modules on first use)."""
    _ensure_loaded()
    return dict(EXPERIMENTS)


def _ensure_loaded() -> None:
    import repro.bench.experiments  # noqa: F401  (registers on import)
