"""Experiment registry: one entry per paper table/figure.

Experiments are plain functions ``(config) -> list[ResultTable]``
registered under the ids used throughout DESIGN.md and EXPERIMENTS.md
(``fig2`` ... ``fig9``, ``table1``, ``table2``, ``baselines``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bench.table import ResultTable
from repro.errors import ExperimentError
from repro.gpusim.config import KEPLER_K20, DeviceConfig

__all__ = ["ExperimentConfig", "Experiment", "EXPERIMENTS", "register", "get_experiment", "run_experiment"]


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``scale`` trades run time for dataset size (1.0 = closest to the
    paper; the default keeps a full sweep laptop-sized).  Experiments
    document per-id what scale changes.
    """

    scale: float = 0.05
    seed: int = 0
    device: DeviceConfig = field(default_factory=lambda: KEPLER_K20)

    def __post_init__(self) -> None:
        if not (0 < self.scale <= 1.0):
            raise ExperimentError("scale must be in (0, 1]")


@dataclass
class Experiment:
    """One reproducible paper artifact.

    Experiments that decompose into independent pieces of work (a sweep's
    cells, typically) may additionally register ``variants(config)`` — the
    list of picklable work keys — with ``run_variant(config, key)`` doing
    one piece and ``merge(config, parts)`` assembling the tables from the
    parts in ``variants`` order.  The CLI runs variants across a process
    pool under ``--jobs N``; ``run()`` executes them in order, so serial
    results are bit-identical to parallel ones.
    """

    id: str
    title: str
    paper_ref: str
    description: str
    runner: Callable[[ExperimentConfig], list[ResultTable]]
    variants: Callable[[ExperimentConfig], list[Any]] | None = None
    run_variant: Callable[[ExperimentConfig, Any], Any] | None = None
    merge: Callable[[ExperimentConfig, list[Any]], list[ResultTable]] | None = None

    @property
    def splittable(self) -> bool:
        """Whether the experiment decomposes into independent variants."""
        return self.variants is not None

    def run(self, config: ExperimentConfig | None = None) -> list[ResultTable]:
        """Execute and return the result tables."""
        config = config or ExperimentConfig()
        if self.splittable:
            parts = [self.run_variant(config, key) for key in self.variants(config)]
            return self.merge(config, parts)
        return self.runner(config)


EXPERIMENTS: dict[str, Experiment] = {}


def register(
    id: str,
    title: str,
    paper_ref: str,
    description: str,
    variants: Callable[[ExperimentConfig], list[Any]] | None = None,
    run_variant: Callable[[ExperimentConfig, Any], Any] | None = None,
    merge: Callable[[ExperimentConfig, list[Any]], list[ResultTable]] | None = None,
):
    """Decorator registering an experiment runner under ``id``.

    ``variants``/``run_variant``/``merge`` (all three or none) mark the
    experiment as splittable for the process-parallel runner.
    """
    split_args = (variants, run_variant, merge)
    if any(a is not None for a in split_args) and None in split_args:
        raise ExperimentError(
            f"experiment {id!r}: variants, run_variant and merge must be "
            "registered together"
        )

    def wrap(fn: Callable[[ExperimentConfig], list[ResultTable]]):
        if id in EXPERIMENTS:
            raise ExperimentError(f"experiment {id!r} registered twice")
        EXPERIMENTS[id] = Experiment(
            id=id, title=title, paper_ref=paper_ref,
            description=description, runner=fn,
            variants=variants, run_variant=run_variant, merge=merge,
        )
        return fn

    return wrap


def get_experiment(id: str) -> Experiment:
    """Look up an experiment; importing the experiment package lazily."""
    _ensure_loaded()
    try:
        return EXPERIMENTS[id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(f"unknown experiment {id!r}; known: {known}") from None


def run_experiment(id: str, config: ExperimentConfig | None = None) -> list[ResultTable]:
    """Convenience: look up + run."""
    return get_experiment(id).run(config)


def all_experiments() -> dict[str, Experiment]:
    """The full registry (loads experiment modules on first use)."""
    _ensure_loaded()
    return dict(EXPERIMENTS)


def _ensure_loaded() -> None:
    import repro.bench.experiments  # noqa: F401  (registers on import)
