"""Terminal plots: render ResultTables as ASCII charts.

The paper's artifacts are mostly *figures*; `python -m repro.bench
<id> --plot` renders each numeric table as a multi-series ASCII chart so
trends (speedup vs lbTHRES, time vs size) are visible without leaving the
terminal.  CSV/JSON exports remain the machine-readable path.
"""

from __future__ import annotations

import math

from repro.bench.table import ResultTable
from repro.errors import ExperimentError

__all__ = ["ascii_chart", "plottable"]

#: series markers, assigned in column order
_MARKS = "o+x*#@%&"


def plottable(table: ResultTable) -> bool:
    """A table is chartable if it has >= 2 rows and >= 1 numeric series."""
    if len(table.rows) < 2 or len(table.columns) < 2:
        return False
    return any(
        all(isinstance(row[c], (int, float)) for row in table.rows)
        for c in range(1, len(table.columns))
    )


def ascii_chart(
    table: ResultTable,
    height: int = 12,
    width: int = 60,
    log_y: bool = False,
) -> str:
    """Render a table as an ASCII line/point chart.

    The first column provides x labels; every numeric column becomes a
    series.  ``log_y`` uses a log10 axis (the paper's Fig. 2/9 style).
    """
    if height < 4 or width < 20:
        raise ExperimentError("chart must be at least 4x20 characters")
    if not plottable(table):
        raise ExperimentError(f"table {table.title!r} is not plottable")

    series: dict[str, list[float]] = {}
    for c in range(1, len(table.columns)):
        values = [row[c] for row in table.rows]
        if all(isinstance(v, (int, float)) for v in values):
            series[table.columns[c]] = [float(v) for v in values]
    n_points = len(table.rows)

    flat = [v for vals in series.values() for v in vals]
    if log_y:
        flat = [v for v in flat if v > 0]
        if not flat:
            raise ExperimentError("log axis needs positive values")
        lo, hi = math.log10(min(flat)), math.log10(max(flat))
    else:
        lo, hi = min(flat), max(flat)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    def y_of(value: float) -> int | None:
        if log_y:
            if value <= 0:
                return None
            value = math.log10(value)
        frac = (value - lo) / (hi - lo)
        return int(round((height - 1) * (1.0 - frac)))

    grid = [[" "] * width for _ in range(height)]
    xs = [
        int(round(i * (width - 1) / max(n_points - 1, 1)))
        for i in range(n_points)
    ]
    for s_idx, (name, values) in enumerate(series.items()):
        mark = _MARKS[s_idx % len(_MARKS)]
        for i, v in enumerate(values):
            y = y_of(v)
            if y is not None:
                grid[y][xs[i]] = mark

    def fmt_axis(v: float) -> str:
        if log_y:
            v = 10 ** v
        if abs(v) >= 100:
            return f"{v:,.0f}"
        return f"{v:.2f}"

    top_label = fmt_axis(hi)
    bottom_label = fmt_axis(lo)
    margin = max(len(top_label), len(bottom_label)) + 1
    lines = [f"{table.title}" + ("  [log10 y]" if log_y else "")]
    for y in range(height):
        if y == 0:
            label = top_label.rjust(margin)
        elif y == height - 1:
            label = bottom_label.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label}|{''.join(grid[y])}")
    x_labels = [str(row[0]) for row in table.rows]
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    label_line = [" "] * (width + margin + 1)
    for i, x in enumerate(xs):
        text = x_labels[i]
        start = min(x + margin + 1, width + margin + 1 - len(text))
        for k, ch in enumerate(text):
            if 0 <= start + k < len(label_line):
                label_line[start + k] = ch
    lines.append("".join(label_line).rstrip())
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * margin} {legend}")
    return "\n".join(lines) + "\n"
