"""Command-line benchmark runner.

Usage::

    python -m repro.bench --list
    python -m repro.bench fig5
    python -m repro.bench fig5 fig6 --scale 0.05 --out results/
    python -m repro.bench all --scale 0.02

(also installed as the ``repro-bench`` console script.)
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.registry import (
    ExperimentConfig,
    all_experiments,
    get_experiment,
)
from repro.gpusim.config import preset

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures on the "
                    "simulated device.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (fig2..fig9, table1, table2, baselines) or 'all'",
    )
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale vs the paper (default 0.05)")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument("--device", default="k20",
                        help="device preset: k20 (default), k40, c2050")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write CSV/JSON results into")
    parser.add_argument("--plot", action="store_true",
                        help="render numeric tables as ASCII charts")
    parser.add_argument("--log-y", action="store_true",
                        help="log10 y-axis for --plot (Fig. 2/9 style)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    registry = all_experiments()
    if args.list or not args.experiments:
        print("available experiments:")
        for exp in registry.values():
            print(f"  {exp.id:10s} {exp.paper_ref:16s} {exp.title}")
        return 0

    ids = list(registry) if args.experiments == ["all"] else args.experiments
    config = ExperimentConfig(
        scale=args.scale, seed=args.seed, device=preset(args.device),
    )
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    status = 0
    for exp_id in ids:
        exp = get_experiment(exp_id)
        print(f"\n### {exp.id}: {exp.title} ({exp.paper_ref})")
        start = time.perf_counter()
        tables = exp.run(config)
        elapsed = time.perf_counter() - start
        for i, table in enumerate(tables):
            print()
            print(table.format(), end="")
            if args.plot:
                from repro.bench.plots import ascii_chart, plottable

                if plottable(table):
                    print()
                    print(ascii_chart(table, log_y=args.log_y), end="")
            if args.out:
                stem = f"{exp.id}_{i}" if len(tables) > 1 else exp.id
                table.to_csv(args.out / f"{stem}.csv")
                (args.out / f"{stem}.json").write_text(table.to_json())
        print(f"  [{exp.id} completed in {elapsed:.1f}s]")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
