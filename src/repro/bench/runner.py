"""Command-line benchmark runner.

Usage::

    python -m repro.bench --list
    python -m repro.bench fig5
    python -m repro.bench fig5 fig6 --scale 0.05 --out results/
    python -m repro.bench all --scale 0.02 --jobs 4 --profile

(also installed as the ``repro-bench`` console script.)

``--jobs N`` fans independent work units — whole experiments, and the
registered variants of splittable ones like fig4 — across a
``ProcessPoolExecutor``.  Results are collected and printed in submission
order, so the output (and every table) is identical to a serial run.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.bench.registry import (
    ExperimentConfig,
    all_experiments,
    get_experiment,
)
from repro.errors import ConfigError
from repro.gpusim.config import preset
from repro.gpusim.executor import resolve_engine

__all__ = ["main", "run_units"]

#: variant key meaning "run the whole experiment in one unit"
_WHOLE = None


def _run_unit(exp_id: str, variant, config: ExperimentConfig,
              engine: str, plan_cache: bool, trace: bool = False,
              cache_dir: str | None = None, devices: int = 1,
              backend: str = "sim"):
    """Execute one work unit; module-level so it pickles into pool workers.

    Returns ``(payload, elapsed_s, (cache_hits, cache_misses), spans,
    disk_stats)`` where the payload is the experiment's table list
    (whole-experiment unit) or one variant result, ``spans`` is the unit's
    :func:`repro.obs.export_events` delta when ``trace`` is set (None
    otherwise), and ``disk_stats`` is the unit's artifact-cache snapshot
    delta (None when no disk cache is active).

    ``cache_dir`` selects the disk artifact cache for this unit: ``None``
    leaves the process default alone (pool workers then adopt
    ``REPRO_CACHE_DIR`` from their environment), the empty string disables
    it, and a path enables it.
    """
    from repro import obs
    from repro.core.artifactcache import (
        configure_artifact_cache,
        get_artifact_cache,
    )
    from repro.backends import set_default_backend, set_default_devices
    from repro.core.plancache import default_cache, set_plan_cache_enabled
    from repro.gpusim.executor import set_default_engine

    set_default_engine(engine)
    set_default_devices(devices)
    set_default_backend(backend)
    set_plan_cache_enabled(plan_cache)
    if cache_dir is not None:
        configure_artifact_cache(cache_dir or None)
    disk = get_artifact_cache()
    disk0 = disk.snapshot() if disk is not None else None
    exp = get_experiment(exp_id)
    stats = default_cache().stats
    hits0, misses0 = stats.hits, stats.misses
    spans = None
    if trace:
        obs.set_enabled(True)  # idempotent; also arms fresh pool workers
        watermark = obs.mark()
    start = time.perf_counter()
    with obs.span("bench.unit", experiment=exp_id,
                  variant="whole" if variant is _WHOLE else str(variant)):
        if variant is _WHOLE:
            payload = exp.run(config)
        else:
            payload = exp.run_variant(config, variant)
    elapsed = time.perf_counter() - start
    if trace:
        spans = obs.export_events(since=watermark)
    disk_stats = None
    if disk is not None:
        disk_stats = disk.snapshot()
        for name, tier in disk_stats["tiers"].items():
            for k in tier:
                tier[k] -= disk0["tiers"][name][k]
        for k in ("hits", "misses", "writes", "corrupt"):
            disk_stats[k] -= disk0[k]
    return (payload, elapsed, (stats.hits - hits0, stats.misses - misses0),
            spans, disk_stats)


def run_units(units, config: ExperimentConfig, jobs: int,
              engine: str = "fast", plan_cache: bool = True,
              chunksize: int = 1, trace: bool = False,
              cache_dir: str | None = None, devices: int = 1,
              backend: str = "sim"):
    """Run ``(exp_id, variant)`` units, preserving submission order.

    ``jobs <= 1`` runs inline in this process (no pool, no pickling);
    otherwise units go through a ``ProcessPoolExecutor``.  Either way the
    returned list matches ``units`` index-for-index, so callers can merge
    deterministically.  With ``trace``, pooled units' span payloads are
    folded into this process's tracer (worker events keep their pid, so
    the Chrome trace shows one row per worker process).  ``cache_dir``
    (see :func:`_run_unit`) points every unit — pooled or inline — at one
    shared disk artifact cache.
    """
    if cache_dir:
        # export REPRO_CACHE_DIR before the pool spawns so workers inherit
        from repro.core.artifactcache import configure_artifact_cache

        configure_artifact_cache(cache_dir)
    if jobs <= 1 or len(units) <= 1:
        return [
            _run_unit(exp_id, variant, config, engine, plan_cache, trace,
                      cache_dir, devices, backend)
            for exp_id, variant in units
        ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(_run_unit, exp_id, variant, config, engine,
                        plan_cache, trace, cache_dir, devices, backend)
            for exp_id, variant in units
        ]
        results = [f.result() for f in futures]
    if trace:
        from repro import obs

        for result in results:
            obs.merge_events(result[3])
    return results


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures on the "
                    "simulated device.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (fig2..fig9, table1, table2, baselines) or 'all'",
    )
    parser.add_argument("--experiment", action="append", default=[],
                        metavar="ID", dest="experiment_flags",
                        help="experiment id (repeatable; same as the "
                             "positional form)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale vs the paper (default 0.05)")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument("--device", default="k20",
                        help="device preset: k20 (default), k40, c2050")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent experiments "
                             "and sweep cells (default 1 = in-process)")
    parser.add_argument("--profile", action="store_true",
                        help="print per-experiment wall time and plan-cache "
                             "hit/miss counts")
    parser.add_argument("--engine", default=None, metavar="NAME",
                        help="executor engine: fast (cohort-batched, the "
                             "default) or exact (reference event-per-block)")
    parser.add_argument("--exact", action="store_true",
                        help="shorthand for --engine exact")
    parser.add_argument("--devices", type=int, default=1, metavar="N",
                        help="simulated devices per run: every template run "
                             "shards its workload across N devices "
                             "(default 1; see docs/architecture.md)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="execution model: sim (bulk-synchronous, the "
                             "default) or queue (persistent task queues; "
                             "see docs/taskqueue.md)")
    parser.add_argument("--no-plan-cache", action="store_true",
                        help="disable the launch-plan cache (cold builds "
                             "every run; for measurement)")
    parser.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                        help="persist workload analyses, plans and run "
                             "results under DIR so repeat runs and --jobs "
                             "workers share them (see docs/performance.md)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="disable the disk artifact cache even if "
                             "REPRO_CACHE_DIR is set in the environment")
    parser.add_argument("--trace", type=Path, default=None, metavar="JSON",
                        help="enable the repro.obs tracing layer and write "
                             "a Chrome-trace (chrome://tracing / Perfetto) "
                             "of the run; see docs/observability.md")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write CSV/JSON results into")
    parser.add_argument("--plot", action="store_true",
                        help="render numeric tables as ASCII charts")
    parser.add_argument("--log-y", action="store_true",
                        help="log10 y-axis for --plot (Fig. 2/9 style)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    registry = all_experiments()
    requested = args.experiments + args.experiment_flags
    if args.list or not requested:
        print("available experiments:")
        for exp in registry.values():
            print(f"  {exp.id:10s} {exp.paper_ref:16s} {exp.title}")
        return 0
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.devices < 1:
        print("--devices must be >= 1", file=sys.stderr)
        return 2

    ids = list(registry) if "all" in requested else requested
    config = ExperimentConfig(
        scale=args.scale, seed=args.seed, device=preset(args.device),
    )
    if args.exact and args.engine not in (None, "exact"):
        print("--exact conflicts with --engine "
              f"{args.engine}", file=sys.stderr)
        return 2
    try:
        # same validation (and message) as repro.run and the service
        engine = resolve_engine("exact" if args.exact else args.engine) or "fast"
        from repro.backends import resolve_backend

        backend = resolve_backend(args.backend) or "sim"
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return 2
    if backend == "queue" and args.devices > 1:
        print("--backend queue is single-device; drop --devices",
              file=sys.stderr)
        return 2
    plan_cache = not args.no_plan_cache
    if args.cache_dir and args.no_disk_cache:
        print("--cache-dir and --no-disk-cache are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.no_disk_cache:
        cache_dir: str | None = ""
    elif args.cache_dir:
        cache_dir = str(args.cache_dir)
    else:
        cache_dir = None
    if args.trace:
        from repro import obs

        obs.reset()
        obs.set_enabled(True)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    # one flat unit list: splittable experiments contribute one unit per
    # registered variant when a pool is in play, everything else one unit
    units: list[tuple[str, object]] = []
    spans: list[tuple[str, int, int]] = []  # (exp_id, first unit, n units)
    for exp_id in ids:
        exp = get_experiment(exp_id)
        first = len(units)
        if args.jobs > 1 and exp.splittable:
            units.extend((exp_id, key) for key in exp.variants(config))
        else:
            units.append((exp_id, _WHOLE))
        spans.append((exp_id, first, len(units) - first))

    results = run_units(units, config, args.jobs, engine, plan_cache,
                        trace=args.trace is not None, cache_dir=cache_dir,
                        devices=args.devices, backend=backend)

    status = 0
    for exp_id, first, count in spans:
        exp = get_experiment(exp_id)
        print(f"\n### {exp.id}: {exp.title} ({exp.paper_ref})")
        chunk = results[first:first + count]
        elapsed = sum(r[1] for r in chunk)
        hits = sum(r[2][0] for r in chunk)
        misses = sum(r[2][1] for r in chunk)
        if count == 1 and units[first][1] is _WHOLE:
            tables = chunk[0][0]
        else:
            tables = exp.merge(config, [r[0] for r in chunk])
        for i, table in enumerate(tables):
            print()
            print(table.format(), end="")
            if args.plot:
                from repro.bench.plots import ascii_chart, plottable

                if plottable(table):
                    print()
                    print(ascii_chart(table, log_y=args.log_y), end="")
            if args.out:
                stem = f"{exp.id}_{i}" if len(tables) > 1 else exp.id
                table.to_csv(args.out / f"{stem}.csv")
                (args.out / f"{stem}.json").write_text(table.to_json())
        print(f"  [{exp.id} completed in {elapsed:.1f}s]")
        if args.profile:
            print(f"  [{exp.id} profile: {count} unit(s), "
                  f"plan cache {hits} hit(s) / {misses} miss(es), "
                  f"engine={engine}]")
            disk_chunks = [r[4] for r in chunk if r[4] is not None]
            if disk_chunks:
                dh = sum(d["hits"] for d in disk_chunks)
                dm = sum(d["misses"] for d in disk_chunks)
                dw = sum(d["writes"] for d in disk_chunks)
                dc = sum(d["corrupt"] for d in disk_chunks)
                per_tier = ", ".join(
                    f"{tier} {sum(d['tiers'][tier]['hits'] for d in disk_chunks)}h/"
                    f"{sum(d['tiers'][tier]['misses'] for d in disk_chunks)}m"
                    for tier in ("analysis", "plan", "run")
                )
                print(f"  [{exp.id} disk cache: {dh} hit(s) / {dm} miss(es) "
                      f"/ {dw} write(s) / {dc} corrupt ({per_tier})]")
    if args.trace:
        from repro import obs

        trace = obs.write_chrome_trace(args.trace)
        summary = obs.summary()
        print(f"\ntrace: wrote {args.trace} "
              f"({len(trace['traceEvents'])} events, "
              f"{summary['dropped']} dropped)")
        if args.profile:
            print("span summary (wall-clock, aggregated per name):")
            for name, agg in summary["wall_ms"].items():
                print(f"  {name:20s} x{agg['count']:<6d} "
                      f"total {agg['total_ms']:10.1f} ms  "
                      f"max {agg['max_ms']:8.2f} ms")
        obs.set_enabled(False)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
