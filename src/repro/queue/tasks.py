"""Task graphs: the unit of work the persistent-queue backend executes.

A :class:`TaskGraph` is the queue-world analogue of a
:class:`~repro.gpusim.kernels.LaunchGraph`: instead of kernels with
per-block cost arrays it holds *tasks* — outer iterations, thread-blocks
or subtree roots — each with a work estimate in SM-cycles and one of
three readiness rules:

* **initial** — enqueued before the persistent workers start
  (``spawned_by == -1`` and ``phase_dep == -1``);
* **spawned** — pushed onto a queue when the spawning task finishes
  (frontier-push semantics: ``spawned_by`` names an earlier task);
* **phase-gated** — becomes ready only when every task of an earlier
  *phase* has completed (``phase_dep`` names the phase).  Phases are how
  BSP stream order survives the conversion from a launch graph: the
  blocks of host launch *k* in a stream form phase *k* and gate launch
  *k+1*'s blocks.  Spawned tasks carry no phase — that is precisely the
  barrier the queue model eliminates for dynamic-parallelism children.

Tasks may additionally be marked **cancelled**: they are enqueued and
dequeued like any other task but their payload is stale by the time a
worker sees it (an asynchronous relaxation already superseded by a better
distance), so the worker pays only a cheap check and drops them.  The
invariant ``tasks_enqueued == tasks_executed + tasks_cancelled`` is what
``tools/queue_smoke.py`` pins.

Struct-of-arrays layout: task populations reach one entry per visit of an
asynchronous traversal, so per-task Python objects would dominate the
simulation's footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.gpusim.kernels import ProfileCounters

__all__ = ["TaskGraph"]


@dataclass
class TaskGraph:
    """All tasks of one queue-backend execution, struct-of-arrays."""

    name: str
    #: execution cost per task in SM-cycles (cancelled tasks: check cost)
    work_cycles: np.ndarray
    #: task id whose completion pushes this task (-1 = initial / phase-gated)
    spawned_by: np.ndarray | None = None
    #: phase id each task belongs to (-1 = none); phases gate dependents
    phase: np.ndarray | None = None
    #: phase id that must fully complete before this task is ready (-1 = none)
    phase_dep: np.ndarray | None = None
    #: stale tasks: dequeued, checked, dropped (no spawns allowed)
    cancelled: np.ndarray | None = None
    #: kernel-wide serialization appended after each phase completes
    #: (indexed by phase id; carries LaunchGraph serial tails across)
    phase_tail_cycles: np.ndarray | None = None
    #: aggregated profiler counters for the whole task population
    counters: ProfileCounters = field(default_factory=ProfileCounters)

    def __post_init__(self) -> None:
        self.work_cycles = np.asarray(self.work_cycles, dtype=np.float64)
        if self.work_cycles.ndim != 1:
            raise WorkloadError("work_cycles must be a 1-D array")
        if self.n_tasks == 0:
            raise WorkloadError("a task graph needs at least one task")
        if np.any(self.work_cycles < 0):
            raise WorkloadError("task work cannot be negative")
        n = self.n_tasks
        if self.spawned_by is None:
            self.spawned_by = np.full(n, -1, dtype=np.int64)
        else:
            self.spawned_by = np.asarray(self.spawned_by, dtype=np.int64)
        if self.phase is None:
            self.phase = np.full(n, -1, dtype=np.int64)
        else:
            self.phase = np.asarray(self.phase, dtype=np.int64)
        if self.phase_dep is None:
            self.phase_dep = np.full(n, -1, dtype=np.int64)
        else:
            self.phase_dep = np.asarray(self.phase_dep, dtype=np.int64)
        if self.cancelled is None:
            self.cancelled = np.zeros(n, dtype=bool)
        else:
            self.cancelled = np.asarray(self.cancelled, dtype=bool)
        for arr, label in ((self.spawned_by, "spawned_by"),
                           (self.phase, "phase"),
                           (self.phase_dep, "phase_dep"),
                           (self.cancelled, "cancelled")):
            if arr.shape != (n,):
                raise WorkloadError(f"{label} must have one entry per task")
        self._validate()

    def _validate(self) -> None:
        n = self.n_tasks
        sb = self.spawned_by
        if np.any(sb >= np.arange(n)):
            raise WorkloadError(
                "spawned_by must reference an earlier task (topological order)"
            )
        if np.any(sb[sb >= 0] < 0):  # pragma: no cover - shape guard
            raise WorkloadError("spawned_by out of range")
        spawners = sb[sb >= 0]
        if spawners.size and np.any(self.cancelled[spawners]):
            raise WorkloadError("cancelled tasks cannot spawn children")
        gated = self.phase_dep >= 0
        if np.any(gated & (sb >= 0)):
            raise WorkloadError(
                "a task is either spawned or phase-gated, not both"
            )
        n_phases = self.n_phases
        if np.any(self.phase >= n_phases) or np.any(self.phase_dep >= n_phases):
            raise WorkloadError("phase ids must be dense starting at 0")
        if self.phase_tail_cycles is not None:
            self.phase_tail_cycles = np.asarray(
                self.phase_tail_cycles, dtype=np.float64
            )
            if self.phase_tail_cycles.shape != (n_phases,):
                raise WorkloadError(
                    "phase_tail_cycles must have one entry per phase"
                )
        elif n_phases:
            self.phase_tail_cycles = np.zeros(n_phases, dtype=np.float64)

    @property
    def n_tasks(self) -> int:
        """Total tasks (== items enqueued over the whole execution)."""
        return int(self.work_cycles.shape[0])

    @property
    def n_phases(self) -> int:
        """Number of barrier phases (0 for fully asynchronous graphs)."""
        mx = -1
        if self.phase.size:
            mx = int(self.phase.max())
        if self.phase_dep.size:
            mx = max(mx, int(self.phase_dep.max()))
        return mx + 1

    @property
    def n_initial(self) -> int:
        """Tasks ready before the workers start."""
        return int(np.count_nonzero((self.spawned_by < 0)
                                    & (self.phase_dep < 0)))

    @property
    def n_cancelled(self) -> int:
        """Tasks that will be dequeued stale and dropped."""
        return int(np.count_nonzero(self.cancelled))

    @property
    def total_cycles(self) -> float:
        """Total SM-cycles of task work (excludes queue-op overheads)."""
        return float(self.work_cycles.sum())

    def children_lists(self) -> list[list[int]]:
        """Per-task lists of spawned child ids, in push order."""
        children: list[list[int]] = [[] for _ in range(self.n_tasks)]
        sb = self.spawned_by
        for child in np.flatnonzero(sb >= 0).tolist():
            children[int(sb[child])].append(child)
        return children
