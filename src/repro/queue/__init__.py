"""``repro.queue`` — Atos-style persistent task-queue execution model.

A second execution model behind the :class:`~repro.backends.base.Backend`
seam: instead of bulk-synchronous kernel launches (build a launch graph,
submit, barrier), N persistent worker blocks pull :class:`TaskGraph`
tasks from device-global queues, push newly-enabled work (frontier-push),
and detect completion by counting quiescence.  See ``docs/taskqueue.md``
for the execution model and when auto-select prefers it over BSP.

Entry points:

* ``repro.run(workload, backend="queue")`` / ``backend_for("queue")`` —
  any template, launch graph converted to tasks;
* :meth:`QueueBackend.submit_tasks` — asynchronous apps
  (:mod:`repro.apps.asyncq`) hand over barrier-free task graphs directly.
"""

from repro.queue.backend import QueueBackend, QueueExecutionResult, graph_to_tasks
from repro.queue.model import QueueConfig, QueueStats, simulate, worker_count
from repro.queue.tasks import TaskGraph

__all__ = [
    "QueueBackend",
    "QueueConfig",
    "QueueExecutionResult",
    "QueueStats",
    "TaskGraph",
    "graph_to_tasks",
    "simulate",
    "worker_count",
]
