"""Persistent-worker queue simulation: the Atos execution model, costed.

The model follows Atos's scheduling skeleton: one persistent kernel whose
resident thread-blocks ("workers") loop { dequeue, execute, push } over a
small set of device-global work queues until a counting-quiescence check
says every task that was ever enqueued has been drained.  What the
simulator prices, using the same :class:`~repro.gpusim.config.DeviceConfig`
constants the BSP executor uses:

* **queue operations** — every dequeue/enqueue is an atomic on the
  queue's head/tail plus a task-record memory access.  The *latency* a
  worker observes is ``atomic_cycles`` + record traffic; the *throughput*
  bound is the queue's single hot address, which sustains one RMW per
  ``atomic_same_address_cycles`` — concurrent workers on one queue
  serialize there, and that wait is reported as contention.
* **work stealing** — a worker whose home queue is empty scans the other
  queues' depth words and steals from the deepest, paying the scan
  traffic and the victim's head atomic.
* **termination detection** — counting quiescence: each finished task
  increments a global done-counter (one more hot address); when the
  counter reaches the total enqueued, idle workers discover quiescence at
  their next poll (``check_interval_cycles``) and confirm serially on the
  counter.  The window between the last task completing and the last
  worker retiring is the *termination cost*, reported as a first-class
  metric — it is the price the queue model pays in exchange for deleting
  every per-round host-side barrier the BSP model launches through.

The simulation is event-driven in virtual time and fully deterministic:
heap ties break on insertion order, queues are FIFO, stealing prefers the
deepest (then lowest-indexed) queue.  Nondeterministic *schedules* are
modeled upstream by building differently-ordered task graphs (seeded),
never by randomness here — which is what makes queue runs cacheable and
the equivalence tests exact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, WorkloadError
from repro.gpusim.config import DeviceConfig
from repro.gpusim.occupancy import occupancy
from repro.queue.tasks import TaskGraph

__all__ = ["QueueConfig", "QueueStats", "simulate", "worker_count"]


@dataclass(frozen=True)
class QueueConfig:
    """Tunables of the persistent-worker model (repr-stable, hashable)."""

    #: device-global work queues per device (Atos uses a small constant)
    n_queues: int = 4
    #: threads per persistent worker block
    worker_block_size: int = 128
    #: register footprint of the worker kernel (bounds residency)
    registers_per_thread: int = 24
    #: idle-worker poll period for new work / the quiescence flag (cycles)
    check_interval_cycles: float = 400.0
    #: hard cap on tasks per submission (runaway-graph guard)
    max_tasks: int = 2_000_000

    def __post_init__(self) -> None:
        if self.n_queues < 1:
            raise ConfigError(f"n_queues must be >= 1, got {self.n_queues}")
        if self.worker_block_size < 1:
            raise ConfigError("worker_block_size must be >= 1")
        if self.check_interval_cycles <= 0:
            raise ConfigError("check_interval_cycles must be positive")
        if self.max_tasks < 1:
            raise ConfigError("max_tasks must be >= 1")

    def key(self) -> str:
        """Repr-stable identity for cache keys and fingerprints."""
        return (f"q{self.n_queues}b{self.worker_block_size}"
                f"r{self.registers_per_thread}c{self.check_interval_cycles:g}")


@dataclass
class QueueStats:
    """Everything one simulated queue execution measured."""

    #: end-to-end cycles: worker launch -> last worker retires
    makespan_cycles: float
    #: completion time of the last task (before termination detection)
    last_task_end_cycles: float
    #: last-task-end -> all-workers-retired window (detection latency)
    termination_cycles: float
    #: summed worker-cycles idle between own last work and retirement
    termination_wait_cycles: float
    #: persistent worker blocks
    n_workers: int
    #: device-global queues
    n_queues: int
    tasks_enqueued: int
    tasks_executed: int
    tasks_cancelled: int
    #: dequeues served from a non-home queue
    steals: int
    #: empty-handed idle polls
    polls: int
    #: maximum instantaneous depth over all queues
    max_queue_depth: int
    #: worker-cycles lost waiting on queue-tail atomics (pushes)
    enqueue_contention_cycles: float
    #: worker-cycles lost waiting on queue-head atomics (pops)
    dequeue_contention_cycles: float
    #: worker-cycles lost serializing on the done-counter
    counter_contention_cycles: float
    #: per-worker busy cycles (dequeue + execute + push + counter)
    worker_busy_cycles: np.ndarray

    @property
    def busy_total(self) -> float:
        """Summed busy cycles across all workers."""
        return float(self.worker_busy_cycles.sum())


def worker_count(config: DeviceConfig, qcfg: QueueConfig) -> int:
    """Persistent worker blocks co-resident on the device.

    A persistent kernel fills the device exactly once: residency per SM
    times the SM count, from the same occupancy calculator the BSP
    templates use.
    """
    occ = occupancy(config, qcfg.worker_block_size,
                    qcfg.registers_per_thread, 0)
    return max(1, occ.blocks_per_sm * config.sm_count)


def simulate(tasks: TaskGraph, config: DeviceConfig,
             qcfg: QueueConfig | None = None) -> QueueStats:
    """Execute a task graph on the persistent-worker model (deterministic)."""
    qcfg = qcfg or QueueConfig()
    if tasks.n_tasks > qcfg.max_tasks:
        raise WorkloadError(
            f"task graph {tasks.name!r} has {tasks.n_tasks} tasks, "
            f"exceeding the configured cap ({qcfg.max_tasks})"
        )
    n_workers = worker_count(config, qcfg)
    nq = qcfg.n_queues

    same_addr = float(config.atomic_same_address_cycles)
    seg = float(config.cycles_per_segment)
    # pop/push latency: one head/tail atomic + the 64 B task record
    deq_latency = float(config.atomic_cycles) + 2.0 * seg
    enq_latency = float(config.atomic_cycles) + 2.0 * seg
    # stale-task check: one flag/priority load + compare
    cancel_cycles = seg + 4.0
    # scanning the other queues' depth words before stealing
    steal_scan = seg * max(nq - 1, 1)

    work = tasks.work_cycles
    spawned_by = tasks.spawned_by
    phase = tasks.phase
    phase_dep = tasks.phase_dep
    cancelled = tasks.cancelled
    children = tasks.children_lists()
    n_tasks = tasks.n_tasks

    n_phases = tasks.n_phases
    phase_tail = tasks.phase_tail_cycles
    phase_remaining = [0] * n_phases
    for p in phase.tolist():
        if p >= 0:
            phase_remaining[p] += 1
    blocked: list[list[int]] = [[] for _ in range(n_phases)]

    # persistent kernel launch: the one host-side launch the model pays
    t0 = config.us_to_cycles(config.host_launch_overhead_us)

    queues: list[list[int]] = [[] for _ in range(nq)]  # FIFO via pop(0) index
    heads = [0] * nq
    initial = np.flatnonzero((spawned_by < 0) & (phase_dep < 0)).tolist()
    for i, task in enumerate(initial):
        queues[i % nq].append(task)
    for p_id in range(n_phases):
        if phase_remaining[p_id] == 0:
            # a declared phase with no member tasks completes immediately
            phase_remaining[p_id] = -1
    for task in np.flatnonzero(phase_dep >= 0).tolist():
        dep = int(phase_dep[task])
        if phase_remaining[dep] == -1:
            queues[task % nq].append(task)
        else:
            blocked[dep].append(task)
    if not any(queues):
        raise WorkloadError(f"task graph {tasks.name!r} has no initial task")

    #: future-visible tasks: (ready_time, seq, task_id, target_queue)
    pending: list[tuple[float, int, int, int]] = []
    #: worker wake events: (time, seq, worker_id)
    events: list[tuple[float, int, int]] = [
        (t0, w, w) for w in range(n_workers)
    ]
    heapq.heapify(events)
    seq = n_workers

    q_free = [0.0] * nq          # queue head/tail hot-address availability
    done_free = 0.0              # done-counter hot-address availability
    busy = np.zeros(n_workers, dtype=np.float64)
    last_busy_end = np.full(n_workers, t0, dtype=np.float64)

    done = 0
    executed = 0
    n_cancelled = 0
    steals = 0
    polls = 0
    max_depth = max(len(q) - h for q, h in zip(queues, heads))
    enq_wait = 0.0
    deq_wait = 0.0
    cnt_wait = 0.0
    last_task_end = t0

    def depth(qi: int) -> int:
        return len(queues[qi]) - heads[qi]

    def release(now: float) -> None:
        """Make pending tasks whose push has landed visible in queues."""
        nonlocal max_depth
        while pending and pending[0][0] <= now:
            _, _, task, qi = heapq.heappop(pending)
            queues[qi].append(task)
            d = depth(qi)
            if d > max_depth:
                max_depth = d

    while events and done < n_tasks:
        now, _, w = heapq.heappop(events)
        release(now)
        home = w % nq
        qi = home
        stolen = False
        if depth(qi) == 0:
            # steal from the deepest queue (ties: lowest index)
            best, best_depth = -1, 0
            for j in range(nq):
                d = depth(j)
                if d > best_depth:
                    best, best_depth = j, d
            if best < 0:
                # no visible work anywhere; all future work is in pending
                # (executions are processed atomically, so nothing is
                # in-flight) — sleep to the poll tick covering it
                if not pending:
                    raise WorkloadError(
                        f"task graph {tasks.name!r} deadlocked: "
                        f"{n_tasks - done} tasks unreachable"
                    )
                target = pending[0][0]
                intervals = max(
                    1, -int(-(target - now) // qcfg.check_interval_cycles)
                )
                polls += intervals
                seq += 1
                heapq.heappush(
                    events,
                    (now + intervals * qcfg.check_interval_cycles, seq, w),
                )
                continue
            qi = best
            stolen = True
        # dequeue: serialize on the queue's head atomic
        start = max(now, q_free[qi])
        deq_wait += start - now
        q_free[qi] = start + same_addr
        cursor = start + deq_latency
        if stolen:
            cursor += steal_scan
            steals += 1
        task = queues[qi][heads[qi]]
        heads[qi] += 1
        if heads[qi] > 64 and heads[qi] * 2 > len(queues[qi]):
            del queues[qi][:heads[qi]]
            heads[qi] = 0

        # execute
        if cancelled[task]:
            cursor += cancel_cycles
            n_cancelled += 1
        else:
            cursor += float(work[task])
            executed += 1

        # frontier push: children become visible when their push lands
        for child in children[task]:
            estart = max(cursor, q_free[home])
            enq_wait += estart - cursor
            q_free[home] = estart + same_addr
            cursor = estart + enq_latency
            seq += 1
            heapq.heappush(pending, (cursor, seq, child, home))

        # phase barrier accounting (BSP-derived graphs only)
        p = int(phase[task])
        if p >= 0:
            phase_remaining[p] -= 1
            if phase_remaining[p] == 0:
                phase_remaining[p] = -1
                tail = float(phase_tail[p]) if phase_tail is not None else 0.0
                ready = cursor + tail + seg  # dependents read the flag
                for dep_task in blocked[p]:
                    seq += 1
                    heapq.heappush(
                        pending, (ready, seq, dep_task, dep_task % nq)
                    )
                blocked[p] = []

        # counting quiescence: one done-counter RMW per drained task
        cstart = max(cursor, done_free)
        cnt_wait += cstart - cursor
        done_free = cstart + same_addr
        cursor = cstart + config.atomic_cycles
        done += 1
        if cursor > last_task_end:
            last_task_end = cursor

        # hot-address waits spin on the SM, so the whole span counts busy
        busy[w] += cursor - now
        last_busy_end[w] = cursor
        seq += 1
        heapq.heappush(events, (cursor, seq, w))

    if done < n_tasks:  # pragma: no cover - loop invariant guard
        raise WorkloadError(
            f"task graph {tasks.name!r} stalled with {n_tasks - done} tasks left"
        )

    # every worker discovers quiescence at its next poll tick, then
    # confirms with one serialized counter read before retiring
    t_term = (last_task_end + qcfg.check_interval_cycles
              + n_workers * same_addr + seg)
    term_wait = float(np.maximum(t_term - last_busy_end, 0.0).sum())

    return QueueStats(
        makespan_cycles=t_term,
        last_task_end_cycles=last_task_end,
        termination_cycles=t_term - last_task_end,
        termination_wait_cycles=term_wait,
        n_workers=n_workers,
        n_queues=nq,
        tasks_enqueued=n_tasks,
        tasks_executed=executed,
        tasks_cancelled=n_cancelled,
        steals=steals,
        polls=polls,
        max_queue_depth=max_depth,
        enqueue_contention_cycles=enq_wait,
        dequeue_contention_cycles=deq_wait,
        counter_contention_cycles=cnt_wait,
        worker_busy_cycles=busy,
    )
