"""`QueueBackend`: the persistent-queue execution model behind the seam.

Implements the same :class:`~repro.backends.base.Backend` contract as the
BSP simulator — ``submit(LaunchGraph) -> ExecutionResult`` — so every
template runs on it unchanged.  A submitted launch graph is converted to
a :class:`~repro.queue.tasks.TaskGraph`:

* each thread-block of each launch becomes one task;
* host launches keep their stream order as *phase* dependencies (the
  blocks of launch *k* in a stream gate launch *k+1*'s blocks — the
  conservative reading of BSP semantics, after IrGL's observation that
  only cross-kernel data dependencies need the barrier);
* device (dynamic-parallelism) launches lose the grid-management queue
  entirely: their blocks become *spawned* tasks pushed by the parent
  block's task — frontier-push semantics with no launch latency.

Asynchronous applications skip the conversion and hand a
:class:`TaskGraph` straight to :meth:`QueueBackend.submit_tasks`.

Cache integration: the backend advertises ``run_cache_tag`` so the
template run wrappers store queue results under a distinct disk ``run``
key — BSP keys (and therefore the ``devices=1`` byte-compatibility
guarantee) are untouched, because the tag is only appended when not None.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.backends.base import Backend, BackendCapabilities, capabilities_of
from repro.gpusim.config import DeviceConfig, KEPLER_K20
from repro.gpusim.executor import ExecutionResult
from repro.gpusim.kernels import HOST, LaunchGraph
from repro.queue.model import QueueConfig, QueueStats, simulate, worker_count
from repro.queue.tasks import TaskGraph

__all__ = ["QueueBackend", "QueueExecutionResult", "graph_to_tasks"]


@dataclass
class QueueExecutionResult(ExecutionResult):
    """An :class:`ExecutionResult` with the queue model's extra metrics.

    ``n_launches`` is 1 — the persistent kernel — and
    ``n_device_launches`` 0 regardless of how many nested launches the
    submitted graph declared: spawns became queue pushes.
    """

    n_workers: int = 0
    n_queues: int = 0
    tasks_enqueued: int = 0
    tasks_executed: int = 0
    tasks_cancelled: int = 0
    steals: int = 0
    polls: int = 0
    max_queue_depth: int = 0
    enqueue_contention_cycles: float = 0.0
    dequeue_contention_cycles: float = 0.0
    counter_contention_cycles: float = 0.0
    #: cycles between the last task completing and the last worker retiring
    termination_cycles: float = 0.0
    #: summed worker-cycles spent quiescing (idle tail during detection)
    termination_wait_cycles: float = 0.0
    worker_busy_cycles: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )

    @property
    def termination_overhead(self) -> float:
        """Termination detection as a fraction of the makespan."""
        if self.cycles <= 0:
            return 0.0
        return self.termination_cycles / self.cycles


def graph_to_tasks(graph: LaunchGraph, config: DeviceConfig,
                   name: str = "launch-graph") -> TaskGraph:
    """Convert a BSP launch graph into the queue model's task population."""
    work_parts: list[np.ndarray] = []
    phase_parts: list[np.ndarray] = []
    dep_parts: list[np.ndarray] = []
    spawn_parts: list[np.ndarray] = []
    tails: list[float] = []

    #: first task id of each (launch, replica); replicas of a bulk launch
    #: share one costs record but spawn from the same parent block
    first_task: list[int] = []
    n_tasks = 0
    #: phase id of each (launch) for host launches, -1 for device launches
    launch_phase: list[int] = []
    last_phase_in_stream: dict[int, int] = {}

    for li, launch in enumerate(graph.launches):
        costs = launch.costs
        blocks = np.maximum(costs.block_cycles, costs.block_floor)
        reps = launch.count
        first_task.append(n_tasks)
        if launch.parent == HOST:
            pid = len(tails)
            launch_phase.append(pid)
            dep = last_phase_in_stream.get(launch.stream, -1)
            last_phase_in_stream[launch.stream] = pid
            tails.append(float(costs.serial_tail) * reps)
            total = blocks.size * reps
            w = np.tile(blocks, reps)
            work_parts.append(w)
            phase_parts.append(np.full(total, pid, dtype=np.int64))
            dep_parts.append(np.full(total, dep, dtype=np.int64))
            spawn_parts.append(np.full(total, -1, dtype=np.int64))
            n_tasks += total
        else:
            launch_phase.append(-1)
            parent_first = first_task[launch.parent]
            # serial tails of spawned kernels have no barrier to hide
            # behind; fold them into the replica's last block
            w = np.tile(blocks, reps)
            if costs.serial_tail:
                w = w.copy()
                w[blocks.size - 1::blocks.size] += costs.serial_tail
            total = blocks.size * reps
            spawner = parent_first + launch.parent_block
            work_parts.append(w)
            phase_parts.append(np.full(total, -1, dtype=np.int64))
            dep_parts.append(np.full(total, -1, dtype=np.int64))
            spawn_parts.append(np.full(total, spawner, dtype=np.int64))
            n_tasks += total

    return TaskGraph(
        name=name,
        work_cycles=np.concatenate(work_parts),
        spawned_by=np.concatenate(spawn_parts),
        phase=np.concatenate(phase_parts),
        phase_dep=np.concatenate(dep_parts),
        phase_tail_cycles=np.asarray(tails, dtype=np.float64),
        counters=graph.aggregate_counters(),
    )


class QueueBackend(Backend):
    """Persistent-worker task-queue execution of launch/task graphs.

    Parameters
    ----------
    device:
        device configuration to simulate (default Kepler K20).
    queue_config:
        :class:`~repro.queue.model.QueueConfig` tunables (worker block
        size, queue count, poll interval); defaults model Atos's setup.
    engine:
        kept for seam compatibility (cache keys, BSP fallback); the
        queue model itself has a single engine.
    """

    name = "queue"

    def __init__(
        self,
        device: DeviceConfig = KEPLER_K20,
        *,
        queue_config: QueueConfig | None = None,
        engine: str | None = None,
    ) -> None:
        self._device = device
        self.queue_config = queue_config or QueueConfig()
        self._engine = engine
        base = capabilities_of(device)
        self._capabilities = BackendCapabilities(
            dynamic_parallelism=base.dynamic_parallelism,
            shared_mem_per_block=base.shared_mem_per_block,
            devices=1,
            persistent_queue=True,
        )
        #: load/accounting counters (mirrors SimBackend's surface)
        self.busy_ms = 0.0
        self.submissions = 0

    @property
    def device(self) -> DeviceConfig:
        return self._device

    @property
    def capabilities(self) -> BackendCapabilities:
        return self._capabilities

    @property
    def engine(self) -> str | None:
        return self._engine

    @property
    def n_workers(self) -> int:
        """Persistent worker blocks this backend schedules."""
        return worker_count(self._device, self.queue_config)

    @property
    def run_cache_tag(self) -> str:
        """Disambiguates queue results in the disk ``run`` tier."""
        return f"queue[{self.queue_config.key()}]"

    def fingerprint(self) -> str:
        """Queue runs must never share cache identity with BSP runs."""
        return f"queue[{self.queue_config.key()}]:{self._device.fingerprint()}"

    def submit(self, graph: LaunchGraph) -> QueueExecutionResult:
        """Convert a launch graph to tasks and drain it through the queues."""
        tasks = graph_to_tasks(graph, self._device)
        return self.submit_tasks(tasks)

    def submit_tasks(self, tasks: TaskGraph) -> QueueExecutionResult:
        """Execute an already-built task graph (asynchronous app path)."""
        with obs.span("queue.execute", tasks=tasks.n_tasks,
                      workers=self.n_workers):
            stats = simulate(tasks, self._device, self.queue_config)
        result = self._result_from(tasks, stats)
        self.busy_ms += result.time_ms
        self.submissions += 1
        if obs.enabled():
            obs.add_counter("queue.tasks", stats.tasks_enqueued)
            obs.add_counter("queue.cancelled", stats.tasks_cancelled)
            obs.add_counter("queue.steals", stats.steals)
            obs.add_counter("queue.polls", stats.polls)
            obs.add_counter("queue.depth", stats.max_queue_depth)
            obs.add_counter("queue.termination_wait",
                            int(stats.termination_wait_cycles))
            obs.add_counter("queue.worker_busy_cycles",
                            int(stats.busy_total))
        return result

    def _result_from(self, tasks: TaskGraph,
                     stats: QueueStats) -> QueueExecutionResult:
        cfg = self._device
        # SMs host n_workers/sm_count workers each; normalize summed
        # worker-busy time back to SM terms for the utilization metric
        workers_per_sm = max(stats.n_workers / cfg.sm_count, 1e-9)
        return QueueExecutionResult(
            cycles=stats.makespan_cycles,
            time_ms=cfg.cycles_to_ms(stats.makespan_cycles),
            counters=tasks.counters,
            sm_busy_cycles=stats.busy_total / workers_per_sm,
            sm_count=cfg.sm_count,
            n_launches=1,
            n_device_launches=0,
            pool_overflows=0,
            n_workers=stats.n_workers,
            n_queues=stats.n_queues,
            tasks_enqueued=stats.tasks_enqueued,
            tasks_executed=stats.tasks_executed,
            tasks_cancelled=stats.tasks_cancelled,
            steals=stats.steals,
            polls=stats.polls,
            max_queue_depth=stats.max_queue_depth,
            enqueue_contention_cycles=stats.enqueue_contention_cycles,
            dequeue_contention_cycles=stats.dequeue_contention_cycles,
            counter_contention_cycles=stats.counter_contention_cycles,
            termination_cycles=stats.termination_cycles,
            termination_wait_cycles=stats.termination_wait_cycles,
            worker_busy_cycles=stats.worker_busy_cycles,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<QueueBackend device={self._device.name!r} "
                f"workers={self.n_workers} "
                f"queues={self.queue_config.n_queues}>")
