"""Synthetic graph generators matching the paper's datasets.

The paper's graph inputs are CiteSeer (DIMACS implementation challenge) and
Wikipedia's who-votes-on-whom network (SNAP), neither of which can be
downloaded offline.  What the experiments actually depend on is the
*out-degree irregularity* — the paper quotes exactly these statistics:

* CiteSeer: ~434k nodes, ~16M edges, out-degree 1..1,188, mean 73.9;
* Wiki-Vote: ~7k nodes, ~100k edges, out-degree 0..893, mean 14.6;
* recursive-BFS graphs: 50,000 nodes, out-degree uniform in a range.

The generators below reproduce those degree profiles (power-law tails with
matching min/max/mean) at a configurable scale.  Default scales are chosen
so a full benchmark run stays laptop-sized; pass ``scale=1.0`` for the
paper's full sizes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graphs.csr import CSRGraph

__all__ = [
    "power_law_degrees",
    "lognormal_degrees",
    "degree_sequence_graph",
    "citeseer_like",
    "wiki_vote_like",
    "uniform_random_graph",
    "rmat_graph",
    "grid_graph",
]


def power_law_degrees(
    n_nodes: int,
    mean_degree: float,
    max_degree: int,
    min_degree: int = 0,
    exponent: float = 2.0,
    seed: int = 0,
) -> np.ndarray:
    """Draw a power-law out-degree sequence with a pinned mean.

    Degrees follow a truncated Pareto tail; the sequence is rescaled
    iteratively so its mean matches ``mean_degree`` while respecting the
    ``[min_degree, max_degree]`` bounds (mirroring how real citation /
    voting networks combine a huge hub range with a modest mean).
    """
    if n_nodes <= 0:
        raise DatasetError("n_nodes must be positive")
    if not (0 <= min_degree <= max_degree):
        raise DatasetError("need 0 <= min_degree <= max_degree")
    if not (min_degree <= mean_degree <= max_degree):
        raise DatasetError("mean_degree must lie within the degree bounds")
    rng = np.random.default_rng(seed)
    raw = (rng.pareto(exponent - 1.0, size=n_nodes) + 1.0)
    degrees = raw.copy()
    # Fixed-point rescale: clipping changes the mean, so iterate.
    scale = mean_degree / degrees.mean()
    for _ in range(60):
        clipped = np.clip(raw * scale, min_degree, max_degree)
        current = clipped.mean()
        if abs(current - mean_degree) < 1e-3:
            break
        scale *= mean_degree / max(current, 1e-12)
    degrees = np.clip(np.round(raw * scale), min_degree, max_degree).astype(np.int64)
    # Degrees can't exceed the number of possible distinct targets.
    return np.minimum(degrees, n_nodes - 1)


def lognormal_degrees(
    n_nodes: int,
    mean_degree: float,
    max_degree: int,
    min_degree: int = 1,
    sigma: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Draw a lognormal out-degree sequence with a pinned mean.

    Citation networks have a wide lognormal body (many low-degree papers,
    a fat middle, rare kilo-degree hubs).  The sequence is rescaled
    iteratively so the *clipped* mean matches ``mean_degree``.
    """
    if n_nodes <= 0:
        raise DatasetError("n_nodes must be positive")
    if not (0 <= min_degree <= max_degree):
        raise DatasetError("need 0 <= min_degree <= max_degree")
    if not (min_degree <= mean_degree <= max_degree):
        raise DatasetError("mean_degree must lie within the degree bounds")
    if sigma <= 0:
        raise DatasetError("sigma must be positive")
    rng = np.random.default_rng(seed)
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=n_nodes)
    scale = mean_degree / raw.mean()
    degrees = np.clip(np.round(raw * scale), min_degree, max_degree)
    for _ in range(60):
        current = degrees.mean()
        if abs(current - mean_degree) < 1e-2:
            break
        scale *= mean_degree / max(current, 1e-12)
        degrees = np.clip(np.round(raw * scale), min_degree, max_degree)
    return np.minimum(degrees.astype(np.int64), n_nodes - 1)


def degree_sequence_graph(
    degrees: np.ndarray,
    seed: int = 0,
    name: str = "synthetic",
    locality: float = 0.0,
) -> CSRGraph:
    """Wire a directed graph with the given out-degree sequence.

    Targets are drawn with preferential attachment-ish skew (targets
    proportional to their own degree + 1), so in-degrees are also heavy
    tailed, as in real networks.  ``locality`` is the fraction of edges
    whose target is drawn *near* the source id — real citation/voting
    datasets exhibit strong id locality, which is what lets block-mapped
    adjacency gathers coalesce (the paper's high gld efficiencies).
    Rows are stored with sorted targets, as canonical CSR datasets are.
    Self-loops are avoided; rare duplicate edges are kept (they exist in
    the multigraph view of these datasets and do not affect any of the
    algorithms' semantics).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if n == 0:
        raise DatasetError("empty degree sequence")
    if np.any(degrees < 0):
        raise DatasetError("degrees cannot be negative")
    if np.any(degrees > n - 1) and n > 1:
        raise DatasetError("a node's out-degree cannot exceed n_nodes - 1")
    if not (0.0 <= locality <= 1.0):
        raise DatasetError("locality must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    nnz = int(degrees.sum())
    sources = np.repeat(np.arange(n, dtype=np.int64), degrees)
    weight = (degrees + 1).astype(np.float64)
    prob = weight / weight.sum()
    targets = rng.choice(n, size=nnz, p=prob)
    if locality > 0.0 and nnz:
        local = rng.random(nnz) < locality
        spread = max(2.0, n * 0.002)
        offsets_local = np.round(rng.laplace(0.0, spread, size=nnz)).astype(np.int64)
        near = np.clip(sources + offsets_local, 0, n - 1)
        targets = np.where(local, near, targets)
    # repair self loops by shifting to the next node
    loops = targets == sources
    targets[loops] = (targets[loops] + 1) % n
    # canonical CSR: targets sorted within each row.  ``sources`` is
    # already non-decreasing (a repeat of arange), so the row-wise sort is
    # a single value sort of packed (source, target) keys — same result as
    # ``np.lexsort((targets, sources))`` at a third of the cost.
    targets = np.sort(sources * np.int64(n) + targets) - sources * np.int64(n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return CSRGraph(offsets, targets, name=name)


def citeseer_like(
    scale: float = 0.15,
    seed: int = 0,
    weighted: bool = True,
) -> CSRGraph:
    """A CiteSeer-profile network (heavy-tailed citation graph).

    ``scale=1.0`` reproduces the paper's full size (~434k nodes, the
    quoted mean out-degree of 73.9, max degree 1,188); the default
    ``scale=0.15`` gives ~65k nodes / ~4.8M edges with the same degree
    *shape*, which keeps simulator runs laptop-sized (see DESIGN.md §2
    for the substitution note).
    """
    if not (0 < scale <= 1.0):
        raise DatasetError("scale must be in (0, 1]")
    n = max(1000, int(434_000 * scale))
    degrees = lognormal_degrees(
        n_nodes=n,
        mean_degree=73.9,
        max_degree=1188,
        min_degree=1,
        sigma=1.0,
        seed=seed,
    )
    graph = degree_sequence_graph(degrees, seed=seed + 1,
                                  name="citeseer-like", locality=0.6)
    if weighted:
        rng = np.random.default_rng(seed + 2)
        graph.weights = rng.integers(1, 11, size=graph.n_edges).astype(np.float64)
    return graph


def wiki_vote_like(seed: int = 0) -> CSRGraph:
    """A Wiki-Vote-profile network (small-world voting graph).

    Matches the paper's quoted statistics: ~7k nodes, ~100k edges,
    out-degree 0..893 with mean ~14.6.  Small enough that no scaling is
    needed.
    """
    n = 7_115
    degrees = power_law_degrees(
        n_nodes=n,
        mean_degree=14.6,
        max_degree=893,
        min_degree=0,
        exponent=1.9,
        seed=seed,
    )
    return degree_sequence_graph(degrees, seed=seed + 1,
                                 name="wiki-vote-like", locality=0.3)


def uniform_random_graph(
    n_nodes: int = 50_000,
    degree_range: tuple[int, int] = (16, 48),
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """The paper's recursive-BFS input: uniform out-degrees in a range.

    "randomly generated graphs consisting of 50,000 nodes [whose] node
    outdegree is uniformly distributed within a variable range".
    """
    lo, hi = degree_range
    if n_nodes <= 1:
        raise DatasetError("n_nodes must be > 1")
    if not (0 <= lo <= hi):
        raise DatasetError("invalid degree range")
    if hi > n_nodes - 1:
        raise DatasetError("max degree cannot exceed n_nodes - 1")
    rng = np.random.default_rng(seed)
    degrees = rng.integers(lo, hi + 1, size=n_nodes)
    nnz = int(degrees.sum())
    sources = np.repeat(np.arange(n_nodes, dtype=np.int64), degrees)
    targets = rng.integers(0, n_nodes, size=nnz)
    loops = targets == sources
    targets[loops] = (targets[loops] + 1) % n_nodes
    offsets = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return CSRGraph(
        offsets, targets,
        name=name or f"uniform-{lo}-{hi}",
    )


def rmat_graph(
    scale: int = 14,
    edge_factor: int = 16,
    probabilities: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Recursive-matrix (R-MAT / Graph500-style) generator.

    Produces ``2**scale`` nodes and ``edge_factor * 2**scale`` directed
    edges by recursively descending the adjacency matrix quadrants with
    probabilities ``(a, b, c, d)``.  R-MAT graphs combine a power-law
    degree profile with community structure — a common stress input for
    the load-balancing templates beyond the paper's datasets.
    """
    if scale < 1 or scale > 26:
        raise DatasetError("scale must be in [1, 26]")
    if edge_factor < 1:
        raise DatasetError("edge_factor must be >= 1")
    a, b, c, d = probabilities
    if min(a, b, c, d) < 0 or abs(a + b + c + d - 1.0) > 1e-9:
        raise DatasetError("quadrant probabilities must be >= 0 and sum to 1")
    n = 1 << scale
    nnz = edge_factor * n
    rng = np.random.default_rng(seed)
    src = np.zeros(nnz, dtype=np.int64)
    dst = np.zeros(nnz, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(nnz)
        # quadrant choice per edge per bit level
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        src |= go_down.astype(np.int64) << bit
        dst |= go_right.astype(np.int64) << bit
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % n
    return CSRGraph.from_edges(
        n, src, dst, name=name or f"rmat-{scale}-{edge_factor}"
    )


def grid_graph(
    side: int,
    seed: int = 0,
    weighted: bool = True,
    name: str | None = None,
) -> CSRGraph:
    """A ``side x side`` 4-neighbor grid: the high-diameter stress input.

    Road-network-like graphs are the opposite extreme from the paper's
    power-law datasets: degree is uniform (no load imbalance) but the
    diameter is ``2*(side-1)``, so level-synchronous traversal needs one
    kernel launch per level — thousands of barrier/launch round-trips for
    frontiers of a few hundred nodes.  This is exactly the regime where
    the persistent-queue backend's single launch wins
    (``benchmarks/bench_queue_vs_bsp.py``).  Edges are bidirectional;
    ``weighted`` draws uniform weights in ``[1, 4)``.
    """
    if side < 2:
        raise DatasetError("side must be >= 2")
    n = side * side
    node = np.arange(n, dtype=np.int64)
    right = node[node % side != side - 1]
    down = node[node < n - side]
    src = np.concatenate([right, right + 1, down, down + side])
    dst = np.concatenate([right + 1, right, down + side, down])
    weights = None
    if weighted:
        rng = np.random.default_rng(seed)
        # symmetric weights: both directions of an undirected edge match
        w_right = rng.uniform(1.0, 4.0, size=right.size)
        w_down = rng.uniform(1.0, 4.0, size=down.size)
        weights = np.concatenate([w_right, w_right, w_down, w_down])
    return CSRGraph.from_edges(
        n, src, dst, weights, name=name or f"grid-{side}x{side}"
    )
