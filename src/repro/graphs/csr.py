"""Compressed Sparse Row graph structure.

All graph applications in the paper (SSSP, BC, PageRank, SpMV, BFS) encode
their graph/matrix in CSR, which is exactly why their traversal loops take
the irregular nested-loop shape of Fig. 1(a): the outer loop walks rows
(nodes) and the inner loop walks each row's adjacency slice, whose length
``f(i)`` varies per row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph", "expand_rows", "inner_steps", "concat_ranges"]


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vectorized concatenation of integer ranges [start, start+length).

    ``concat_ranges([5, 0], [2, 3]) == [5, 6, 0, 1, 2]``.  This is the
    core primitive for gathering CSR slices of a node subset without a
    Python loop (frontier expansion, queue processing, delayed buffers).
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape or starts.ndim != 1:
        raise GraphError("starts and lengths must be matching 1-D arrays")
    if np.any(lengths < 0):
        raise GraphError("range lengths cannot be negative")
    nz = lengths > 0
    starts, lengths = starts[nz], lengths[nz]
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.zeros(starts.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        out[offsets[1:]] = starts[1:] - (starts[:-1] + lengths[:-1]) + 1
    return np.cumsum(out)


@dataclass
class CSRGraph:
    """A directed graph (or sparse matrix pattern) in CSR form.

    ``row_offsets`` has ``n_nodes + 1`` entries; the neighbors of node
    ``i`` are ``col_indices[row_offsets[i]:row_offsets[i + 1]]``.
    ``weights`` is optional (SSSP and SpMV use it).
    """

    row_offsets: np.ndarray
    col_indices: np.ndarray
    weights: np.ndarray | None = None
    name: str = "graph"

    def __post_init__(self) -> None:
        self.row_offsets = np.asarray(self.row_offsets, dtype=np.int64)
        self.col_indices = np.asarray(self.col_indices, dtype=np.int64)
        if self.row_offsets.ndim != 1 or self.row_offsets.size < 1:
            raise GraphError("row_offsets must be a 1-D array with >= 1 entry")
        if self.col_indices.ndim != 1:
            raise GraphError("col_indices must be 1-D")
        if self.row_offsets[0] != 0:
            raise GraphError("row_offsets must start at 0")
        if np.any(np.diff(self.row_offsets) < 0):
            raise GraphError("row_offsets must be non-decreasing")
        if self.row_offsets[-1] != self.col_indices.size:
            raise GraphError(
                f"row_offsets end ({self.row_offsets[-1]}) must equal "
                f"nnz ({self.col_indices.size})"
            )
        n = self.n_nodes
        if self.col_indices.size and (
            self.col_indices.min() < 0 or self.col_indices.max() >= n
        ):
            raise GraphError("col_indices out of range")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != self.col_indices.shape:
                raise GraphError("weights must match col_indices shape")

    # ------------------------------------------------------------- properties
    @property
    def n_nodes(self) -> int:
        """Number of nodes (rows)."""
        return self.row_offsets.size - 1

    @property
    def n_edges(self) -> int:
        """Number of directed edges (nonzeros)."""
        return self.col_indices.size

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node: the paper's ``f(i)`` trip counts."""
        return np.diff(self.row_offsets)

    def neighbors(self, node: int) -> np.ndarray:
        """Adjacency slice of one node."""
        if not (0 <= node < self.n_nodes):
            raise GraphError(f"node {node} out of range")
        return self.col_indices[self.row_offsets[node]: self.row_offsets[node + 1]]

    # ------------------------------------------------------------ conversions
    @classmethod
    def from_edges(
        cls,
        n_nodes: int,
        sources: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a CSR graph from (source, target) edge arrays."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise GraphError("sources and targets must be matching 1-D arrays")
        if n_nodes < 0:
            raise GraphError("n_nodes cannot be negative")
        if sources.size and (
            sources.min() < 0 or sources.max() >= n_nodes
            or targets.min() < 0 or targets.max() >= n_nodes
        ):
            raise GraphError("edge endpoints out of range")
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        targets = targets[order]
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)[order]
        counts = np.bincount(sources, minlength=n_nodes)
        offsets = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(offsets, targets, weights, name=name)

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix`` (weights default 1)."""
        from scipy.sparse import csr_matrix

        data = self.weights if self.weights is not None else np.ones(self.n_edges)
        return csr_matrix(
            (data, self.col_indices, self.row_offsets),
            shape=(self.n_nodes, self.n_nodes),
        )

    def to_networkx(self):
        """Convert to a ``networkx.DiGraph`` (small graphs / tests only)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n_nodes))
        rows = expand_rows(self.row_offsets)
        if self.weights is not None:
            g.add_weighted_edges_from(
                zip(rows.tolist(), self.col_indices.tolist(), self.weights.tolist())
            )
        else:
            g.add_edges_from(zip(rows.tolist(), self.col_indices.tolist()))
        return g

    def reverse(self) -> "CSRGraph":
        """The transpose graph (in-edges become out-edges)."""
        rows = expand_rows(self.row_offsets)
        return CSRGraph.from_edges(
            self.n_nodes, self.col_indices, rows, self.weights,
            name=f"{self.name}^T",
        )

    def with_unit_weights(self) -> "CSRGraph":
        """Copy with all-ones weights."""
        return CSRGraph(
            self.row_offsets, self.col_indices,
            np.ones(self.n_edges), name=self.name,
        )


def expand_rows(row_offsets: np.ndarray) -> np.ndarray:
    """Row id of every nonzero: inverse of ``row_offsets`` (vectorized).

    ``expand_rows([0, 2, 2, 5]) == [0, 0, 2, 2, 2]``.
    """
    row_offsets = np.asarray(row_offsets, dtype=np.int64)
    nnz = int(row_offsets[-1])
    degrees = np.diff(row_offsets)
    if np.any(degrees < 0):
        raise GraphError("row_offsets must be non-decreasing")
    return np.repeat(np.arange(row_offsets.size - 1, dtype=np.int64), degrees)


def inner_steps(row_offsets: np.ndarray) -> np.ndarray:
    """Position of every nonzero within its row (vectorized).

    For each edge ``e`` in row ``i``, returns ``e - row_offsets[i]`` — the
    inner-loop step index at which a thread-mapped kernel touches it.
    ``inner_steps([0, 2, 2, 5]) == [0, 1, 0, 1, 2]``.
    """
    row_offsets = np.asarray(row_offsets, dtype=np.int64)
    nnz = int(row_offsets[-1])
    if nnz == 0:
        return np.zeros(0, dtype=np.int64)
    rows = expand_rows(row_offsets)
    return np.arange(nnz, dtype=np.int64) - row_offsets[rows]
