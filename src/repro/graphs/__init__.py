"""``repro.graphs`` — CSR graph substrate: structure, generators, I/O."""

from repro.graphs.csr import CSRGraph, expand_rows, inner_steps
from repro.graphs.generators import (
    citeseer_like,
    degree_sequence_graph,
    grid_graph,
    lognormal_degrees,
    power_law_degrees,
    rmat_graph,
    uniform_random_graph,
    wiki_vote_like,
)
from repro.graphs.io import (
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
)
from repro.graphs.properties import DegreeStats, degree_stats, fraction_above_threshold

__all__ = [
    "CSRGraph", "expand_rows", "inner_steps",
    "power_law_degrees", "lognormal_degrees", "degree_sequence_graph", "citeseer_like",
    "wiki_vote_like", "uniform_random_graph", "rmat_graph", "grid_graph",
    "read_dimacs", "write_dimacs", "read_edge_list", "write_edge_list",
    "read_matrix_market", "write_matrix_market",
    "DegreeStats", "degree_stats", "fraction_above_threshold",
]
