"""Degree statistics and irregularity measures.

These are the dataset properties the paper's analysis keys on: the span of
``f(i)`` (out-degree) determines how much warp divergence a thread-mapped
kernel suffers, and how much work crosses the ``lbTHRES`` threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["DegreeStats", "degree_stats", "fraction_above_threshold"]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of an out-degree distribution."""

    n_nodes: int
    n_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    std_degree: float
    #: coefficient of variation — the irregularity measure
    cv: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_nodes} nodes, {self.n_edges} edges, degree "
            f"[{self.min_degree}, {self.max_degree}] mean {self.mean_degree:.1f} "
            f"cv {self.cv:.2f}"
        )


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute out-degree statistics for a graph."""
    deg = graph.out_degrees
    mean = float(deg.mean()) if deg.size else 0.0
    std = float(deg.std()) if deg.size else 0.0
    return DegreeStats(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        min_degree=int(deg.min()) if deg.size else 0,
        max_degree=int(deg.max()) if deg.size else 0,
        mean_degree=mean,
        median_degree=float(np.median(deg)) if deg.size else 0.0,
        std_degree=std,
        cv=std / mean if mean > 0 else 0.0,
    )


def fraction_above_threshold(graph: CSRGraph, threshold: int) -> tuple[float, float]:
    """(fraction of nodes, fraction of edges) above an lbTHRES threshold.

    This is what determines how much work each load-balancing template
    moves into its block-mapped phase.
    """
    deg = graph.out_degrees
    if deg.size == 0:
        return 0.0, 0.0
    mask = deg > threshold
    node_frac = float(mask.mean())
    edge_frac = float(deg[mask].sum() / max(deg.sum(), 1))
    return node_frac, edge_frac
