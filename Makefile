# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench experiments examples results clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# regenerate every paper artifact into results/
experiments:
	$(PYTHON) -m repro.bench all --scale 0.03 --out results/

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex"; $(PYTHON) $$ex || exit 1; \
	done

results: experiments

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
