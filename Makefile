# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-smoke experiments examples results clean

install:
	pip install -e . --no-build-isolation

test: bench-smoke
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# tiny harness-speed run: exercises the process-parallel runner + plan
# cache end-to-end without overwriting the recorded BENCH json
bench-smoke:
	$(PYTHON) benchmarks/bench_harness_speed.py --scale 0.01 --reps 2 \
		--jobs 2 --out .bench_smoke.json

# regenerate every paper artifact into results/
experiments:
	$(PYTHON) -m repro.bench all --scale 0.03 --out results/

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex"; $(PYTHON) $$ex || exit 1; \
	done

results: experiments

clean:
	rm -rf results .pytest_cache .benchmarks .bench_smoke.json
	find . -name __pycache__ -type d -exec rm -rf {} +
