# Convenience targets for the reproduction repository.

PYTHON ?= python
# make targets work from a clean checkout, without `pip install -e .`
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install test lint bench bench-smoke bench-service bench-multidevice bench-queue bench-slo bench-fuse bench-stream trace-smoke cache-smoke multidevice-smoke ir-smoke queue-smoke slo-smoke fuse-smoke stream-smoke experiments examples results clean

install:
	pip install -e . --no-build-isolation

test: lint bench-smoke trace-smoke cache-smoke multidevice-smoke ir-smoke queue-smoke slo-smoke fuse-smoke stream-smoke
	$(PYTHON) -m pytest tests/

# ruff when installed, stdlib fallback (syntax, unused imports, debug
# leftovers) otherwise — style regressions fail alongside tier-1 tests
lint:
	$(PYTHON) tools/lint.py src tests benchmarks

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# tiny harness-speed run: exercises the process-parallel runner, plan
# cache, two-level disk-cache mode and the fused executor pass
# end-to-end, then gates against the recorded smoke baseline in
# BENCH_harness_speed.json (fails loudly on a >40% speedup regression in
# the fast, two-level or fused mode; smoke-scale walls are sub-second,
# so the tolerance absorbs process-spawn scheduling noise)
bench-smoke:
	$(PYTHON) benchmarks/bench_harness_speed.py --smoke \
		--gate-tolerance 0.4 \
		--out .bench_smoke.json --gate BENCH_harness_speed.json

# disk artifact cache end-to-end: a second process must hit the plan/run
# tiers the first one wrote, a different template must reuse the shared
# workload analysis, and corrupted entries must degrade to misses
cache-smoke:
	$(PYTHON) tools/cache_smoke.py

# tracing layer end-to-end: emitted Chrome trace validates (schema +
# required span names), stats invariants balance, disabled path is silent
trace-smoke:
	$(PYTHON) tools/trace_smoke.py

# multi-device execution end-to-end: 1- vs 4-device runs of a loop and a
# tree app must conserve work (per-device counters sum to single-device
# totals), merge as max-time/sum-busy, and keep devices=1 bit-for-bit
multidevice-smoke:
	$(PYTHON) tools/multidevice_smoke.py

# persistent task-queue backend end-to-end: task conservation
# (enqueued == executed + cancelled), async fixpoints bit-identical to
# the serial references, queue beating launch-per-round BSP on a
# high-diameter grid, and barrier-dependent templates falling back to
# BSP bit-for-bit
queue-smoke:
	$(PYTHON) tools/queue_smoke.py

# parallelization IR + auto-select end-to-end: pass pipeline reproduces
# the golden decision table, selection fingerprints are rebuild-stable,
# and a warm template="auto" run stays within 5% of naming the selected
# template directly
ir-smoke:
	$(PYTHON) tools/ir_smoke.py

# fused batch execution end-to-end: execute_fused over a mixed batch
# (block-mapped + dynamic-parallelism graphs) bit-identical to sequential
# runs, empty/singleton demux, vectorized == serial placement, backend
# accounting, and the executor.fused_graphs counter
fuse-smoke:
	$(PYTHON) tools/fuse_smoke.py

# streaming mutation differential fuzz: random mutation streams over
# random workloads; incremental analysis must stay bit-identical to
# from-scratch re-analysis at every step, in-place and functional
# mutation forms must agree, and every nested-loop template must produce
# cycle-identical results from either analysis path
stream-smoke:
	$(PYTHON) tools/stream_fuzz.py

# serving-layer throughput: micro-batched repro.serve vs per-request
# repro.run; acceptance requires the batched path to win by >= 2x
bench-service:
	$(PYTHON) benchmarks/bench_service_throughput.py --min-speedup 2

# multi-device scaling on the fig5 sweep: aggregate throughput of a
# 4-device group vs one device; acceptance requires >= 2.5x
bench-multidevice:
	$(PYTHON) benchmarks/bench_multi_device.py --min-speedup 2.5

# queue vs BSP execution models across diameters: acceptance requires
# the queue to beat launch-per-round BSP on >= 1 high-diameter config
bench-queue:
	$(PYTHON) benchmarks/bench_queue_vs_bsp.py --min-speedup 1.0

# SLO-aware serving under overload: an open-loop multi-tenant mix at 2x
# measured capacity, SLO-aware (priorities/quotas/deadlines/autoscale)
# vs no-SLO FIFO; acceptance requires >= 3x better high-priority p99
bench-slo:
	$(PYTHON) benchmarks/bench_slo_serving.py --min-p99-ratio 3.0

# fused executor path at smoke scale: the Fig. 4 sweep as one fused
# in-process pass per rep vs the two-level pooled pipeline, bit-exact
# tables; acceptance requires >= 1.3x (full scale records >= 2x in
# BENCH_fused_executor.json)
bench-fuse:
	$(PYTHON) benchmarks/bench_fused_executor.py --smoke --min-speedup 1.3

# streaming throughput: incremental analysis maintenance vs from-scratch
# re-analysis under a mutation stream, plus one serving process
# sustaining mutations and snapshot-pinned queries; acceptance requires
# incremental >= 3x and zero torn snapshot reads
bench-stream:
	$(PYTHON) benchmarks/bench_streaming.py --min-speedup 3

# tiny version of bench-slo wired into `make test`: same two-sided run,
# relaxed 1.3x floor (the small mix is noisier), scratch output file
slo-smoke:
	$(PYTHON) benchmarks/bench_slo_serving.py --smoke \
		--min-p99-ratio 1.3 --out .bench_slo_smoke.json

# regenerate every paper artifact into results/
experiments:
	$(PYTHON) -m repro.bench all --scale 0.03 --out results/

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex"; $(PYTHON) $$ex || exit 1; \
	done

results: experiments

clean:
	rm -rf results .pytest_cache .benchmarks .bench_smoke.json .bench_slo_smoke.json .bench_fuse_smoke.json
	find . -name __pycache__ -type d -exec rm -rf {} +
