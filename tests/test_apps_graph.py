"""Tests for the graph applications (SpMV, SSSP, PageRank, BC, flat BFS)."""

import numpy as np
import pytest
from scipy.sparse.csgraph import dijkstra

from repro.apps import BCApp, BFSApp, PageRankApp, SpMVApp, SSSPApp
from repro.core import TemplateParams
from repro.cpu.reference import bc_serial, bfs_serial, pagerank_serial
from repro.errors import GraphError
from repro.graphs import citeseer_like, uniform_random_graph, wiki_vote_like


@pytest.fixture(scope="module")
def small_graph():
    g = uniform_random_graph(2000, (1, 12), seed=3)
    rng = np.random.default_rng(4)
    g.weights = rng.integers(1, 10, size=g.n_edges).astype(np.float64)
    return g


@pytest.fixture(scope="module")
def irregular_graph():
    return citeseer_like(scale=0.01, seed=5)


class TestSpMVApp:
    def test_result_matches_scipy(self, small_graph):
        app = SpMVApp(small_graph, seed=1)
        run = app.run("baseline")
        expected = small_graph.to_scipy() @ app.x
        np.testing.assert_allclose(run.result, expected, rtol=1e-12)

    def test_result_template_invariant(self, small_graph):
        app = SpMVApp(small_graph, seed=1)
        results = [app.run(t).result
                   for t in ("baseline", "dbuf-shared", "dual-queue")]
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_load_balancing_beats_baseline_on_irregular(self, irregular_graph):
        app = SpMVApp(irregular_graph)
        base = app.run("baseline")
        dbuf = app.run("dbuf-global")
        assert dbuf.gpu_time_ms < base.gpu_time_ms

    def test_x_shape_validated(self, small_graph):
        with pytest.raises(GraphError):
            SpMVApp(small_graph, x=np.ones(3))

    def test_speedup_is_cpu_over_gpu(self, small_graph):
        run = SpMVApp(small_graph).run("baseline")
        assert run.speedup == pytest.approx(run.cpu_time_ms / run.gpu_time_ms)


class TestSSSPApp:
    def test_distances_match_dijkstra(self, small_graph):
        app = SSSPApp(small_graph, source=0)
        run = app.run("baseline")
        expected = dijkstra(small_graph.to_scipy(), indices=0)
        np.testing.assert_allclose(run.result, expected)

    def test_multiple_rounds(self, small_graph):
        run = SSSPApp(small_graph).run("baseline")
        assert run.meta["rounds"] > 1

    def test_templates_agree_functionally(self, small_graph):
        app = SSSPApp(small_graph)
        a = app.run("baseline").result
        b = app.run("dbuf-shared").result
        np.testing.assert_array_equal(a, b)

    def test_load_balancing_helps(self, irregular_graph):
        app = SSSPApp(irregular_graph)
        base = app.run("baseline")
        dbuf = app.run("dbuf-shared", params=TemplateParams(lb_threshold=32))
        assert dbuf.gpu_time_ms < base.gpu_time_ms

    def test_source_validated(self, small_graph):
        with pytest.raises(GraphError):
            SSSPApp(small_graph, source=10**6)

    def test_negative_weights_rejected(self, small_graph):
        bad = citeseer_like(scale=0.01, seed=9)
        bad.weights[0] = -5
        with pytest.raises(GraphError):
            SSSPApp(bad)


class TestPageRankApp:
    def test_matches_serial_reference(self, small_graph):
        app = PageRankApp(small_graph, n_iters=15)
        run = app.run("baseline")
        expected = pagerank_serial(small_graph, n_iters=15).result
        np.testing.assert_allclose(run.result, expected)

    def test_ranks_sum_to_one(self, small_graph):
        run = PageRankApp(small_graph, n_iters=10).run("dbuf-global")
        assert run.result.sum() == pytest.approx(1.0, abs=1e-9)

    def test_time_scales_with_iterations(self, small_graph):
        short = PageRankApp(small_graph, n_iters=5).run("baseline")
        long = PageRankApp(small_graph, n_iters=20).run("baseline")
        assert long.gpu_time_ms == pytest.approx(4 * short.gpu_time_ms, rel=0.01)

    def test_validation(self, small_graph):
        with pytest.raises(GraphError):
            PageRankApp(small_graph, damping=2.0)
        with pytest.raises(GraphError):
            PageRankApp(small_graph, n_iters=0)


class TestBCApp:
    def test_matches_serial_reference(self):
        g = wiki_vote_like(seed=2)
        app = BCApp(g, n_sources=4, seed=1)
        run = app.run("baseline")
        expected = bc_serial(g, app.sources).result
        np.testing.assert_allclose(run.result, expected)

    def test_all_sources_option(self, small_graph):
        app = BCApp(small_graph, n_sources=None)
        assert app.sources.size == small_graph.n_nodes

    def test_source_count_validated(self, small_graph):
        with pytest.raises(GraphError):
            BCApp(small_graph, n_sources=0)

    def test_forward_and_backward_kernels(self):
        g = wiki_vote_like(seed=2)
        run = BCApp(g, n_sources=2, seed=3).run("baseline")
        # at least forward + backward per source
        assert run.meta["kernels"] >= 2 * 2


class TestBFSApp:
    def test_levels_match_serial(self, small_graph):
        run = BFSApp(small_graph, source=0).run("baseline")
        np.testing.assert_array_equal(
            run.result, bfs_serial(small_graph, 0).result
        )

    def test_levels_counted(self, small_graph):
        run = BFSApp(small_graph).run("baseline")
        assert run.meta["levels"] >= 1

    def test_source_validated(self, small_graph):
        with pytest.raises(GraphError):
            BFSApp(small_graph, source=-1)
