"""Round-trip tests for graph I/O formats."""

import io

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graphs.generators import uniform_random_graph
from repro.graphs.io import (
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
)


class TestDimacs:
    def test_roundtrip(self, tmp_path):
        g = uniform_random_graph(50, (1, 4), seed=2)
        g.weights = np.arange(1, g.n_edges + 1, dtype=np.float64)
        path = tmp_path / "g.gr"
        write_dimacs(g, path)
        g2 = read_dimacs(path)
        assert g2.n_nodes == g.n_nodes
        assert g2.n_edges == g.n_edges
        assert np.array_equal(np.sort(g2.col_indices), np.sort(g.col_indices))

    def test_parse_with_comments(self):
        text = "c a comment\np sp 3 2\na 1 2 5\na 2 3 7\n"
        g = read_dimacs(io.StringIO(text))
        assert g.n_nodes == 3
        assert g.neighbors(0).tolist() == [1]
        assert g.weights.tolist() == [5.0, 7.0]

    def test_missing_header(self):
        with pytest.raises(DatasetError, match="header"):
            read_dimacs(io.StringIO("a 1 2 3\n"))

    def test_malformed_arc(self):
        with pytest.raises(DatasetError, match="arc"):
            read_dimacs(io.StringIO("p sp 2 1\na 1 2\n"))

    def test_unknown_record(self):
        with pytest.raises(DatasetError, match="unknown"):
            read_dimacs(io.StringIO("p sp 2 1\nx 1 2 1\n"))


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = uniform_random_graph(40, (1, 3), seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert g2.n_edges == g.n_edges

    def test_explicit_node_count(self):
        g = read_edge_list(io.StringIO("0 1\n"), n_nodes=10)
        assert g.n_nodes == 10

    def test_comments_skipped(self):
        g = read_edge_list(io.StringIO("# header\n0 1\n1 2\n"))
        assert g.n_nodes == 3
        assert g.n_edges == 2

    def test_malformed_line(self):
        with pytest.raises(DatasetError):
            read_edge_list(io.StringIO("7\n"))


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        g = uniform_random_graph(30, (1, 3), seed=3).with_unit_weights()
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        g2 = read_matrix_market(path)
        assert g2.n_nodes == g.n_nodes
        assert (g2.to_scipy() - g.to_scipy()).nnz == 0

    def test_rejects_non_square(self, tmp_path):
        from scipy.io import mmwrite
        from scipy.sparse import csr_matrix

        path = tmp_path / "rect.mtx"
        mmwrite(str(path), csr_matrix(np.ones((2, 3))))
        with pytest.raises(DatasetError, match="square"):
            read_matrix_market(path)
