"""Unit + property tests for the atomic serialization model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.atomics import (
    grouped_conflict_degree,
    hot_address_degree,
    warp_atomic_cycles,
)
from repro.gpusim.config import KEPLER_K20
from repro.gpusim.warps import form_warps


class TestConflictDegree:
    def test_all_distinct(self):
        shape = form_warps(np.arange(32))
        assert grouped_conflict_degree(shape).tolist() == [1]

    def test_all_same(self):
        shape = form_warps(np.zeros(32, dtype=np.int64))
        assert grouped_conflict_degree(shape).tolist() == [32]

    def test_pairs(self):
        shape = form_warps(np.repeat(np.arange(16), 2))
        assert grouped_conflict_degree(shape).tolist() == [2]

    def test_inactive_lanes_never_conflict(self):
        shape = form_warps(np.zeros(4, dtype=np.int64))  # 4 active, 28 padded
        assert grouped_conflict_degree(shape).tolist() == [4]

    def test_empty_warp(self):
        shape = form_warps(np.array([], dtype=np.int64))
        assert grouped_conflict_degree(shape).size == 0

    def test_multiple_warps_independent(self):
        vals = np.concatenate([np.zeros(32, dtype=np.int64), np.arange(32)])
        shape = form_warps(vals)
        assert grouped_conflict_degree(shape).tolist() == [32, 1]

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_matches_bruteforce(self, addrs):
        shape = form_warps(np.array(addrs, dtype=np.int64))
        expected = max(np.bincount(np.array(addrs)).max(), 1)
        assert grouped_conflict_degree(shape)[0] == expected


class TestWarpAtomicCycles:
    def test_uncontended_cost(self):
        cfg = KEPLER_K20
        shape = form_warps(np.arange(32))
        cycles, stats = warp_atomic_cycles(shape, cfg)
        assert cycles.tolist() == [cfg.atomic_cycles]
        assert stats.n_atomics == 32
        assert stats.max_address_multiplicity == 1

    def test_fully_contended_cost(self):
        cfg = KEPLER_K20
        shape = form_warps(np.zeros(32, dtype=np.int64))
        cycles, stats = warp_atomic_cycles(shape, cfg)
        expected = cfg.atomic_cycles + 31 * cfg.atomic_conflict_cycles
        assert cycles.tolist() == [expected]
        assert stats.max_address_multiplicity == 32

    def test_inactive_warp_is_free(self):
        cfg = KEPLER_K20
        shape = form_warps(np.array([], dtype=np.int64).reshape(0))
        cycles, stats = warp_atomic_cycles(shape, cfg)
        assert cycles.size == 0
        assert stats.n_atomics == 0


class TestHotAddress:
    def test_empty(self):
        assert hot_address_degree(np.array([])) == 0

    def test_uniform(self):
        assert hot_address_degree(np.array([3, 3, 3])) == 3

    def test_mixed(self):
        assert hot_address_degree(np.array([1, 2, 2, 3])) == 2

    @given(st.lists(st.integers(0, 10), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_length(self, addrs):
        deg = hot_address_degree(np.array(addrs, dtype=np.int64))
        assert 0 <= deg <= len(addrs)
        if addrs:
            assert deg >= 1
