"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plots import ascii_chart, plottable
from repro.bench.table import ResultTable
from repro.errors import ExperimentError


def table_with(rows, columns=("x", "a", "b")):
    t = ResultTable("speedups", list(columns))
    for row in rows:
        t.add_row(*row)
    return t


class TestPlottable:
    def test_numeric_series(self):
        t = table_with([(32, 1.0, 2.0), (64, 1.5, 2.5)])
        assert plottable(t)

    def test_single_row_not_plottable(self):
        t = table_with([(32, 1.0, 2.0)])
        assert not plottable(t)

    def test_text_only_not_plottable(self):
        t = ResultTable("t", ["x", "verdict"])
        t.add_row(1, "good")
        t.add_row(2, "bad")
        assert not plottable(t)

    def test_mixed_columns_still_plottable(self):
        t = ResultTable("t", ["x", "num", "text"])
        t.add_row(1, 2.0, "a")
        t.add_row(2, 4.0, "b")
        assert plottable(t)


class TestAsciiChart:
    def test_contains_axis_and_legend(self):
        t = table_with([(32, 1.0, 2.0), (64, 1.5, 2.5), (128, 2.0, 3.0)])
        chart = ascii_chart(t)
        assert "speedups" in chart
        assert "o=a" in chart
        assert "+=b" in chart
        assert "+---" in chart  # x axis
        assert "32" in chart and "128" in chart

    def test_extremes_marked_on_edges(self):
        t = table_with([(1, 0.0, 10.0), (2, 10.0, 0.0)])
        lines = ascii_chart(t, height=6).splitlines()
        # the top row holds the max, the last grid row the min
        assert any(m in lines[1] for m in "o+")
        assert any(m in lines[6] for m in "o+")

    def test_log_axis(self):
        t = table_with([(1, 1.0, 1000.0), (2, 10.0, 100.0)])
        chart = ascii_chart(t, log_y=True)
        assert "[log10 y]" in chart

    def test_log_axis_rejects_all_nonpositive(self):
        t = table_with([(1, 0.0, 0.0), (2, 0.0, 0.0)])
        with pytest.raises(ExperimentError):
            ascii_chart(t, log_y=True)

    def test_constant_series_handled(self):
        t = table_with([(1, 2.0, 2.0), (2, 2.0, 2.0)])
        chart = ascii_chart(t)
        assert "speedups" in chart

    def test_size_validation(self):
        t = table_with([(1, 1.0, 2.0), (2, 2.0, 3.0)])
        with pytest.raises(ExperimentError):
            ascii_chart(t, height=2)

    def test_unplottable_rejected(self):
        t = table_with([(1, 1.0, 2.0)])
        with pytest.raises(ExperimentError):
            ascii_chart(t)

    def test_cli_plot_flag(self, capsys):
        from repro.bench.runner import main

        assert main(["baselines", "--scale", "0.005", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "o=measured" in out
