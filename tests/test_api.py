"""Tests for the top-level facade (repro.run / repro.compare) and the
unified template registry."""

import warnings

import numpy as np
import pytest

import repro
from repro.core import RecursiveTreeWorkload, TemplateParams
from repro.core.registry import (
    ALL_TEMPLATES,
    NESTED_LOOP_TEMPLATES,
    TREE_TEMPLATE_CLASSES,
    canonical_name,
    get_template,
    resolve,
)
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import PlanError, WorkloadError
from repro.gpusim import FERMI_C2050, KEPLER_K20
from repro.trees.generator import generate_tree


@pytest.fixture(scope="module")
def loop_workload():
    rng = np.random.default_rng(0)
    trips = rng.zipf(1.8, size=400).clip(max=300).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name="api-wl", trip_counts=trips,
        streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
    )


@pytest.fixture(scope="module")
def tree_workload():
    tree = generate_tree(depth=5, outdegree=3, seed=1)
    return RecursiveTreeWorkload(tree, "descendants")


class TestRegistryResolve:
    def test_every_canonical_name_resolves(self):
        for name, (kind, cls) in ALL_TEMPLATES.items():
            template = resolve(name)
            assert isinstance(template, cls)
            assert resolve(name, kind=kind).name == template.name

    def test_aliases_and_normalization(self):
        assert canonical_name("baseline") == "thread-mapped"
        assert canonical_name("  Thread_Mapped ") == "thread-mapped"
        assert type(resolve("baseline")) is type(resolve("thread-mapped"))
        assert type(resolve("dbuf_global")) is type(resolve("dbuf-global"))

    def test_unknown_name_lists_known(self):
        with pytest.raises(PlanError, match="rec-hier"):
            resolve("quantum-mapped")

    def test_kind_mismatch(self):
        with pytest.raises(PlanError, match="tree template"):
            resolve("rec-hier", kind="nested-loop")
        with pytest.raises(PlanError, match="nested-loop template"):
            resolve("dbuf-shared", kind="tree")
        with pytest.raises(PlanError, match="unknown template kind"):
            resolve("dbuf-shared", kind="gpu")

    def test_legacy_registries_cover_all(self):
        merged = set(NESTED_LOOP_TEMPLATES) | set(TREE_TEMPLATE_CLASSES)
        aliases = {"baseline"}
        assert merged - aliases <= set(ALL_TEMPLATES)

    def test_get_template_deprecated_but_working(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            template = get_template("dual-queue")
        assert template.name == "dual-queue"
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)


class TestRunFacade:
    def test_nested_loop_from_top_level(self, loop_workload):
        run = repro.run("dbuf-shared", loop_workload)
        assert run.template == "dbuf-shared"
        assert run.time_ms > 0

    def test_tree_from_top_level(self, tree_workload):
        run = repro.run("rec-hier", tree_workload)
        assert run.template == "rec-hier"
        assert run.time_ms > 0

    def test_kwargs_device_and_params(self, loop_workload):
        k20 = repro.run("dual-queue", loop_workload,
                        params=TemplateParams(lb_threshold=64))
        fermi = repro.run("dual-queue", loop_workload,
                          device=FERMI_C2050,
                          params=TemplateParams(lb_threshold=64))
        assert k20.params.lb_threshold == 64
        assert fermi.time_ms != k20.time_ms

    def test_template_instance_accepted(self, loop_workload):
        instance = resolve("block-mapped")
        run = repro.run(instance, loop_workload, device=KEPLER_K20)
        assert run.template == "block-mapped"

    def test_family_misdispatch_rejected(self, loop_workload, tree_workload):
        with pytest.raises(PlanError):
            repro.run("flat", loop_workload)
        with pytest.raises(PlanError):
            repro.run("thread-mapped", tree_workload)

    def test_bad_workload_type(self):
        with pytest.raises(WorkloadError, match="NestedLoopWorkload"):
            repro.run("thread-mapped", object())


class TestEngineSelection:
    def test_engine_kwarg_fast_and_exact_agree(self, loop_workload):
        fast = repro.run("dbuf-global", loop_workload, engine="fast")
        exact = repro.run("dbuf-global", loop_workload, engine="exact")
        assert fast.time_ms == pytest.approx(exact.time_ms, rel=1e-6)

    def test_engine_kwarg_no_warning(self, loop_workload):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.run("dbuf-global", loop_workload, engine="exact")

    def test_exact_kwarg_deprecated_alias(self, loop_workload):
        with pytest.warns(DeprecationWarning, match="exact= kwarg"):
            old = repro.run("dbuf-global", loop_workload, exact=True)
        new = repro.run("dbuf-global", loop_workload, engine="exact")
        assert old.time_ms == new.time_ms

    def test_exact_false_means_fast(self, loop_workload):
        with pytest.warns(DeprecationWarning):
            run = repro.run("dbuf-global", loop_workload, exact=False)
        assert run.time_ms == repro.run(
            "dbuf-global", loop_workload, engine="fast").time_ms

    def test_compare_accepts_engine(self, loop_workload):
        runs = repro.compare(["thread-mapped", "dual-queue"], loop_workload,
                             engine="exact")
        assert [r.template for r in runs] == ["baseline", "dual-queue"]
        with pytest.warns(DeprecationWarning):
            legacy = repro.compare(["dual-queue"], loop_workload, exact=True)
        assert legacy[0].time_ms == runs[1].time_ms

    def test_conflicting_engine_and_exact_rejected(self, loop_workload):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(repro.ConfigError, match="conflict"):
                repro.run("dbuf-global", loop_workload,
                          engine="fast", exact=True)

    def test_unknown_engine_rejected(self, loop_workload):
        with pytest.raises(repro.ConfigError, match="unknown engine"):
            repro.run("dbuf-global", loop_workload, engine="warp")

    def test_matching_engine_and_exact_allowed(self, loop_workload):
        with pytest.warns(DeprecationWarning):
            run = repro.run("dbuf-global", loop_workload,
                            engine="exact", exact=True)
        assert run.time_ms > 0


class TestCompareFacade:
    def test_order_preserved(self, loop_workload):
        names = ["dbuf-global", "thread-mapped", "dual-queue"]
        runs = repro.compare(names, loop_workload)
        assert [r.template for r in runs] == \
            ["dbuf-global", "baseline", "dual-queue"]

    def test_positional_args_rejected(self, loop_workload):
        with pytest.raises(TypeError):
            repro.run("thread-mapped", loop_workload, KEPLER_K20)
