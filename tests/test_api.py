"""Tests for the top-level facade (repro.run / repro.compare /
repro.explain) and the unified template registry."""

import warnings

import numpy as np
import pytest

import repro
from repro.core import RecursiveTreeWorkload, TemplateParams
from repro.core.registry import (
    ALL_TEMPLATES,
    NESTED_LOOP_TEMPLATES,
    TREE_TEMPLATE_CLASSES,
    canonical_name,
    resolve,
)
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import PlanError, WorkloadError
from repro.gpusim import FERMI_C2050, KEPLER_K20
from repro.trees.generator import generate_tree


@pytest.fixture(scope="module")
def loop_workload():
    rng = np.random.default_rng(0)
    trips = rng.zipf(1.8, size=400).clip(max=300).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name="api-wl", trip_counts=trips,
        streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
    )


@pytest.fixture(scope="module")
def tree_workload():
    tree = generate_tree(depth=5, outdegree=3, seed=1)
    return RecursiveTreeWorkload(tree, "descendants")


class TestRegistryResolve:
    def test_every_canonical_name_resolves(self):
        for name, (kind, cls) in ALL_TEMPLATES.items():
            template = resolve(name)
            assert isinstance(template, cls)
            assert resolve(name, kind=kind).name == template.name

    def test_aliases_and_normalization(self):
        assert canonical_name("baseline") == "thread-mapped"
        assert canonical_name("  Thread_Mapped ") == "thread-mapped"
        assert type(resolve("baseline")) is type(resolve("thread-mapped"))
        assert type(resolve("dbuf_global")) is type(resolve("dbuf-global"))

    def test_unknown_name_lists_known(self):
        with pytest.raises(PlanError, match="rec-hier"):
            resolve("quantum-mapped")

    def test_kind_mismatch(self):
        with pytest.raises(PlanError, match="tree template"):
            resolve("rec-hier", kind="nested-loop")
        with pytest.raises(PlanError, match="nested-loop template"):
            resolve("dbuf-shared", kind="tree")
        with pytest.raises(PlanError, match="unknown template kind"):
            resolve("dbuf-shared", kind="gpu")

    def test_legacy_registries_cover_all(self):
        merged = set(NESTED_LOOP_TEMPLATES) | set(TREE_TEMPLATE_CLASSES)
        aliases = {"baseline"}
        assert merged - aliases <= set(ALL_TEMPLATES)

    def test_resolve_reexported_at_top_level(self):
        assert repro.resolve is resolve
        assert repro.TemplateParams is TemplateParams
        assert repro.NestedLoopWorkload is NestedLoopWorkload
        assert repro.RecursiveTreeWorkload is RecursiveTreeWorkload


class TestRunFacade:
    def test_nested_loop_from_top_level(self, loop_workload):
        run = repro.run(loop_workload, "dbuf-shared")
        assert run.template == "dbuf-shared"
        assert run.time_ms > 0

    def test_tree_from_top_level(self, tree_workload):
        run = repro.run(tree_workload, "rec-hier")
        assert run.template == "rec-hier"
        assert run.time_ms > 0

    def test_default_template_is_auto(self, loop_workload):
        run = repro.run(loop_workload)
        assert canonical_name(run.template) in ALL_TEMPLATES
        assert run.selection is not None
        assert run.selection.template == canonical_name(run.template)

    def test_kwargs_device_and_params(self, loop_workload):
        k20 = repro.run(loop_workload, "dual-queue",
                        params=TemplateParams(lb_threshold=64))
        fermi = repro.run(loop_workload, "dual-queue",
                          device=FERMI_C2050,
                          params=TemplateParams(lb_threshold=64))
        assert k20.params.lb_threshold == 64
        assert fermi.time_ms != k20.time_ms

    def test_template_instance_accepted(self, loop_workload):
        instance = resolve("block-mapped")
        run = repro.run(loop_workload, instance, device=KEPLER_K20)
        assert run.template == "block-mapped"

    def test_family_misdispatch_rejected(self, loop_workload, tree_workload):
        with pytest.raises(PlanError):
            repro.run(loop_workload, "flat")
        with pytest.raises(PlanError):
            repro.run(tree_workload, "thread-mapped")

    def test_bad_workload_type(self):
        with pytest.raises(WorkloadError, match="NestedLoopWorkload"):
            repro.run(object(), "thread-mapped")

    def test_legacy_argument_order_warns_and_forwards(self, loop_workload):
        with pytest.warns(DeprecationWarning, match="workload first"):
            legacy = repro.run("dbuf-shared", loop_workload)
        modern = repro.run(loop_workload, "dbuf-shared")
        assert legacy.time_ms == modern.time_ms

    def test_exact_kwarg_removed(self, loop_workload):
        with pytest.raises(TypeError):
            repro.run(loop_workload, "dbuf-global", exact=True)


class TestEngineSelection:
    def test_engine_kwarg_fast_and_exact_agree(self, loop_workload):
        fast = repro.run(loop_workload, "dbuf-global", engine="fast")
        exact = repro.run(loop_workload, "dbuf-global", engine="exact")
        assert fast.time_ms == pytest.approx(exact.time_ms, rel=1e-6)

    def test_engine_kwarg_no_warning(self, loop_workload):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.run(loop_workload, "dbuf-global", engine="exact")

    def test_compare_accepts_engine(self, loop_workload):
        runs = repro.compare(loop_workload, ["thread-mapped", "dual-queue"],
                             engine="exact")
        assert [r.template for r in runs] == ["baseline", "dual-queue"]

    def test_unknown_engine_rejected(self, loop_workload):
        with pytest.raises(repro.ConfigError, match="unknown engine"):
            repro.run(loop_workload, "dbuf-global", engine="warp")


class TestCompareFacade:
    def test_order_preserved(self, loop_workload):
        names = ["dbuf-global", "thread-mapped", "dual-queue"]
        runs = repro.compare(loop_workload, names)
        assert [r.template for r in runs] == \
            ["dbuf-global", "baseline", "dual-queue"]

    def test_default_is_auto(self, loop_workload):
        runs = repro.compare(loop_workload)
        assert len(runs) == 1
        assert runs[0].selection is not None

    def test_include_auto(self, loop_workload):
        runs = repro.compare(loop_workload, ["thread-mapped"], include="auto")
        assert len(runs) == 2
        assert runs[0].template == "baseline"
        assert runs[1].selection is not None

    def test_single_name_string_accepted(self, loop_workload):
        runs = repro.compare(loop_workload, "dual-queue")
        assert [r.template for r in runs] == ["dual-queue"]

    def test_legacy_argument_order_warns(self, loop_workload):
        with pytest.warns(DeprecationWarning, match="workload first"):
            runs = repro.compare(["dual-queue"], loop_workload)
        assert runs[0].template == "dual-queue"

    def test_positional_args_rejected(self, loop_workload):
        with pytest.raises(TypeError):
            repro.run(loop_workload, "thread-mapped", KEPLER_K20)


class TestExplainFacade:
    def test_explain_structure(self, loop_workload):
        info = repro.explain(loop_workload)
        assert info["template"] in ALL_TEMPLATES
        assert info["kind"] == "nested-loop"
        assert isinstance(info["fingerprint"], str)
        assert isinstance(info["decisions"], list)
        assert isinstance(info["reasons"], list)
        assert "final_ir" in info and "ir" in info

    def test_explain_matches_run(self, loop_workload):
        info = repro.explain(loop_workload)
        run = repro.run(loop_workload)
        assert canonical_name(run.template) == info["template"]
